#include "query/shared_scan.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "exec/shared_scan.hpp"
#include "hw/accelerator.hpp"
#include "opt/cost_model.hpp"
#include "query/ops/op_context.hpp"
#include "query/ops/pipeline.hpp"
#include "query/ops/scan_filter.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::query {

using storage::Column;
using storage::Table;
using storage::TypeId;

namespace {

/// Streamed representation tag of one predicate column under `options` —
/// two plans only share a pass when every conjunct streams the same bytes
/// (the "encoding-visible column set" of the grouping rule).
std::string column_tag(const Column& col, const ExecOptions& options) {
  const bool packed =
      col.type() != TypeId::kDouble && ops::use_packed(col, options);
  if (packed)
    return col.name() + ":p" + std::to_string(col.encoded()->bits);
  switch (col.type()) {
    case TypeId::kDouble: return col.name() + ":f64";
    case TypeId::kInt64: return col.name() + ":i64";
    case TypeId::kInt32:
    case TypeId::kString: return col.name() + ":i32";
  }
  return col.name();
}

/// Bytes one fused pass streams for `col` (packed image or plain array —
/// for string columns the plain array IS the int32 code array, which is
/// what byte_size() reports).
double streamed_bytes(const Column& col, const ExecOptions& options) {
  const bool packed =
      col.type() != TypeId::kDouble && ops::use_packed(col, options);
  return static_cast<double>(packed ? col.scan_byte_size() : col.byte_size());
}

/// Replicates scan_filter's stats-based pruning: kAll (selection
/// untouched, conjunct dropped), kNone (selection cleared, member done),
/// kScan (evaluate it).
enum class Prune : std::uint8_t { kScan, kAll, kNone };

Prune prune_with_stats(const Column& col, const ops::BoundRange& r) {
  const storage::ColumnStats& s = col.stats();
  if (s.rows == 0) return Prune::kScan;
  const bool all = r.is_double ? (r.dlo <= s.dmin && r.dhi >= s.dmax)
                               : (r.lo <= s.min && r.hi >= s.max);
  if (all) return Prune::kAll;
  const bool none = r.is_double ? (r.dhi < s.dmin || r.dlo > s.dmax)
                                : (r.hi < s.min || r.lo > s.max);
  return none ? Prune::kNone : Prune::kScan;
}

/// One member's fused-pass preparation: bound conjuncts, the columns they
/// stream, and the selection bitmap the pass fills.
struct MemberPrep {
  BitVector selection;
  std::vector<exec::SharedConjunct> conjuncts;
  /// (column, packed) per conjunct, for the group's single scan charge.
  std::vector<std::pair<const Column*, bool>> scanned;
  std::size_t fused_index = SIZE_MAX;  ///< Index into the fused query set.
};

/// Binds and prunes one member's predicates into fused-pass conjuncts,
/// ordered most-selective-first like evaluate_predicates. On a resolved
/// empty result the selection is cleared and no conjunct remains.
MemberPrep prepare_member(const Table& table, const PhysicalPlan& phys,
                          const ExecOptions& options) {
  MemberPrep prep;
  const std::size_t rows = table.row_count();
  prep.selection = BitVector(rows);
  prep.selection.set_all();

  std::vector<const Predicate*> ordered;
  ordered.reserve(phys.logical.predicates.size());
  for (const Predicate& p : phys.logical.predicates) ordered.push_back(&p);
  if (options.order_predicates && ordered.size() > 1) {
    std::vector<double> sel(ordered.size());
    const Predicate* base = phys.logical.predicates.data();
    for (std::size_t i = 0; i < ordered.size(); ++i)
      sel[i] = ops::estimate_predicate_selectivity(
          table.column(ordered[i]->column), *ordered[i]);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&](const Predicate* a, const Predicate* b) {
                       return sel[static_cast<std::size_t>(a - base)] <
                              sel[static_cast<std::size_t>(b - base)];
                     });
  }

  for (const Predicate* p : ordered) {
    const Column& col = table.column(p->column);
    const ops::BoundRange r = ops::bind_predicate(col, *p);
    if (r.empty) {
      prep.selection.clear_all();
      prep.conjuncts.clear();
      prep.scanned.clear();
      return prep;
    }
    switch (prune_with_stats(col, r)) {
      case Prune::kAll:
        continue;  // every row matches: nothing scanned or charged
      case Prune::kNone:
        prep.selection.clear_all();
        prep.conjuncts.clear();
        prep.scanned.clear();
        return prep;
      case Prune::kScan:
        break;
    }
    if (col.size() == 0) continue;

    exec::SharedConjunct c;
    const bool packed = !r.is_double && ops::use_packed(col, options);
    if (packed) {
      const storage::EncodedSegment& seg = *col.encoded();
      c.kind = exec::SharedConjunct::Kind::kPacked;
      c.packed = seg.words;
      c.packed_bits = seg.bits;
      // Reference-shift into the image's unsigned domain (same
      // precondition as scan_filter: pruning resolved disjoint ranges,
      // so hi >= reference and the shift is exact).
      const auto ref = static_cast<std::uint64_t>(seg.reference);
      c.ulo = r.lo <= seg.reference
                  ? 0
                  : static_cast<std::uint64_t>(r.lo) - ref;
      c.uhi = static_cast<std::uint64_t>(r.hi) - ref;
    } else if (r.is_double) {
      c.kind = exec::SharedConjunct::Kind::kDouble;
      c.f64 = col.double_data();
      c.dlo = r.dlo;
      c.dhi = r.dhi;
    } else if (col.type() == TypeId::kInt64) {
      c.kind = exec::SharedConjunct::Kind::kInt64;
      c.i64 = col.int64_data();
      c.lo = r.lo;
      c.hi = r.hi;
    } else {
      // kInt32 and kString both stream the int32 array (codes for
      // strings; bind_predicate already produced the code range).
      c.kind = exec::SharedConjunct::Kind::kInt32;
      c.i32 = col.int32_data();
      c.lo = r.lo;
      c.hi = r.hi;
    }
    prep.conjuncts.push_back(c);
    prep.scanned.emplace_back(&col, packed);
  }
  return prep;
}

}  // namespace

std::string scan_sharing_key(const storage::Catalog& catalog,
                             const PhysicalPlan& phys,
                             const ExecOptions& options) {
  if (phys.logical.predicates.empty()) return "";
  if (phys.dist.active() || options.shard_count > 0) return "";
  if (options.scan_variant != exec::ScanVariant::kAuto) return "";
  if (options.use_zone_maps || options.tiers != nullptr) return "";
  const Table& table = catalog.get(phys.logical.table);
  std::vector<std::string> tags;
  tags.reserve(phys.logical.predicates.size());
  for (const Predicate& p : phys.logical.predicates)
    tags.push_back(column_tag(table.column(p.column), options));
  std::sort(tags.begin(), tags.end());
  std::string key = phys.logical.table;
  for (const std::string& t : tags) key += "|" + t;
  return key;
}

std::string scan_sharing_prekey(const LogicalPlan& plan) {
  if (plan.predicates.empty()) return "";
  std::vector<std::string> cols;
  cols.reserve(plan.predicates.size());
  for (const Predicate& p : plan.predicates) cols.push_back(p.column);
  std::sort(cols.begin(), cols.end());
  std::string key = plan.table;
  for (const std::string& c : cols) key += "|" + c;
  return key;
}

std::vector<ScanShareGroup> analyze_scan_sharing(
    const storage::Catalog& catalog, const hw::MachineSpec& machine,
    std::span<const SharedBatchMember> batch) {
  std::vector<ScanShareGroup> groups;
  std::map<std::string, std::size_t> by_key;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::string key;
    if (batch[i].phys != nullptr && batch[i].options != nullptr)
      key = scan_sharing_key(catalog, *batch[i].phys, *batch[i].options);
    if (key.empty()) {
      ScanShareGroup g;
      g.members.push_back(i);
      groups.push_back(std::move(g));
      continue;
    }
    const auto [it, fresh] = by_key.try_emplace(key, groups.size());
    if (fresh) {
      ScanShareGroup g;
      g.key = key;
      groups.push_back(std::move(g));
    }
    groups[it->second].members.push_back(i);
  }

  // Price each candidate group: share vs run independent.
  static const opt::CostModel default_model = opt::CostModel::defaults();
  static const hw::AcceleratorSpec near_memory = hw::AcceleratorSpec::pim();
  for (ScanShareGroup& g : groups) {
    if (g.key.empty() || g.members.size() < 2) continue;
    const SharedBatchMember& first = batch[g.members.front()];
    const Table& table = catalog.get(first.phys->logical.table);
    const opt::CostModel& cm = first.options->cost_model != nullptr
                                   ? *first.options->cost_model
                                   : default_model;
    // Distinct predicate columns, at the bytes the pass streams (members
    // share the conjunct structure, so the first member's set is the
    // group's set).
    double bytes = 0;
    std::vector<std::string> seen;
    for (const Predicate& p : first.phys->logical.predicates) {
      if (std::find(seen.begin(), seen.end(), p.column) != seen.end())
        continue;
      seen.push_back(p.column);
      bytes += streamed_bytes(table.column(p.column), *first.options);
    }
    const double member_cycles =
        ops::kScanCyclesPerTuple * static_cast<double>(table.row_count()) *
        static_cast<double>(first.phys->logical.predicates.size());
    const opt::ScanSharingChoice choice = cm.pick_scan_sharing(
        machine, g.members.size(), bytes, member_cycles, near_memory);
    g.share = choice.share;
    g.est_scan_bytes = bytes;
    g.est_independent_j = choice.independent_j;
    g.est_shared_j = choice.shared_j;
  }
  return groups;
}

void execute_shared_group(const storage::Catalog& catalog,
                          std::span<const SharedBatchMember> members,
                          std::span<SharedMemberOut> outs) {
  EIDB_EXPECTS(!members.empty() && outs.size() == members.size());
  const ExecOptions& lead_options = *members.front().options;
  const Table& table = catalog.get(members.front().phys->logical.table);
  if (!table.complete())
    throw Error("table not fully loaded: " + table.name());
  const std::size_t rows = table.row_count();

  // Phase 1: bind + prune every member, collect the fused query set.
  std::vector<MemberPrep> preps(members.size());
  std::vector<exec::SharedQuery> fused;
  std::vector<std::size_t> fused_members;  // fused index -> member index
  for (std::size_t i = 0; i < members.size(); ++i) {
    preps[i] = prepare_member(table, *members[i].phys, *members[i].options);
    if (!preps[i].conjuncts.empty()) {
      preps[i].fused_index = fused.size();
      fused.push_back({preps[i].conjuncts, &preps[i].selection});
      fused_members.push_back(i);
    }
  }

  // Fan-out cap: the widest member core grant (0 = whole pool) — one
  // query's worth of workers, not one per member; the group occupies a
  // single dispatch slot.
  std::size_t width = 0;
  for (const SharedBatchMember& m : members)
    if (m.phys->governor.enabled)
      width = std::max(width, static_cast<std::size_t>(
                                  std::max(1, m.phys->governor.cores)));

  exec::SharedScanStats fstats;
  Stopwatch fused_sw;
  if (!fused.empty())
    exec::shared_scan(rows, fused, lead_options.pool, width, fstats);
  const double fused_s = fused_sw.elapsed_seconds();

  // Phase 2: each member's pipeline over its preset selection (the preset
  // path charges nothing for the scan — the group charge lands below).
  std::vector<double> pipeline_s(members.size(), 0);
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::vector<std::uint32_t> idx_scratch;
    std::vector<std::int64_t> key_scratch;
    ops::OpContext ctx{catalog, *members[i].options, outs[i].stats,
                       idx_scratch, key_scratch, {}};
    if (members[i].phys->governor.enabled)
      ctx.cores = static_cast<std::size_t>(
          std::max(1, members[i].phys->governor.cores));
    Stopwatch sw;
    try {
      outs[i].result = ops::execute_pipeline(ctx, *members[i].phys, table,
                                             &preps[i].selection);
    } catch (const std::exception& e) {
      outs[i].error = e.what();
    }
    pipeline_s[i] = sw.elapsed_seconds();
    outs[i].stats.elapsed_s = pipeline_s[i];
  }

  // Phase 3: the group's single scan charge, attributed by per-member
  // work. The pass streamed each distinct column once — that is the whole
  // group's scan DRAM traffic.
  double group_bytes = 0;
  double group_saved = 0;
  {
    std::vector<std::string> charged;
    for (const std::size_t i : fused_members) {
      for (const auto& [col, packed] : preps[i].scanned) {
        if (std::find(charged.begin(), charged.end(), col->name()) !=
            charged.end())
          continue;
        charged.push_back(col->name());
        if (packed) {
          group_bytes += static_cast<double>(col->scan_byte_size());
          group_saved += static_cast<double>(col->byte_size()) -
                         static_cast<double>(col->scan_byte_size());
        } else {
          group_bytes += static_cast<double>(col->byte_size());
        }
      }
    }
  }

  // Weights: sink bytes (the pipeline's DRAM traffic past the scan) plus
  // selected rows — a member that used more of the pass pays more of it.
  // Residuals go to the last participant so the shares sum byte-exactly.
  std::vector<std::size_t> participants;
  for (const std::size_t i : fused_members)
    if (outs[i].error.empty()) participants.push_back(i);
  if (participants.empty() || group_bytes <= 0) return;

  double weight_sum = 0;
  std::vector<double> weight(members.size(), 0);
  for (const std::size_t i : participants) {
    weight[i] = outs[i].stats.work.dram_bytes +
                8.0 * static_cast<double>(outs[i].stats.tuples_selected) + 1.0;
    weight_sum += weight[i];
  }

  double bytes_assigned = 0;
  double saved_assigned = 0;
  double seconds_assigned = 0;
  for (std::size_t k = 0; k < participants.size(); ++k) {
    const std::size_t i = participants[k];
    const bool last = k + 1 == participants.size();
    const double frac = weight[i] / weight_sum;
    const double bytes_share =
        last ? group_bytes - bytes_assigned : group_bytes * frac;
    const double saved_share =
        last ? group_saved - saved_assigned : group_saved * frac;
    const double sec_share =
        last ? fused_s - seconds_assigned : fused_s * frac;
    bytes_assigned += bytes_share;
    saved_assigned += saved_share;
    seconds_assigned += sec_share;

    ExecStats& st = outs[i].stats;
    const std::uint64_t evaluated =
        fstats.evaluated.empty() ? 0
                                 : fstats.evaluated[preps[i].fused_index];
    const double cycles =
        ops::kScanCyclesPerTuple * static_cast<double>(evaluated);
    st.work.dram_bytes += bytes_share;
    st.work.cpu_cycles += cycles;
    st.dram_bytes_saved += saved_share;
    st.tuples_scanned += evaluated;
    for (const auto& [col, packed] : preps[i].scanned)
      if (packed) ++st.packed_column_reads;
    st.elapsed_s += sec_share;
    // Fold the share into the scan operator's attribution entry so the
    // per-operator work deltas still sum to the query totals byte-exactly.
    if (!st.operators.empty() &&
        st.operators.front().name.rfind("scan+filter", 0) == 0) {
      st.operators.front().work.dram_bytes += bytes_share;
      st.operators.front().work.cpu_cycles += cycles;
      st.operators.front().seconds += sec_share;
    }
  }
}

}  // namespace eidb::query
