#include "query/request.hpp"

#include <sstream>

namespace eidb::query {

QueryRequest QueryRequest::from_sql(std::string sql_text) {
  QueryRequest r;
  r.sql = std::move(sql_text);
  return r;
}

QueryRequest QueryRequest::from_plan(LogicalPlan logical_plan) {
  QueryRequest r;
  r.plan = std::move(logical_plan);
  return r;
}

std::string to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kError:
      return "error";
    case ResponseStatus::kShutdown:
      return "shutdown";
  }
  return "invalid";
}

std::string QueryResponse::to_string() const {
  std::ostringstream os;
  os << query::to_string(status);
  if (status == ResponseStatus::kOk) {
    os << " rows=" << result.row_count() << " latency_ms=" << latency_s * 1e3
       << " energy_J=" << report.total_j() << " freq_GHz=" << chosen_freq_ghz;
  } else if (!error.empty()) {
    os << " (" << error << ")";
  }
  return os.str();
}

}  // namespace eidb::query
