// Worker pool for morsel-driven parallel execution.
//
// Real threads, used for functional correctness of parallel operators (the
// scaling *curves* come from hw::sync_sim — see DESIGN.md §5). The pool is
// deliberately simple: a shared queue with condition-variable wakeup; morsel
// granularity keeps queue pressure negligible for analytic scans.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eidb::sched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Splits [0, n) into chunks of at most `grain` and runs
  /// `fn(begin, end)` across the pool; blocks until complete.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace eidb::sched
