// Worker pool for morsel-driven parallel execution.
//
// Real threads, used for functional correctness of parallel operators (the
// scaling *curves* come from hw::sync_sim — see DESIGN.md §5). The pool is
// deliberately simple: a shared queue with condition-variable wakeup; morsel
// granularity keeps queue pressure negligible for analytic scans.
//
// One pool is meant to be SHARED: core::Database owns an engine pool that
// every concurrent session's operators draw from. parallel_for is therefore
// scoped per call — each invocation tracks its own completion group, so two
// queries fanning out on the same pool never wait on (or observe exceptions
// from) each other's morsels, and the calling thread helps drain its own
// chunks, so a parallel_for issued from a pool worker cannot deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eidb::sched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. A task that throws does not kill its worker; the
  /// first stored exception is rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception (if any) that escaped a submitted task since the
  /// last wait_idle().
  void wait_idle();

  /// Splits [0, n) into chunks of at most `grain` and runs
  /// `fn(begin, end)` across the pool; blocks until complete.
  ///
  /// Edge cases: n == 0 returns immediately; grain == 0 picks a default
  /// chunk size (~4 chunks per worker); grain >= n (or a 1-thread pool)
  /// runs serially on the calling thread — still one `fn` call per grain
  /// chunk, in order, because callers may key per-chunk state off
  /// `begin / grain`. The first exception thrown by
  /// any chunk is rethrown here once every chunk of THIS call has
  /// settled — concurrent parallel_for calls on a shared pool are
  /// isolated from each other and from wait_idle().
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace eidb::sched
