#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace eidb::sched {

StreamScheduler::StreamScheduler(hw::MachineSpec machine, Policy policy,
                                 double power_cap_w)
    : machine_(std::move(machine)),
      engine_(machine_, policy, power_cap_w) {}

ScheduleResult StreamScheduler::run(const std::vector<QueryArrival>& stream) {
  ScheduleResult res;
  res.queries = stream.size();
  if (stream.empty()) return res;
  EIDB_EXPECTS(std::is_sorted(stream.begin(), stream.end(),
                              [](const QueryArrival& a, const QueryArrival& b) {
                                return a.arrive_s < b.arrive_s;
                              }));

  // Min-heap of core-free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> cores;
  for (int c = 0; c < machine_.cores; ++c) cores.push(0.0);

  StreamingStats latency;
  PercentileTracker latency_p;
  double busy_energy_j = 0;
  double busy_core_seconds = 0;
  double last_done = 0;
  double energy_so_far = 0;  // busy energy accumulated, for the cap policy

  for (const QueryArrival& q : stream) {
    const double core_free = cores.top();
    cores.pop();
    const double start = std::max(q.arrive_s, core_free);
    // Rolling average power estimate for the cap policy: busy energy so far
    // plus static floor, over elapsed time.
    const double elapsed = std::max(start, 1e-9);
    const double avg_power =
        (energy_so_far + machine_.idle_power_w() * elapsed) / elapsed;
    const hw::DvfsState& s = engine_.choose_state(avg_power);

    const double exec = machine_.exec_time_s(q.work, s);
    const double done = start + exec;
    const double busy_j = engine_.busy_energy_j(q.work, s, exec);
    busy_energy_j += busy_j;
    energy_so_far += busy_j;
    busy_core_seconds += exec;
    cores.push(done);
    last_done = std::max(last_done, done);
    const double lat = done - q.arrive_s;
    latency.add(lat);
    latency_p.add(lat);
  }

  res.makespan_s = last_done;
  res.mean_latency_s = latency.mean();
  res.p95_latency_s = latency_p.percentile(95);
  res.throughput_qps = static_cast<double>(stream.size()) / last_done;
  // Total energy = static floor over the makespan + dynamic busy energy.
  res.energy_j = machine_.idle_power_w() * last_done + busy_energy_j;
  res.avg_power_w = res.energy_j / last_done;
  res.energy_per_query_j = res.energy_j / static_cast<double>(stream.size());
  return res;
}

std::vector<QueryArrival> poisson_stream(std::size_t count, double rate_qps,
                                         const hw::Work& work,
                                         std::uint64_t seed) {
  EIDB_EXPECTS(rate_qps > 0);
  Pcg32 rng(seed);
  std::vector<QueryArrival> stream;
  stream.reserve(count);
  double t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Exponential inter-arrival times.
    const double u = std::max(rng.next_double(), 1e-12);
    t += -std::log(u) / rate_qps;
    stream.push_back({t, work});
  }
  return stream;
}

}  // namespace eidb::sched
