// Energy governor: "elasticity in the small" (paper §IV, Figure 2).
//
// Given an amount of work, a machine, and a constraint (deadline or joule
// budget), the governor picks the execution configuration — P-state, core
// count, and idle strategy. Two classic policies are implemented and
// compared in experiment E7:
//
//  * race-to-idle: run at f_max, then drop into the deepest C-state for the
//    remaining slack;
//  * pace: pick the slowest P-state that still meets the deadline, using
//    the superlinear P(f) curve to cut energy while busy.
//
// Which one wins depends on the ratio of idle to active power — exactly the
// "case-by-case" flexibility the paper demands.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/machine.hpp"

namespace eidb::sched {

/// A fully resolved execution configuration with its predicted cost.
struct GovernorDecision {
  hw::DvfsState state;
  int cores = 1;
  double busy_s = 0;      ///< Time actually computing.
  double idle_s = 0;      ///< Slack spent idle/asleep (deadline given).
  double energy_j = 0;    ///< Predicted total over busy + slack window.
  std::string policy;     ///< "race-to-idle" | "pace" | "energy-cap" ...
};

/// Policy knobs.
struct GovernorOptions {
  /// Whether slack may be spent in the deepest package sleep state. On a
  /// consolidated server that must keep other tenants' data hot, powering
  /// the package down is not an option — then only shallow idle is
  /// available and pacing becomes attractive (the E7 crossover).
  bool allow_deep_sleep = true;
};

class Governor {
 public:
  explicit Governor(hw::MachineSpec machine, GovernorOptions options = {})
      : machine_(std::move(machine)), options_(options) {}

  [[nodiscard]] const hw::MachineSpec& machine() const { return machine_; }
  [[nodiscard]] const GovernorOptions& options() const { return options_; }

  /// Race-to-idle under `deadline_s`: f_max, then deepest C-state that can
  /// wake before the deadline. Energy covers the whole deadline window.
  [[nodiscard]] GovernorDecision race_to_idle(const hw::Work& work,
                                              double deadline_s,
                                              int cores = 1) const;

  /// Pace under `deadline_s`: slowest P-state finishing in time (falls back
  /// to f_max when even that misses). Energy covers the whole window.
  [[nodiscard]] GovernorDecision pace(const hw::Work& work, double deadline_s,
                                      int cores = 1) const;

  /// The better of race/pace for this workload and deadline.
  [[nodiscard]] GovernorDecision best_under_deadline(const hw::Work& work,
                                                     double deadline_s,
                                                     int cores = 1) const;

  /// Fastest configuration whose energy stays within `budget_j`
  /// (experiment F2: the response-time-vs-energy-budget curve). Sweeps
  /// P-states × core counts; returns nullopt when no configuration fits.
  [[nodiscard]] std::optional<GovernorDecision> fastest_within_budget(
      const hw::Work& work, double budget_j) const;

  /// Minimal-energy configuration with no deadline (throughput mode).
  [[nodiscard]] GovernorDecision most_efficient(const hw::Work& work,
                                                int cores = 1) const;

  /// Full (time, energy) frontier over P-states for `cores` — each point is
  /// a run-to-completion execution with no idle tail.
  [[nodiscard]] std::vector<GovernorDecision> frontier(const hw::Work& work,
                                                       int cores = 1) const;

  /// P-state minimizing the *incremental* (above-idle) energy of one unit
  /// of work — the right notion when the package stays powered across a
  /// query stream and only busy power is attributable to the query.
  [[nodiscard]] hw::DvfsState incremental_efficient_state(
      const hw::Work& work) const;

 private:
  [[nodiscard]] GovernorDecision run_to_completion(const hw::Work& work,
                                                   const hw::DvfsState& s,
                                                   int cores) const;
  /// Power drawn during slack, honoring the deep-sleep option.
  [[nodiscard]] double slack_power_w(double slack_s) const;

  hw::MachineSpec machine_;
  GovernorOptions options_;
};

}  // namespace eidb::sched
