// Query-stream scheduler: response time vs. throughput under an energy cap.
//
// §IV "Performance": "we see application domains ... where throughput
// optimization is more important than response time optimization of a
// single query ... which is also highly correlated to improved energy
// efficiency." And §IV "Energy efficiency": "the system has to flexibly
// balance query response time minimization and throughput maximization
// under a given energy constraint on a case-by-case basis."
//
// Discrete-event simulation of a k-core server executing a stream of
// queries (experiment E8). Policies:
//  * kLatency     — every query runs immediately-as-possible at f_max.
//  * kThroughput  — queries run at the most energy-efficient P-state.
//  * kEnergyCap   — run at f_max while the rolling average power stays
//                   under the cap, else drop to the efficient state
//                   (graceful degradation instead of admission rejection).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "sched/policy_engine.hpp"

namespace eidb::sched {

/// One query in the arrival stream.
struct QueryArrival {
  double arrive_s = 0;
  hw::Work work;
};

/// Aggregate outcome of a simulated run.
struct ScheduleResult {
  std::size_t queries = 0;
  double makespan_s = 0;
  double mean_latency_s = 0;
  double p95_latency_s = 0;
  double throughput_qps = 0;
  double energy_j = 0;
  double avg_power_w = 0;
  double energy_per_query_j = 0;
};

class StreamScheduler {
 public:
  StreamScheduler(hw::MachineSpec machine, Policy policy,
                  double power_cap_w = 0);

  /// Simulates the stream (arrivals must be sorted by arrive_s). Each query
  /// occupies one core; queries queue FIFO when all cores are busy.
  [[nodiscard]] ScheduleResult run(const std::vector<QueryArrival>& stream);

  /// The shared decision kernel this simulator runs against.
  [[nodiscard]] const PolicyEngine& engine() const { return engine_; }

 private:
  hw::MachineSpec machine_;
  PolicyEngine engine_;
};

/// Poisson arrivals of identical queries (workload generator for E8).
[[nodiscard]] std::vector<QueryArrival> poisson_stream(std::size_t count,
                                                       double rate_qps,
                                                       const hw::Work& work,
                                                       std::uint64_t seed);

}  // namespace eidb::sched
