#include "sched/governor.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace eidb::sched {

GovernorDecision Governor::run_to_completion(const hw::Work& work,
                                             const hw::DvfsState& s,
                                             int cores) const {
  GovernorDecision d;
  d.state = s;
  d.cores = cores;
  const hw::Work per_core{work.cpu_cycles / cores, work.dram_bytes / cores};
  d.busy_s = machine_.exec_time_s(per_core, s, 1.0 / cores);
  d.energy_j = machine_.package_power_w(s, cores) * d.busy_s +
               work.dram_bytes * machine_.dram_energy_nj_per_byte * 1e-9;
  return d;
}

double Governor::slack_power_w(double slack_s) const {
  if (options_.allow_deep_sleep && slack_s > machine_.package_wake_latency_s)
    return machine_.sleep_power_w();
  return machine_.idle_power_w();
}

GovernorDecision Governor::race_to_idle(const hw::Work& work,
                                        double deadline_s, int cores) const {
  GovernorDecision d =
      run_to_completion(work, machine_.dvfs.fastest(), cores);
  d.policy = "race-to-idle";
  const double slack = deadline_s - d.busy_s;
  if (slack > 0) {
    d.idle_s = slack;
    d.energy_j += slack_power_w(slack) * slack;
  }
  return d;
}

GovernorDecision Governor::pace(const hw::Work& work, double deadline_s,
                                int cores) const {
  // Slowest P-state that still meets the deadline.
  for (const hw::DvfsState& s : machine_.dvfs.states()) {
    GovernorDecision d = run_to_completion(work, s, cores);
    if (d.busy_s <= deadline_s) {
      d.policy = "pace";
      const double slack = deadline_s - d.busy_s;
      if (slack > 0) {
        d.idle_s = slack;
        d.energy_j += slack_power_w(slack) * slack;
      }
      return d;
    }
  }
  GovernorDecision d = run_to_completion(work, machine_.dvfs.fastest(), cores);
  d.policy = "pace";  // deadline unattainable: degenerate to f_max
  return d;
}

GovernorDecision Governor::best_under_deadline(const hw::Work& work,
                                               double deadline_s,
                                               int cores) const {
  const GovernorDecision race = race_to_idle(work, deadline_s, cores);
  const GovernorDecision paced = pace(work, deadline_s, cores);
  return paced.energy_j < race.energy_j ? paced : race;
}

std::optional<GovernorDecision> Governor::fastest_within_budget(
    const hw::Work& work, double budget_j) const {
  std::optional<GovernorDecision> best;
  for (int cores = 1; cores <= machine_.cores; ++cores) {
    for (const hw::DvfsState& s : machine_.dvfs.states()) {
      GovernorDecision d = run_to_completion(work, s, cores);
      d.policy = "energy-cap";
      if (d.energy_j > budget_j) continue;
      if (!best || d.busy_s < best->busy_s ||
          (d.busy_s == best->busy_s && d.energy_j < best->energy_j))
        best = d;
    }
  }
  return best;
}

GovernorDecision Governor::most_efficient(const hw::Work& work,
                                          int cores) const {
  GovernorDecision best;
  best.energy_j = std::numeric_limits<double>::infinity();
  for (const hw::DvfsState& s : machine_.dvfs.states()) {
    const GovernorDecision d = run_to_completion(work, s, cores);
    if (d.energy_j < best.energy_j) best = d;
  }
  best.policy = "most-efficient";
  return best;
}

hw::DvfsState Governor::incremental_efficient_state(
    const hw::Work& work) const {
  hw::DvfsState best = machine_.dvfs.fastest();
  double best_j = std::numeric_limits<double>::infinity();
  for (const hw::DvfsState& s : machine_.dvfs.states()) {
    const double t = machine_.exec_time_s(work, s);
    const double j = (s.active_power_w - machine_.core_idle_power_w) * t +
                     work.dram_bytes * machine_.dram_energy_nj_per_byte * 1e-9;
    if (j < best_j) {
      best_j = j;
      best = s;
    }
  }
  return best;
}

std::vector<GovernorDecision> Governor::frontier(const hw::Work& work,
                                                 int cores) const {
  std::vector<GovernorDecision> points;
  points.reserve(machine_.dvfs.size());
  for (const hw::DvfsState& s : machine_.dvfs.states()) {
    GovernorDecision d = run_to_completion(work, s, cores);
    d.policy = "frontier";
    points.push_back(d);
  }
  return points;
}

}  // namespace eidb::sched
