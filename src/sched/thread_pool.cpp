#include "sched/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::sched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  EIDB_EXPECTS(task != nullptr);
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  EIDB_EXPECTS(grain > 0);
  if (n == 0) return;
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(begin + grain, n);
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::scoped_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace eidb::sched
