#include "sched/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/assert.hpp"

namespace eidb::sched {
namespace {

// Completion state for one parallel_for call. Heap-allocated and shared
// with the runner tasks so the last finisher — caller or runner — keeps
// it alive regardless of who returns first.
struct ForGroup {
  std::atomic<std::size_t> next_chunk{0};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t running = 0;
  std::exception_ptr error;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  EIDB_EXPECTS(task != nullptr);
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = thread_count();
  if (grain == 0) grain = std::max<std::size_t>(1, n / (workers * 4));
  if (grain >= n || workers <= 1) {
    // Serial path — but still one fn() call PER GRAIN CHUNK, in order.
    // Callers index per-chunk result slots by `begin / grain` (the
    // morsel-join merge), so the chunk geometry is part of the contract
    // and must not depend on the pool width.
    for (std::size_t b = 0; b < n; b += grain)
      fn(b, std::min(n, b + grain));
    return;
  }

  const std::size_t chunks = (n + grain - 1) / grain;
  auto group = std::make_shared<ForGroup>();
  // Chunks are claimed from a shared counter rather than enqueued one task
  // each: at most `workers` runner tasks touch the queue, and the calling
  // thread drains chunks too, so progress never depends on a free worker.
  auto run_chunks = [group, &fn, n, grain, chunks] {
    try {
      for (;;) {
        const std::size_t chunk =
            group->next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= chunks) return;
        const std::size_t begin = chunk * grain;
        fn(begin, std::min(begin + grain, n));
      }
    } catch (...) {
      std::scoped_lock lock(group->mu);
      if (!group->error) group->error = std::current_exception();
      // Poison the counter so remaining runners stop claiming work.
      group->next_chunk.store(chunks, std::memory_order_relaxed);
    }
  };

  const std::size_t runners = std::min(workers, chunks - 1);
  {
    std::scoped_lock lock(group->mu);
    group->running = runners;
  }
  for (std::size_t i = 0; i < runners; ++i) {
    submit([group, run_chunks] {
      run_chunks();
      std::scoped_lock lock(group->mu);
      --group->running;
      if (group->running == 0) group->cv.notify_all();
    });
  }
  run_chunks();
  std::unique_lock lock(group->mu);
  group->cv.wait(lock, [&group] { return group->running == 0; });
  if (group->error) {
    std::exception_ptr error = std::exchange(group->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::scoped_lock lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace eidb::sched
