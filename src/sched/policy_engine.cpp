#include "sched/policy_engine.hpp"

#include "sched/governor.hpp"

namespace eidb::sched {

std::string policy_name(Policy p) {
  switch (p) {
    case Policy::kLatency:
      return "latency";
    case Policy::kThroughput:
      return "throughput";
    case Policy::kEnergyCap:
      return "energy-cap";
  }
  return "invalid";
}

PolicyEngine::PolicyEngine(hw::MachineSpec machine, Policy policy,
                           double power_cap_w)
    : machine_(std::move(machine)),
      policy_(policy),
      power_cap_w_(power_cap_w) {
  const Governor gov(machine_);
  efficient_state_ = gov.incremental_efficient_state({1e9, 1e8});
}

const hw::DvfsState& PolicyEngine::choose_state(
    double rolling_avg_power_w) const {
  switch (policy_) {
    case Policy::kLatency:
      return machine_.dvfs.fastest();
    case Policy::kThroughput:
      return machine_.dvfs.at_least(efficient_state_.freq_ghz);
    case Policy::kEnergyCap:
      return rolling_avg_power_w > power_cap_w_
                 ? machine_.dvfs.at_least(efficient_state_.freq_ghz)
                 : machine_.dvfs.fastest();
  }
  return machine_.dvfs.fastest();
}

double PolicyEngine::slowdown(const hw::DvfsState& s) const {
  if (s.freq_ghz <= 0) return 1.0;
  const double factor = machine_.dvfs.fastest().freq_ghz / s.freq_ghz;
  return factor < 1.0 ? 1.0 : factor;
}

double PolicyEngine::busy_energy_j(const hw::Work& work,
                                   const hw::DvfsState& s,
                                   double busy_s) const {
  return machine_.incremental_busy_energy_j(work, s, busy_s);
}

}  // namespace eidb::sched
