// sched::PolicyEngine — the paper's stream policies as a reusable decision
// kernel.
//
// §IV "Energy efficiency": "the system has to flexibly balance query
// response time minimization and throughput maximization under a given
// energy constraint on a case-by-case basis." The *decision* (which P-state
// should the next query run at, given the rolling average power) is
// identical whether queries are simulated (sched::StreamScheduler, E8) or
// actually executed (server::QueryService) — so it lives here, once, and
// both tiers share it. Policies:
//
//  * kLatency     — every query runs at f_max.
//  * kThroughput  — queries run at the most incrementally energy-efficient
//                   P-state (lowest above-idle joules per unit of work).
//  * kEnergyCap   — f_max while the rolling average power stays under the
//                   cap, else the efficient state (graceful degradation
//                   instead of admission rejection).
#pragma once

#include <cstdint>
#include <string>

#include "hw/machine.hpp"

namespace eidb::sched {

enum class Policy : std::uint8_t { kLatency, kThroughput, kEnergyCap };

[[nodiscard]] std::string policy_name(Policy p);

class PolicyEngine {
 public:
  /// `power_cap_w` is only consulted by kEnergyCap.
  PolicyEngine(hw::MachineSpec machine, Policy policy, double power_cap_w = 0);

  [[nodiscard]] Policy policy() const noexcept { return policy_; }
  [[nodiscard]] double power_cap_w() const noexcept { return power_cap_w_; }
  [[nodiscard]] const hw::MachineSpec& machine() const noexcept {
    return machine_;
  }

  /// P-state minimizing incremental (above-idle) energy of a representative
  /// memory-light query: across a stream the package is powered regardless,
  /// so only busy power is attributable per query.
  [[nodiscard]] const hw::DvfsState& efficient_state() const noexcept {
    return efficient_state_;
  }

  /// The P-state the next query should run at, given the rolling average
  /// power of the stream so far.
  [[nodiscard]] const hw::DvfsState& choose_state(
      double rolling_avg_power_w) const;

  /// Wall-clock stretch of `s` relative to f_max for compute-bound work
  /// (>= 1). The live service paces execution by this factor to realize a
  /// P-state it cannot program into the host silicon.
  [[nodiscard]] double slowdown(const hw::DvfsState& s) const;

  /// Incremental (above-idle) busy energy of `work` executed at `s` for
  /// `busy_s` seconds — shared accounting for simulator and live service.
  [[nodiscard]] double busy_energy_j(const hw::Work& work,
                                     const hw::DvfsState& s,
                                     double busy_s) const;

 private:
  hw::MachineSpec machine_;
  Policy policy_;
  double power_cap_w_;
  hw::DvfsState efficient_state_;
};

}  // namespace eidb::sched
