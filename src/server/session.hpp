// server::Session — one client's handle onto the query service.
//
// A session binds requests to a *tenant*: the identity admission control
// bills joules against, and the scope under which the database ledger
// records this client's energy. Counters are atomics so the service's
// worker threads update them without locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace eidb::server {

/// Point-in-time snapshot of a session's counters.
struct SessionStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  double energy_j = 0;  ///< Measured joules billed to this session so far.
};

[[nodiscard]] std::string to_string(const SessionStats& s);

class Session {
 public:
  Session(std::uint64_t id, std::string tenant)
      : id_(id), tenant_(std::move(tenant)) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }
  /// Ledger scope this session's runs are attributed to.
  [[nodiscard]] const std::string& scope() const noexcept { return tenant_; }

  void record_submit() noexcept { submitted_.fetch_add(1); }
  void record_reject() noexcept { rejected_.fetch_add(1); }
  void record_error() noexcept { errors_.fetch_add(1); }
  void record_complete(double energy_j) noexcept {
    completed_.fetch_add(1);
    // fetch_add(double) needs C++20 atomic<double>; emulate with CAS so the
    // library stays buildable on toolchains without lock-free FP atomics.
    double cur = energy_j_.load(std::memory_order_relaxed);
    while (!energy_j_.compare_exchange_weak(cur, cur + energy_j,
                                            std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] SessionStats stats() const {
    SessionStats s;
    s.submitted = submitted_.load();
    s.completed = completed_.load();
    s.rejected = rejected_.load();
    s.errors = errors_.load();
    s.energy_j = energy_j_.load();
    return s;
  }

 private:
  std::uint64_t id_;
  std::string tenant_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<double> energy_j_{0};
};

}  // namespace eidb::server
