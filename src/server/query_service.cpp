#include "server/query_service.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace eidb::server {

namespace {

/// Lock-free max for atomic<double> (no fetch_max for FP in C++20).
void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

QueryService::QueryService(core::Database& db, ServiceOptions options)
    : db_(db),
      options_(options),
      engine_(db.machine(), options.policy, options.power_cap_w),
      admission_(options.admit_unknown_tenants),
      coalescer_(queue_, {options.coalesce_window_s, options.max_batch}),
      monitor_(options.power_window_s, db.machine().idle_power_w()),
      pool_(options.workers) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QueryService::~QueryService() { stop(); }

std::shared_ptr<Session> QueryService::open_session(std::string tenant) {
  return std::make_shared<Session>(next_session_id_.fetch_add(1),
                                   std::move(tenant));
}

void QueryService::set_tenant_budget(const std::string& tenant,
                                     TenantBudget budget) {
  admission_.set_budget(tenant, budget, now_s());
}

std::future<query::QueryResponse> QueryService::submit(
    const std::shared_ptr<Session>& session, query::QueryRequest request) {
  submitted_.fetch_add(1);
  session->record_submit();

  std::promise<query::QueryResponse> promise;
  std::future<query::QueryResponse> future = promise.get_future();

  query::QueryResponse early;
  early.tag = request.tag;

  if (stopped_.load()) {
    early.status = query::ResponseStatus::kShutdown;
    early.error = "service stopped";
    promise.set_value(std::move(early));
    return future;
  }

  const double now = now_s();
  if (!admission_.try_admit(session->tenant(), now)) {
    rejected_.fetch_add(1);
    session->record_reject();
    early.status = query::ResponseStatus::kRejected;
    early.error = "tenant energy budget exhausted: " + session->tenant();
    promise.set_value(std::move(early));
    return future;
  }
  admitted_.fetch_add(1);

  PendingQuery pending{std::move(request), session, now, std::move(promise)};
  if (!queue_.push(std::move(pending))) {
    // Closed between the stopped_ check and the push: settle here.
    early.status = query::ResponseStatus::kShutdown;
    early.error = "service stopped";
    pending.promise.set_value(std::move(early));
  }
  return future;
}

query::QueryResponse QueryService::execute(
    const std::shared_ptr<Session>& session, query::QueryRequest request) {
  return submit(session, std::move(request)).get();
}

void QueryService::dispatcher_loop() {
  for (;;) {
    std::vector<PendingQuery> batch = coalescer_.next_batch();
    if (batch.empty()) return;  // Closed and drained.
    batches_.fetch_add(1);
    for (PendingQuery& item : batch) {
      // shared_ptr keeps the promise alive inside the copyable
      // std::function the pool requires.
      auto shared = std::make_shared<PendingQuery>(std::move(item));
      pool_.submit([this, shared] { execute_one(shared); });
    }
  }
}

void QueryService::execute_one(const std::shared_ptr<PendingQuery>& item) {
  query::QueryResponse resp;
  resp.tag = item->request.tag;

  const double dispatch_s = now_s();
  resp.queue_s = dispatch_s - item->admit_s;

  // Policy decision off the rolling average power — the same call the
  // discrete-event simulator makes per query.
  const double power_before = monitor_.avg_power_w(dispatch_s);
  atomic_max(peak_power_w_, power_before);
  const hw::DvfsState& state = engine_.choose_state(power_before);
  resp.chosen_freq_ghz = state.freq_ghz;

  core::RunOptions run_options;
  run_options.ledger_scope = item->session->scope();
  run_options.energy_budget_j = item->request.energy_budget_j;
  run_options.deadline_s = item->request.deadline_s;

  try {
    core::RunResult run =
        item->request.plan.has_value()
            ? db_.run(*item->request.plan, run_options)
            : db_.run_sql(item->request.sql, run_options);

    resp.result = std::move(run.result);
    resp.report = run.report;
    if (run.governor.enabled) {
      // The plan governor's decision, surfaced so the client can reconcile
      // the prediction against the measured settlement (billed_j below).
      resp.governor_policy = run.governor.policy;
      resp.governor_cores = run.governor.cores;
      resp.governor_freq_ghz = run.governor.state.freq_ghz;
      resp.predicted_j = run.governor.est_energy_j;
    }

    // Realize the chosen P-state by pacing: the kernels already ran at
    // host speed in `busy_s`; stretch wall time to what f_chosen would
    // have taken and account busy energy at that state.
    const double busy_s = run.report.elapsed_s;
    const double slowdown = engine_.slowdown(state);
    const double stretched_s = busy_s * slowdown;
    if (options_.pace_execution && slowdown > 1.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(busy_s * (slowdown - 1.0)));
    }
    resp.policy_energy_j =
        engine_.busy_energy_j(run.stats.work, state, stretched_s);

    const double end_s = now_s();
    resp.exec_s = end_s - dispatch_s;
    resp.latency_s = end_s - item->admit_s;

    monitor_.add(end_s, resp.policy_energy_j);
    atomic_max(peak_power_w_, monitor_.avg_power_w(end_s));

    // Settlement: debit the tenant with this query's *attributed* joules —
    // the same figure the database ledger recorded under this session's
    // scope. (Not the meter-window total: that is a whole-machine counter
    // and would bill concurrent tenants for each other's work.)
    resp.billed_j = run.attributed_j;
    admission_.debit(item->session->tenant(), resp.billed_j, end_s);
    item->session->record_complete(resp.billed_j);
    completed_.fetch_add(1);
    resp.status = query::ResponseStatus::kOk;
  } catch (const std::exception& e) {
    const double end_s = now_s();
    resp.exec_s = end_s - dispatch_s;
    resp.latency_s = end_s - item->admit_s;
    resp.status = query::ResponseStatus::kError;
    resp.error = e.what();
    errors_.fetch_add(1);
    item->session->record_error();
  }

  item->promise.set_value(std::move(resp));
}

void QueryService::stop() {
  stopped_.store(true);
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.wait_idle();
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load();
  s.admitted = admitted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.errors = errors_.load();
  s.batches = batches_.load();
  s.busy_j = monitor_.total_busy_j();
  s.avg_power_w = monitor_.avg_power_w(clock_.elapsed_seconds());
  s.peak_power_w = peak_power_w_.load();
  s.queue_depth = queue_.size();
  return s;
}

}  // namespace eidb::server
