#include "server/query_service.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "query/shared_scan.hpp"
#include "query/sql.hpp"

namespace eidb::server {

namespace {

/// Lock-free max for atomic<double> (no fetch_max for FP in C++20).
void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

QueryService::QueryService(core::Database& db, ServiceOptions options)
    : db_(db),
      options_(options),
      engine_(db.machine(), options.policy, options.power_cap_w),
      admission_(options.admit_unknown_tenants),
      coalescer_(queue_, {options.coalesce_window_s, options.max_batch}),
      monitor_(options.power_window_s, db.machine().idle_power_w()),
      pool_(options.workers) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QueryService::~QueryService() { stop(); }

std::shared_ptr<Session> QueryService::open_session(std::string tenant) {
  return std::make_shared<Session>(next_session_id_.fetch_add(1),
                                   std::move(tenant));
}

void QueryService::set_tenant_budget(const std::string& tenant,
                                     TenantBudget budget) {
  admission_.set_budget(tenant, budget, now_s());
}

std::future<query::QueryResponse> QueryService::submit(
    const std::shared_ptr<Session>& session, query::QueryRequest request) {
  submitted_.fetch_add(1);
  session->record_submit();

  std::promise<query::QueryResponse> promise;
  std::future<query::QueryResponse> future = promise.get_future();

  query::QueryResponse early;
  early.tag = request.tag;

  if (stopped_.load()) {
    early.status = query::ResponseStatus::kShutdown;
    early.error = "service stopped";
    promise.set_value(std::move(early));
    return future;
  }

  const double now = now_s();
  if (!admission_.try_admit(session->tenant(), now)) {
    rejected_.fetch_add(1);
    session->record_reject();
    early.status = query::ResponseStatus::kRejected;
    early.error = "tenant energy budget exhausted: " + session->tenant();
    promise.set_value(std::move(early));
    return future;
  }
  admitted_.fetch_add(1);

  PendingQuery pending{std::move(request), session, now, std::move(promise)};
  if (!queue_.push(std::move(pending))) {
    // Closed between the stopped_ check and the push: settle here.
    early.status = query::ResponseStatus::kShutdown;
    early.error = "service stopped";
    pending.promise.set_value(std::move(early));
  }
  return future;
}

query::QueryResponse QueryService::execute(
    const std::shared_ptr<Session>& session, query::QueryRequest request) {
  return submit(session, std::move(request)).get();
}

void QueryService::dispatcher_loop() {
  for (;;) {
    std::vector<PendingQuery> batch = coalescer_.next_batch();
    if (batch.empty()) return;  // Closed and drained.
    batches_.fetch_add(1);
    // shared_ptr keeps each promise alive inside the copyable
    // std::function the pool requires.
    std::vector<std::shared_ptr<PendingQuery>> items;
    items.reserve(batch.size());
    for (PendingQuery& item : batch)
      items.push_back(std::make_shared<PendingQuery>(std::move(item)));

    if (!options_.shared_scans || items.size() < 2) {
      for (const auto& item : items)
        pool_.submit([this, item] { execute_one(item); });
      continue;
    }

    // Shared-scan pre-partition: parse each member's SQL once and bucket
    // by the request-level sharing key (FROM table + predicate columns).
    // Buckets of >= 2 become one group task — Database::run_batch then
    // re-checks compatibility on the *compiled* plans and its sharing arm
    // makes the final fuse/run-independent call. Everything else (no
    // predicates, parse failures, unique keys) dispatches independently.
    std::map<std::string, std::vector<std::shared_ptr<PendingQuery>>> buckets;
    std::vector<std::shared_ptr<PendingQuery>> solo;
    for (const auto& item : items) {
      if (!item->request.plan.has_value() && !item->request.sql.empty()) {
        try {
          item->request.plan = query::parse_sql(item->request.sql);
        } catch (...) {
          // Leave unparsed: the solo path's run_sql reports the error.
        }
      }
      std::string key;
      if (item->request.plan.has_value())
        key = query::scan_sharing_prekey(*item->request.plan);
      if (key.empty())
        solo.push_back(item);
      else
        buckets[key].push_back(item);
    }
    for (auto& [key, members] : buckets) {
      if (members.size() < 2) {
        solo.push_back(members.front());
        continue;
      }
      pool_.submit(
          [this, members = std::move(members)] { execute_group(members); });
    }
    for (const auto& item : solo)
      pool_.submit([this, item] { execute_one(item); });
  }
}

void QueryService::execute_one(const std::shared_ptr<PendingQuery>& item) {
  // Count this query in-flight and clamp its governor core grant to an
  // equal share of the engine pool: with k units executing concurrently,
  // each may fan out over at most width/k workers (requested vs granted
  // is surfaced in the response).
  const std::size_t inflight = inflight_.fetch_add(1) + 1;

  query::QueryResponse resp;
  resp.tag = item->request.tag;

  const double dispatch_s = now_s();
  resp.queue_s = dispatch_s - item->admit_s;

  // Policy decision off the rolling average power — the same call the
  // discrete-event simulator makes per query.
  const double power_before = monitor_.avg_power_w(dispatch_s);
  atomic_max(peak_power_w_, power_before);
  const hw::DvfsState& state = engine_.choose_state(power_before);
  resp.chosen_freq_ghz = state.freq_ghz;

  core::RunOptions run_options;
  run_options.ledger_scope = item->session->scope();
  run_options.energy_budget_j = item->request.energy_budget_j;
  run_options.deadline_s = item->request.deadline_s;
  run_options.exec.core_cap =
      std::max<std::size_t>(1, db_.pool().thread_count() / inflight);

  try {
    core::RunResult run =
        item->request.plan.has_value()
            ? db_.run(*item->request.plan, run_options)
            : db_.run_sql(item->request.sql, run_options);

    resp.result = std::move(run.result);
    resp.report = run.report;
    if (run.governor.enabled) {
      // The plan governor's decision, surfaced so the client can reconcile
      // the prediction against the measured settlement (billed_j below).
      resp.governor_policy = run.governor.policy;
      resp.governor_cores = run.governor.cores;
      resp.governor_requested_cores = run.governor.requested_cores;
      resp.governor_freq_ghz = run.governor.state.freq_ghz;
      resp.predicted_j = run.governor.est_energy_j;
    }

    // Realize the chosen P-state by pacing: the kernels already ran at
    // host speed in `busy_s`; stretch wall time to what f_chosen would
    // have taken and account busy energy at that state.
    const double busy_s = run.report.elapsed_s;
    const double slowdown = engine_.slowdown(state);
    const double stretched_s = busy_s * slowdown;
    if (options_.pace_execution && slowdown > 1.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(busy_s * (slowdown - 1.0)));
    }
    resp.policy_energy_j =
        engine_.busy_energy_j(run.stats.work, state, stretched_s);

    const double end_s = now_s();
    resp.exec_s = end_s - dispatch_s;
    resp.latency_s = end_s - item->admit_s;

    monitor_.add(end_s, resp.policy_energy_j);
    atomic_max(peak_power_w_, monitor_.avg_power_w(end_s));

    // Settlement: debit the tenant with this query's *attributed* joules —
    // the same figure the database ledger recorded under this session's
    // scope. (Not the meter-window total: that is a whole-machine counter
    // and would bill concurrent tenants for each other's work.)
    resp.billed_j = run.attributed_j;
    admission_.debit(item->session->tenant(), resp.billed_j, end_s);
    item->session->record_complete(resp.billed_j);
    completed_.fetch_add(1);
    resp.status = query::ResponseStatus::kOk;
  } catch (const std::exception& e) {
    const double end_s = now_s();
    resp.exec_s = end_s - dispatch_s;
    resp.latency_s = end_s - item->admit_s;
    resp.status = query::ResponseStatus::kError;
    resp.error = e.what();
    errors_.fetch_add(1);
    item->session->record_error();
  }

  inflight_.fetch_sub(1);
  item->promise.set_value(std::move(resp));
}

void QueryService::execute_group(
    const std::vector<std::shared_ptr<PendingQuery>>& items) {
  // One in-flight unit: the group's fused pass and its members' operator
  // pipelines share one core-grant slot, so its clamp is the same equal
  // share a solo query would get.
  const std::size_t inflight = inflight_.fetch_add(1) + 1;

  const double dispatch_s = now_s();
  const double power_before = monitor_.avg_power_w(dispatch_s);
  atomic_max(peak_power_w_, power_before);
  // One policy decision for the whole group — the members execute as one
  // unit, so they run (and pace) at one P-state.
  const hw::DvfsState& state = engine_.choose_state(power_before);

  std::vector<core::BatchItem> batch;
  batch.reserve(items.size());
  const std::size_t core_cap =
      std::max<std::size_t>(1, db_.pool().thread_count() / inflight);
  for (const auto& item : items) {
    core::BatchItem bi;
    bi.plan = *item->request.plan;  // dispatcher parsed before grouping
    bi.options.ledger_scope = item->session->scope();
    bi.options.energy_budget_j = item->request.energy_budget_j;
    bi.options.deadline_s = item->request.deadline_s;
    bi.options.exec.core_cap = core_cap;
    batch.push_back(std::move(bi));
  }

  std::string group_error;
  std::vector<core::RunResult> runs;
  Stopwatch sw;
  try {
    runs = db_.run_batch(batch);
  } catch (const std::exception& e) {
    group_error = e.what();  // per-member errors come back in runs instead
  }
  const double group_busy_s = sw.elapsed_seconds();

  // Pace ONCE on the group's wall time: the fused pass ran at host speed
  // for everyone, so the stretch to realize the chosen P-state is shared,
  // not paid per member.
  const double slowdown = engine_.slowdown(state);
  if (options_.pace_execution && slowdown > 1.0 && group_error.empty()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(group_busy_s * (slowdown - 1.0)));
  }
  const double end_s = now_s();

  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::shared_ptr<PendingQuery>& item = items[i];
    query::QueryResponse resp;
    resp.tag = item->request.tag;
    resp.queue_s = dispatch_s - item->admit_s;
    resp.chosen_freq_ghz = state.freq_ghz;
    resp.exec_s = end_s - dispatch_s;
    resp.latency_s = end_s - item->admit_s;

    const bool failed =
        !group_error.empty() || i >= runs.size() || !runs[i].error.empty();
    if (failed) {
      resp.status = query::ResponseStatus::kError;
      resp.error = !group_error.empty() ? group_error : runs[i].error;
      errors_.fetch_add(1);
      item->session->record_error();
      item->promise.set_value(std::move(resp));
      continue;
    }

    core::RunResult& run = runs[i];
    resp.result = std::move(run.result);
    resp.report = run.report;
    if (run.governor.enabled) {
      resp.governor_policy = run.governor.policy;
      resp.governor_cores = run.governor.cores;
      resp.governor_requested_cores = run.governor.requested_cores;
      resp.governor_freq_ghz = run.governor.state.freq_ghz;
      resp.predicted_j = run.governor.est_energy_j;
    }
    resp.shared_group = run.shared_group;
    resp.shared_members = run.shared_members;

    // Per-member policy energy at the member's own (stretched) busy
    // share — stats.elapsed_s already carries its slice of the fused
    // pass, so the rolling power sees the group's true footprint once.
    resp.policy_energy_j =
        engine_.busy_energy_j(run.stats.work, state,
                              run.stats.elapsed_s * slowdown);
    monitor_.add(end_s, resp.policy_energy_j);

    resp.billed_j = run.attributed_j;
    admission_.debit(item->session->tenant(), resp.billed_j, end_s);
    item->session->record_complete(resp.billed_j);
    completed_.fetch_add(1);
    resp.status = query::ResponseStatus::kOk;
    item->promise.set_value(std::move(resp));
  }
  atomic_max(peak_power_w_, monitor_.avg_power_w(end_s));
  inflight_.fetch_sub(1);
}

void QueryService::stop() {
  stopped_.store(true);
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.wait_idle();
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load();
  s.admitted = admitted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.errors = errors_.load();
  s.batches = batches_.load();
  s.busy_j = monitor_.total_busy_j();
  s.avg_power_w = monitor_.avg_power_w(clock_.elapsed_seconds());
  s.peak_power_w = peak_power_w_.load();
  s.queue_depth = queue_.size();
  return s;
}

}  // namespace eidb::server
