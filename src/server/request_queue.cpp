#include "server/request_queue.hpp"

#include <chrono>

namespace eidb::server {

bool RequestQueue::push(PendingQuery&& q) {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return false;
    items_.push_back(std::move(q));
  }
  cv_.notify_one();
  return true;
}

std::optional<PendingQuery> RequestQueue::pop() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;
  PendingQuery q = std::move(items_.front());
  items_.pop_front();
  return q;
}

std::optional<PendingQuery> RequestQueue::pop_for(double timeout_s) {
  std::unique_lock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_s));
  cv_.wait_until(lock, deadline,
                 [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;
  PendingQuery q = std::move(items_.front());
  items_.pop_front();
  return q;
}

void RequestQueue::close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::scoped_lock lock(mu_);
  return items_.size();
}

}  // namespace eidb::server
