#include "server/power_monitor.hpp"

#include "util/assert.hpp"

namespace eidb::server {

PowerMonitor::PowerMonitor(double window_s, double floor_w)
    : window_s_(window_s), floor_w_(floor_w) {
  EIDB_EXPECTS(window_s > 0);
  EIDB_EXPECTS(floor_w >= 0);
}

void PowerMonitor::prune(double now_s) const {
  const double horizon = now_s - window_s_;
  while (!events_.empty() && events_.front().first < horizon) {
    windowed_j_ -= events_.front().second;
    events_.pop_front();
  }
  if (events_.empty()) windowed_j_ = 0;  // Absorb FP drift at quiesce.
}

void PowerMonitor::add(double now_s, double joules) {
  std::scoped_lock lock(mu_);
  prune(now_s);
  events_.emplace_back(now_s, joules);
  windowed_j_ += joules;
  total_j_ += joules;
}

double PowerMonitor::avg_power_w(double now_s) const {
  std::scoped_lock lock(mu_);
  prune(now_s);
  return floor_w_ + windowed_j_ / window_s_;
}

double PowerMonitor::busy_j_in_window(double now_s) const {
  std::scoped_lock lock(mu_);
  prune(now_s);
  return windowed_j_;
}

double PowerMonitor::total_busy_j() const {
  std::scoped_lock lock(mu_);
  return total_j_;
}

}  // namespace eidb::server
