#include "server/batch_coalescer.hpp"

#include <chrono>

#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::server {

BatchCoalescer::BatchCoalescer(RequestQueue& queue, CoalescerOptions options)
    : queue_(queue), options_(options) {
  EIDB_EXPECTS(options_.window_s >= 0);
  EIDB_EXPECTS(options_.max_batch >= 1);
}

std::vector<PendingQuery> BatchCoalescer::next_batch() {
  std::vector<PendingQuery> batch;

  // The wake-up: block until the first query (or shutdown).
  std::optional<PendingQuery> first = queue_.pop();
  if (!first) return batch;
  batch.push_back(std::move(*first));

  // The window: collect whatever else arrives within `window_s` of the
  // wake-up, bounded by max_batch. With window_s == 0 this still drains
  // queries that are *already* waiting (burst absorption at zero cost).
  Stopwatch window;
  while (batch.size() < options_.max_batch) {
    const double remaining = options_.window_s - window.elapsed_seconds();
    std::optional<PendingQuery> next =
        remaining > 0 ? queue_.pop_for(remaining) : queue_.pop_for(0);
    if (!next) break;
    batch.push_back(std::move(*next));
  }
  return batch;
}

}  // namespace eidb::server
