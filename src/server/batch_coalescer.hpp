// server::BatchCoalescer — wake-up windows for race-to-idle serving.
//
// Waking a sleeping package costs latency and burns energy at partial
// utilization; the cheapest joules are the ones spent while the machine is
// already up (Governor/E7: race-to-idle). The coalescer realizes that at
// the serving tier: the dispatcher blocks until one query arrives (the
// wake-up), then keeps collecting queries that arrive within `window_s` of
// that first one — so a burst is served by ONE wake-up instead of one per
// query, and the package earns long uninterrupted idle gaps in between.
// `window_s == 0` degrades to immediate per-arrival dispatch (the latency
// policy's choice); a bounded `max_batch` caps how much latency the window
// can add under sustained overload.
#pragma once

#include <cstddef>
#include <vector>

#include "server/request_queue.hpp"

namespace eidb::server {

struct CoalescerOptions {
  /// How long after the first query of a batch to keep collecting.
  double window_s = 0;
  /// Hard batch bound: dispatch early once this many queries are queued.
  std::size_t max_batch = 64;
};

class BatchCoalescer {
 public:
  BatchCoalescer(RequestQueue& queue, CoalescerOptions options);

  /// Blocks for the next wake-up window and returns its batch (never empty
  /// while the queue is open). An empty vector means the queue is closed
  /// and fully drained — the dispatcher should exit.
  [[nodiscard]] std::vector<PendingQuery> next_batch();

  [[nodiscard]] const CoalescerOptions& options() const { return options_; }

 private:
  RequestQueue& queue_;
  CoalescerOptions options_;
};

}  // namespace eidb::server
