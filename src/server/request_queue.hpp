// server::RequestQueue — the admitted-but-not-yet-dispatched stage.
//
// A plain FIFO of admitted queries guarded by a condition variable. Policy
// decisions do NOT live here: admission happens before push (the
// AdmissionController), P-state choice happens at execution (the
// PolicyEngine), and grouping happens at pop (the BatchCoalescer). Keeping
// the queue dumb lets each policy reuse the same structure.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "query/request.hpp"
#include "server/session.hpp"

namespace eidb::server {

/// One admitted query waiting for dispatch.
struct PendingQuery {
  query::QueryRequest request;
  std::shared_ptr<Session> session;
  double admit_s = 0;  ///< Service-clock time of admission.
  std::promise<query::QueryResponse> promise;
};

class RequestQueue {
 public:
  /// Enqueues `q`. Returns false (leaving `q` untouched) once closed.
  bool push(PendingQuery&& q);

  /// Blocks until an item arrives or the queue is closed *and* drained;
  /// nullopt means no more items will ever come.
  [[nodiscard]] std::optional<PendingQuery> pop();

  /// Like pop() but gives up after `timeout_s` (nullopt on timeout or on
  /// closed-and-drained).
  [[nodiscard]] std::optional<PendingQuery> pop_for(double timeout_s);

  /// Closes the queue: pushes fail, pops drain what remains then return
  /// nullopt. Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingQuery> items_;
  bool closed_ = false;
};

}  // namespace eidb::server
