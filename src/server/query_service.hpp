// server::QueryService — the energy-aware concurrent serving tier.
//
// Turns the single-shot library (core::Database::run) into a servable
// engine. The pipeline per request:
//
//   submit ──> AdmissionController (per-tenant joule budgets)
//          ──> RequestQueue (admitted FIFO)
//          ──> BatchCoalescer (race-to-idle wake-up windows)
//          ──> dispatcher thread ──> sched::ThreadPool workers
//                 └─ PolicyEngine picks the P-state from the rolling
//                    average power (PowerMonitor), execution runs on
//                    core::Database, measured joules settle the tenant's
//                    budget and feed the monitor.
//
// The three paper policies apply to LIVE execution here — the same
// PolicyEngine the discrete-event StreamScheduler simulates with:
//   kLatency     dispatch immediately, run at f_max;
//   kThroughput  coalesce into windows, run at the efficient P-state;
//   kEnergyCap   f_max until the rolling average power hits the cap, then
//                degrade to the efficient state.
// Sub-f_max P-states cannot be programmed into the host from user space,
// so the service *paces*: it stretches a query's wall time by
// f_max/f_chosen after executing the kernels (opt-out via
// ServiceOptions::pace_execution) and accounts busy energy at the chosen
// state via the machine model.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.hpp"
#include "query/request.hpp"
#include "sched/policy_engine.hpp"
#include "sched/thread_pool.hpp"
#include "server/admission.hpp"
#include "server/batch_coalescer.hpp"
#include "server/power_monitor.hpp"
#include "server/request_queue.hpp"
#include "server/session.hpp"
#include "util/clock.hpp"

namespace eidb::server {

struct ServiceOptions {
  sched::Policy policy = sched::Policy::kLatency;
  /// Rolling average power cap in watts (kEnergyCap only).
  double power_cap_w = 0;
  /// Worker threads executing queries (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Race-to-idle wake-up window; 0 dispatches per arrival. The default
  /// for kThroughput/kEnergyCap serving is set by the caller (see
  /// bench_s1_service for calibration on a live stream).
  double coalesce_window_s = 0;
  std::size_t max_batch = 64;
  /// Horizon of the rolling power estimate the cap policy consults.
  double power_window_s = 1.0;
  /// Stretch wall time to realize sub-f_max P-states (see file comment).
  bool pace_execution = true;
  /// Admit tenants with no configured budget (see AdmissionController).
  bool admit_unknown_tenants = true;
  /// Fuse compatible queries of one coalesced batch into a single shared
  /// pass over their fact table (see query/shared_scan.hpp): the batch is
  /// pre-partitioned by table + predicate columns, candidate groups are
  /// handed to core::Database::run_batch, and the engine's sharing arm
  /// makes the final fuse/run-independent call per group. Results are
  /// bit-identical either way; the fused table's scan DRAM bytes are
  /// charged once per group and billed_j reflects each member's share.
  bool shared_scans = true;
};

/// Point-in-time service counters.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;  ///< Wake-ups: dispatched coalescing windows.
  double busy_j = 0;          ///< Policy-modeled busy joules served so far.
  double avg_power_w = 0;     ///< Rolling average power right now.
  double peak_power_w = 0;    ///< Highest rolling average observed.
  std::size_t queue_depth = 0;
};

class QueryService {
 public:
  QueryService(core::Database& db, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a session for `tenant`. Sessions are cheap; one per client
  /// connection. Valid until the service is destroyed.
  [[nodiscard]] std::shared_ptr<Session> open_session(std::string tenant);

  /// Provisions `tenant`'s energy budget (effective immediately).
  void set_tenant_budget(const std::string& tenant, TenantBudget budget);

  /// Submits a request; the future resolves when the query completes (or
  /// is rejected/errored — inspect QueryResponse::status).
  [[nodiscard]] std::future<query::QueryResponse> submit(
      const std::shared_ptr<Session>& session, query::QueryRequest request);

  /// Convenience: submit and wait.
  [[nodiscard]] query::QueryResponse execute(
      const std::shared_ptr<Session>& session, query::QueryRequest request);

  /// Graceful shutdown: stops intake, drains admitted queries, joins all
  /// threads. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const sched::PolicyEngine& policy_engine() const {
    return engine_;
  }
  [[nodiscard]] AdmissionController& admission() { return admission_; }
  [[nodiscard]] core::Database& database() { return db_; }
  /// Seconds since service start (the clock admission/power run on).
  [[nodiscard]] double now_s() const { return clock_.elapsed_seconds(); }

 private:
  void dispatcher_loop();
  void execute_one(const std::shared_ptr<PendingQuery>& item);
  /// Runs one shared-scan candidate group (>= 2 members with equal
  /// request-level sharing keys) through Database::run_batch as a single
  /// pool task, then settles every member exactly like execute_one.
  void execute_group(
      const std::vector<std::shared_ptr<PendingQuery>>& items);

  core::Database& db_;
  ServiceOptions options_;
  sched::PolicyEngine engine_;
  AdmissionController admission_;
  RequestQueue queue_;
  BatchCoalescer coalescer_;
  PowerMonitor monitor_;
  sched::ThreadPool pool_;
  Stopwatch clock_;

  std::thread dispatcher_;
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> next_session_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<double> peak_power_w_{0};
  /// Queries (or fused groups) currently executing on the worker pool;
  /// each in-flight unit's governor core grant is clamped to its equal
  /// share of the engine pool (ExecOptions::core_cap) so a burst cannot
  /// collectively oversubscribe the machine.
  std::atomic<std::size_t> inflight_{0};
};

}  // namespace eidb::server
