// server::AdmissionController — per-tenant energy budgets as token buckets
// of joules.
//
// The paper argues the serving tier must balance response time, throughput
// and energy "under a given energy constraint ... on a case-by-case basis"
// (§IV). The constraint here is per tenant: a budget refills at
// `refill_j_per_s` joules per second (i.e. an average-power entitlement in
// watts) up to a burst capacity. Queries are admitted while the balance is
// positive; after each query completes, the *measured* joules from the
// database's EnergyLedger are debited — settlement billing, so estimates
// never drift from reality. A balance may go negative on settlement; the
// tenant is then refused until refill catches up (graceful per-tenant
// degradation instead of whole-system throttling).
//
// Time is passed in explicitly (seconds on any monotonic clock) so the
// refill arithmetic is deterministic under test.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace eidb::server {

/// A tenant's energy entitlement.
struct TenantBudget {
  double capacity_j = 0;      ///< Burst: the bucket's maximum balance.
  double refill_j_per_s = 0;  ///< Sustained entitlement (watts).
};

/// Per-tenant admission counters.
struct AdmissionCounters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double debited_j = 0;  ///< Total joules settled against this tenant.
};

class AdmissionController {
 public:
  /// `admit_unknown`: whether tenants with no configured budget are
  /// admitted (true: budgets are opt-in caps) or refused (false: closed
  /// system, every tenant must be provisioned).
  explicit AdmissionController(bool admit_unknown = true)
      : admit_unknown_(admit_unknown) {}

  /// Installs (or replaces) `tenant`'s budget with a full bucket as of
  /// `now_s`. Thread-safe.
  void set_budget(const std::string& tenant, TenantBudget budget,
                  double now_s);

  /// Admission check at `now_s`: refills the bucket, then admits iff the
  /// balance is positive (or the tenant is unknown and `admit_unknown`).
  /// Thread-safe.
  [[nodiscard]] bool try_admit(const std::string& tenant, double now_s);

  /// Settles `joules` of measured consumption against `tenant` at `now_s`.
  /// Unknown tenants accumulate counters only. Thread-safe.
  void debit(const std::string& tenant, double joules, double now_s);

  /// Current balance after refill to `now_s`; nullopt for unknown tenants.
  [[nodiscard]] std::optional<double> balance_j(const std::string& tenant,
                                                double now_s);

  [[nodiscard]] AdmissionCounters counters(const std::string& tenant) const;

  /// Per-tenant bookkeeping for *unbudgeted* tenants is bounded: beyond
  /// this many distinct names, admission decisions still apply but no new
  /// per-tenant counters are allocated — otherwise a client cycling
  /// through arbitrary tenant strings (admitted or not) would grow server
  /// memory without bound.
  static constexpr std::size_t kMaxUnbudgetedTenants = 1024;

 private:
  struct Bucket {
    TenantBudget budget;
    double balance_j = 0;
    double last_refill_s = 0;
    AdmissionCounters counters;
  };

  /// Refills `b` up to capacity for time elapsed since the last refill.
  static void refill(Bucket& b, double now_s);

  /// Counters slot for an unbudgeted tenant; nullptr once the bounded map
  /// is full and `tenant` is not already tracked. Caller holds mu_.
  [[nodiscard]] AdmissionCounters* unbudgeted_slot(const std::string& tenant);

  bool admit_unknown_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  /// Counters for tenants that have no configured budget.
  std::map<std::string, AdmissionCounters> unbudgeted_;
};

}  // namespace eidb::server
