// server::PowerMonitor — rolling-average power over discrete energy events.
//
// The energy-cap policy needs "the rolling average power of the stream so
// far" (PolicyEngine::choose_state). Queries deliver energy in lumps at
// completion, so the monitor keeps a sliding window of (timestamp, joules)
// events; average power is the static floor (package idle) plus windowed
// busy joules over the window length. Timestamps are caller-supplied
// seconds on the service clock — deterministic under test.
#pragma once

#include <deque>
#include <mutex>
#include <utility>

namespace eidb::server {

class PowerMonitor {
 public:
  /// `window_s`: averaging horizon. `floor_w`: static power always drawn
  /// (shallow-idle package power), added to the busy average.
  PowerMonitor(double window_s, double floor_w);

  /// Records `joules` of busy energy delivered at time `now_s`. Thread-safe.
  void add(double now_s, double joules);

  /// Floor + busy joules in [now_s - window, now_s] over the window.
  [[nodiscard]] double avg_power_w(double now_s) const;

  /// Busy joules currently inside the window.
  [[nodiscard]] double busy_j_in_window(double now_s) const;

  /// Total busy joules ever recorded.
  [[nodiscard]] double total_busy_j() const;

  [[nodiscard]] double window_s() const noexcept { return window_s_; }
  [[nodiscard]] double floor_w() const noexcept { return floor_w_; }

 private:
  /// Drops events older than the window. Caller holds mu_.
  void prune(double now_s) const;

  double window_s_;
  double floor_w_;
  mutable std::mutex mu_;
  mutable std::deque<std::pair<double, double>> events_;  ///< (t, joules).
  mutable double windowed_j_ = 0;
  double total_j_ = 0;
};

}  // namespace eidb::server
