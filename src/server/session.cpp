#include "server/session.hpp"

#include <sstream>

namespace eidb::server {

std::string to_string(const SessionStats& s) {
  std::ostringstream os;
  os << "submitted=" << s.submitted << " completed=" << s.completed
     << " rejected=" << s.rejected << " errors=" << s.errors
     << " energy_J=" << s.energy_j;
  return os.str();
}

}  // namespace eidb::server
