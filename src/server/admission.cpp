#include "server/admission.hpp"

#include <algorithm>

namespace eidb::server {

void AdmissionController::refill(Bucket& b, double now_s) {
  const double dt = now_s - b.last_refill_s;
  if (dt <= 0) return;
  b.balance_j = std::min(b.budget.capacity_j,
                         b.balance_j + dt * b.budget.refill_j_per_s);
  b.last_refill_s = now_s;
}

void AdmissionController::set_budget(const std::string& tenant,
                                     TenantBudget budget, double now_s) {
  std::scoped_lock lock(mu_);
  Bucket& b = buckets_[tenant];
  // Carry counters across re-provisioning; the bucket starts full.
  b.budget = budget;
  b.balance_j = budget.capacity_j;
  b.last_refill_s = now_s;
  // A tenant promoted from unbudgeted keeps its history.
  const auto it = unbudgeted_.find(tenant);
  if (it != unbudgeted_.end()) {
    b.counters.admitted += it->second.admitted;
    b.counters.rejected += it->second.rejected;
    b.counters.debited_j += it->second.debited_j;
    unbudgeted_.erase(it);
  }
}

AdmissionCounters* AdmissionController::unbudgeted_slot(
    const std::string& tenant) {
  const auto it = unbudgeted_.find(tenant);
  if (it != unbudgeted_.end()) return &it->second;
  if (unbudgeted_.size() >= kMaxUnbudgetedTenants) return nullptr;
  return &unbudgeted_[tenant];
}

bool AdmissionController::try_admit(const std::string& tenant, double now_s) {
  std::scoped_lock lock(mu_);
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    AdmissionCounters* c = unbudgeted_slot(tenant);
    if (admit_unknown_) {
      if (c) ++c->admitted;
      return true;
    }
    if (c) ++c->rejected;
    return false;
  }
  Bucket& b = it->second;
  refill(b, now_s);
  if (b.balance_j > 0) {
    ++b.counters.admitted;
    return true;
  }
  ++b.counters.rejected;
  return false;
}

void AdmissionController::debit(const std::string& tenant, double joules,
                                double now_s) {
  std::scoped_lock lock(mu_);
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    if (AdmissionCounters* c = unbudgeted_slot(tenant)) c->debited_j += joules;
    return;
  }
  Bucket& b = it->second;
  refill(b, now_s);
  b.balance_j -= joules;  // May go negative: settlement of measured joules.
  b.counters.debited_j += joules;
}

std::optional<double> AdmissionController::balance_j(const std::string& tenant,
                                                     double now_s) {
  std::scoped_lock lock(mu_);
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) return std::nullopt;
  refill(it->second, now_s);
  return it->second.balance_j;
}

AdmissionCounters AdmissionController::counters(
    const std::string& tenant) const {
  std::scoped_lock lock(mu_);
  if (const auto it = buckets_.find(tenant); it != buckets_.end())
    return it->second.counters;
  if (const auto it = unbudgeted_.find(tenant); it != unbudgeted_.end())
    return it->second;
  return {};
}

}  // namespace eidb::server
