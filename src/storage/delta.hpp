// Main/delta storage for update-heavy ("high-density") tables.
//
// §IV.B: "High-density data like order entries or other business-critical
// objects with high transaction load will stay and [be] manipulated in
// main-memory." Column stores reconcile scan speed with write speed by
// splitting each table into an immutable, scan-optimized *main* and an
// append-optimized *delta*; a background merge folds the delta into a new
// main. This module implements that lifecycle for int64 columns:
//
//   * appends go to the delta (cheap, row-at-a-time);
//   * scans run the SIMD kernels over the main and a scalar pass over the
//     (small) delta;
//   * merge() rebuilds the main from main+delta and clears the delta;
//   * a merge policy triggers on delta/main ratio, the classic heuristic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvector.hpp"

namespace eidb::storage {

class DeltaColumn {
 public:
  DeltaColumn() = default;
  /// Starts with `main` as the immutable bulk-loaded image.
  explicit DeltaColumn(std::vector<std::int64_t> main)
      : main_(std::move(main)) {}

  [[nodiscard]] std::size_t main_size() const { return main_.size(); }
  [[nodiscard]] std::size_t delta_size() const { return delta_.size(); }
  [[nodiscard]] std::size_t size() const {
    return main_.size() + delta_.size();
  }

  /// Appends one value to the delta.
  void append(std::int64_t v) { delta_.push_back(v); }

  /// Value at logical row `i` (main rows first, then delta rows).
  [[nodiscard]] std::int64_t at(std::size_t i) const;

  /// Scans lo <= v <= hi over main (SIMD) + delta (scalar) into `out`
  /// (sized to size()).
  void scan_range(std::int64_t lo, std::int64_t hi, BitVector& out) const;

  /// Folds the delta into the main. Afterwards delta_size() == 0.
  /// Returns the number of rows merged.
  std::size_t merge();

  /// True when the delta exceeds `ratio` of the main (merge trigger).
  [[nodiscard]] bool needs_merge(double ratio = 0.1) const {
    if (main_.empty()) return delta_.size() > 1024;
    return static_cast<double>(delta_.size()) >
           ratio * static_cast<double>(main_.size());
  }

  /// Read-only views (delta view valid until the next append/merge).
  [[nodiscard]] std::span<const std::int64_t> main_view() const {
    return main_;
  }
  [[nodiscard]] std::span<const std::int64_t> delta_view() const {
    return delta_;
  }

  /// Lifetime counters for the merge-policy ablation.
  [[nodiscard]] std::uint64_t merges() const { return merges_; }
  [[nodiscard]] std::uint64_t rows_rewritten() const {
    return rows_rewritten_;
  }

 private:
  std::vector<std::int64_t> main_;
  std::vector<std::int64_t> delta_;
  std::uint64_t merges_ = 0;
  std::uint64_t rows_rewritten_ = 0;
};

}  // namespace eidb::storage
