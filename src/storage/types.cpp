#include "storage/types.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace eidb::storage {

std::string type_name(TypeId t) {
  switch (t) {
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
  }
  return "invalid";
}

std::size_t physical_size(TypeId t) {
  switch (t) {
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kString:
      return 4;  // dictionary code
  }
  EIDB_ASSERT(false);
  return 0;
}

std::string Value::to_string() const {
  if (is_string()) return as_string();
  if (is_double()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", as_double());
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(as_int()));
  return buf;
}

}  // namespace eidb::storage
