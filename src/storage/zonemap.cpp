#include "storage/zonemap.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::storage {

ZoneMap ZoneMap::build(std::span<const std::int64_t> values,
                       std::size_t block_rows) {
  EIDB_EXPECTS(block_rows > 0);
  ZoneMap zm;
  zm.block_rows_ = block_rows;
  for (std::size_t start = 0; start < values.size(); start += block_rows) {
    const std::size_t end = std::min(start + block_rows, values.size());
    Zone z{values[start], values[start]};
    for (std::size_t i = start + 1; i < end; ++i) {
      z.min = std::min(z.min, values[i]);
      z.max = std::max(z.max, values[i]);
    }
    zm.zones_.push_back(z);
  }
  return zm;
}

ZoneMap ZoneMap::build32(std::span<const std::int32_t> values,
                         std::size_t block_rows) {
  EIDB_EXPECTS(block_rows > 0);
  ZoneMap zm;
  zm.block_rows_ = block_rows;
  for (std::size_t start = 0; start < values.size(); start += block_rows) {
    const std::size_t end = std::min(start + block_rows, values.size());
    Zone z{values[start], values[start]};
    for (std::size_t i = start + 1; i < end; ++i) {
      z.min = std::min<std::int64_t>(z.min, values[i]);
      z.max = std::max<std::int64_t>(z.max, values[i]);
    }
    zm.zones_.push_back(z);
  }
  return zm;
}

std::vector<ZoneMap::RowRange> ZoneMap::candidate_ranges(
    std::int64_t lo, std::int64_t hi, std::size_t row_count) const {
  std::vector<RowRange> ranges;
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (!may_overlap(i, lo, hi)) continue;
    const std::size_t begin = i * block_rows_;
    const std::size_t end = std::min(begin + block_rows_, row_count);
    if (!ranges.empty() && ranges.back().end == begin) {
      ranges.back().end = end;  // coalesce adjacent candidate blocks
    } else {
      ranges.push_back({begin, end});
    }
  }
  return ranges;
}

}  // namespace eidb::storage
