// Logical column types and scalar values.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace eidb::storage {

/// Physical/logical type of a column.
enum class TypeId : std::uint8_t {
  kInt32,
  kInt64,
  kDouble,
  kString,  ///< Dictionary-encoded; physical storage is int32 codes.
};

[[nodiscard]] std::string type_name(TypeId t);

/// Bytes per value of the in-memory physical representation.
[[nodiscard]] std::size_t physical_size(TypeId t);

/// A scalar runtime value (literal operands, aggregate results).
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(std::int32_t v) : v_(std::int64_t{v}) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

}  // namespace eidb::storage
