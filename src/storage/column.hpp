// In-memory typed column over cache-aligned storage.
//
// Columns are append-built during load, then treated as immutable by the
// execution engine (scans take `std::span<const T>` views). String columns
// carry an ordered dictionary and physically store int32 codes.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/bitpack.hpp"
#include "storage/dictionary.hpp"
#include "storage/types.hpp"
#include "util/aligned_buffer.hpp"

namespace eidb::storage {

/// Physical encoding of an integer-typed column (int32 / int64 / string
/// codes; doubles are always plain).
///
///  * kPlain        — the full-width array only.
///  * kBitPacked    — values packed at the minimum width for [0, max];
///                    requires a non-negative domain (reference is 0).
///  * kForBitPacked — frame-of-reference: (v - min) packed at the minimum
///                    width for the [min, max] spread; any domain.
///
/// Encoded columns keep the plain array alongside the packed image:
/// scans and aggregations consume the packed image (less DRAM traffic),
/// while random-access consumers (joins, sorts, projections) read plain.
enum class Encoding : std::uint8_t { kPlain, kBitPacked, kForBitPacked };

[[nodiscard]] std::string encoding_name(Encoding e);

/// The packed physical image of an encoded column.
struct EncodedSegment {
  Encoding encoding = Encoding::kPlain;
  unsigned bits = 0;          ///< Packed width per value.
  std::int64_t reference = 0; ///< FOR base (0 for kBitPacked).
  std::size_t count = 0;
  std::vector<std::uint64_t> words;

  [[nodiscard]] std::size_t byte_size() const {
    return words.size() * sizeof(std::uint64_t);
  }
  [[nodiscard]] PackedView view() const {
    return PackedView{words, bits, reference, count};
  }
};

/// Cached per-column statistics, computed in one pass at load time
/// (`Table::set_column` finalizes them) and reused by every query instead
/// of rescanning the column: group-key synthesis, zone-map-style predicate
/// pruning and the optimizer's selectivity/grouping estimates all read
/// from here. Integer-typed columns (int32/int64/string codes) fill
/// min/max; double columns fill dmin/dmax.
struct ColumnStats {
  std::uint64_t rows = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double dmin = 0;
  double dmax = 0;
  /// Coarse distinct-count estimate (exact for dictionary columns and
  /// small samples; linear extrapolation beyond the sample otherwise).
  std::uint64_t distinct = 0;

  /// Size of the inclusive integer value domain [min, max]: 0 when empty,
  /// saturated to INT64_MAX when the spread overflows (hash-like int64
  /// keys) — callers treat the saturated value as "too large for dense".
  [[nodiscard]] std::int64_t domain() const {
    if (rows == 0) return 0;
    const auto width =
        static_cast<std::uint64_t>(max) - static_cast<std::uint64_t>(min);
    if (width >= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max()))
      return std::numeric_limits<std::int64_t>::max();
    return static_cast<std::int64_t>(width) + 1;
  }
  /// Estimated fraction of rows with lo <= v <= hi under a uniform-value
  /// assumption — the executor orders conjunctive predicates by this.
  [[nodiscard]] double range_selectivity(std::int64_t lo,
                                         std::int64_t hi) const;
  [[nodiscard]] double range_selectivity(double lo, double hi) const;
};

class Column {
 public:
  /// Creates an empty column of type `type` named `name`.
  Column(std::string name, TypeId type);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TypeId type() const noexcept { return type_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Bytes of the physical in-memory representation (excluding dictionary).
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return count_ * physical_size(type_);
  }

  // -- Builders -------------------------------------------------------------
  void reserve(std::size_t rows);
  void append_int32(std::int32_t v);
  void append_int64(std::int64_t v);
  void append_double(double v);
  /// Bulk builders (preferred for load paths).
  static Column from_int32(std::string name, std::span<const std::int32_t> v);
  static Column from_int64(std::string name, std::span<const std::int64_t> v);
  static Column from_double(std::string name, std::span<const double> v);
  /// Builds a dictionary-encoded string column.
  static Column from_strings(std::string name,
                             const std::vector<std::string>& values);

  // -- Typed access ---------------------------------------------------------
  [[nodiscard]] std::span<const std::int32_t> int32_data() const;
  [[nodiscard]] std::span<const std::int64_t> int64_data() const;
  [[nodiscard]] std::span<const double> double_data() const;
  /// For string columns: the dictionary codes.
  [[nodiscard]] std::span<const std::int32_t> codes() const;
  [[nodiscard]] const Dictionary& dictionary() const;
  [[nodiscard]] bool has_dictionary() const { return dict_ != nullptr; }

  // -- Double dictionary ----------------------------------------------------
  /// Double columns additionally carry an ordered DoubleDictionary plus an
  /// int32 code array, built at `Table::set_column` (skipped when the
  /// column contains NaN — no order-preserving code domain exists). The
  /// plain double array stays authoritative for aggregates, sorts and
  /// predicates; the codes exist so joins and GROUP BY run on the same
  /// int32 kernels as dictionary strings.
  void build_double_dictionary();
  [[nodiscard]] bool has_double_dictionary() const { return ddict_ != nullptr; }
  [[nodiscard]] const DoubleDictionary& double_dictionary() const;
  /// Codes of a double column. Precondition: has_double_dictionary().
  [[nodiscard]] std::span<const std::int32_t> double_codes() const;

  /// Value at row `i`, decoded (strings materialized from the dictionary).
  [[nodiscard]] Value value_at(std::size_t i) const;
  /// Integer value at row `i` for integer-typed columns (int32 / int64 /
  /// dictionary codes) — the random-access gather used by join and sort
  /// consumers, without the Value boxing of value_at.
  /// Precondition: type() != kDouble.
  [[nodiscard]] std::int64_t int_at(std::size_t i) const;

  // -- Encoded physical storage --------------------------------------------
  /// Current encoding (kPlain when no packed image exists).
  [[nodiscard]] Encoding encoding() const noexcept {
    return segment_ ? segment_->encoding : Encoding::kPlain;
  }
  /// The packed image, or nullptr for plain columns.
  [[nodiscard]] const EncodedSegment* encoded() const noexcept {
    return segment_.get();
  }
  /// Kernel view of the packed image. Precondition: encoding() != kPlain.
  [[nodiscard]] PackedView packed_view() const;
  /// Bytes a sequential scan of this column touches: the packed image when
  /// encoded, the plain array otherwise. This is what the executor charges
  /// to the DRAM ledger for scan/aggregate reads.
  [[nodiscard]] std::size_t scan_byte_size() const noexcept {
    return segment_ ? segment_->byte_size() : byte_size();
  }
  /// Explicitly (re)encodes the column, overriding the automatic choice;
  /// the override survives re-encoding after mutation. Throws Error when
  /// the encoding cannot represent the column (doubles; kBitPacked on a
  /// negative domain).
  void set_encoding(Encoding e);
  /// Builds the packed image for the stats-chosen encoding (or the
  /// explicit override, if one was set). Idempotent; called by
  /// `Table::set_column` after the statistics pass.
  void auto_encode();
  /// The encoding the automatic policy would choose from the cached
  /// statistics (without building anything).
  [[nodiscard]] Encoding choose_encoding() const;

  // -- Statistics -----------------------------------------------------------
  /// Cached column statistics. Computed on first call (one pass) and
  /// reused afterwards; `Table::set_column` finalizes eagerly so executor
  /// paths never pay the pass per query. Lazy computation is NOT
  /// thread-safe — concurrent readers must call `finalize_stats()` first
  /// (tables do). Any mutation (append_*, mutable_*) invalidates the cache.
  [[nodiscard]] const ColumnStats& stats() const;
  /// Idempotently computes and caches the statistics.
  void finalize_stats() const { (void)stats(); }

  /// Mutable typed access for in-place construction by loaders.
  [[nodiscard]] std::span<std::int32_t> mutable_int32();
  [[nodiscard]] std::span<std::int64_t> mutable_int64();
  [[nodiscard]] std::span<double> mutable_double();

 private:
  void ensure_capacity(std::size_t rows);
  template <typename T>
  void append_raw(T v);
  void build_segment(Encoding e);

  std::string name_;
  TypeId type_;
  std::size_t count_ = 0;
  AlignedBuffer data_;
  std::shared_ptr<const Dictionary> dict_;  // string columns only
  std::shared_ptr<const DoubleDictionary> ddict_;    // double columns only
  std::shared_ptr<const std::vector<std::int32_t>> dcodes_;
  mutable std::shared_ptr<const ColumnStats> stats_;  // null until computed
  std::shared_ptr<const EncodedSegment> segment_;  // null when plain
  std::optional<Encoding> forced_encoding_;  // explicit override, if any
};

/// Packed width of `encoding` over a column with `stats` — the single
/// definition both the automatic chooser and the segment builder use.
/// kBitPacked covers [0, max], kForBitPacked covers the [min, max] spread,
/// kPlain returns the plain width of `type`.
[[nodiscard]] unsigned packed_width(const ColumnStats& stats, TypeId type,
                                    Encoding encoding);

/// The automatic encoding policy, exposed for the optimizer's storage-side
/// advisor: picks the encoding whose packed width beats the plain width,
/// preferring kBitPacked when frame-of-reference adds nothing. Returns the
/// chosen packed width through `bits_out` (untouched for kPlain). Handles
/// the width-0 edge cases: empty columns stay plain, all-equal columns
/// pack to zero bits (FOR unless the constant is zero).
[[nodiscard]] Encoding choose_encoding(const ColumnStats& stats, TypeId type,
                                       unsigned* bits_out = nullptr);

}  // namespace eidb::storage
