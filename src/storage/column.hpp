// In-memory typed column over cache-aligned storage.
//
// Columns are append-built during load, then treated as immutable by the
// execution engine (scans take `std::span<const T>` views). String columns
// carry an ordered dictionary and physically store int32 codes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/dictionary.hpp"
#include "storage/types.hpp"
#include "util/aligned_buffer.hpp"

namespace eidb::storage {

class Column {
 public:
  /// Creates an empty column of type `type` named `name`.
  Column(std::string name, TypeId type);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TypeId type() const noexcept { return type_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Bytes of the physical in-memory representation (excluding dictionary).
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return count_ * physical_size(type_);
  }

  // -- Builders -------------------------------------------------------------
  void reserve(std::size_t rows);
  void append_int32(std::int32_t v);
  void append_int64(std::int64_t v);
  void append_double(double v);
  /// Bulk builders (preferred for load paths).
  static Column from_int32(std::string name, std::span<const std::int32_t> v);
  static Column from_int64(std::string name, std::span<const std::int64_t> v);
  static Column from_double(std::string name, std::span<const double> v);
  /// Builds a dictionary-encoded string column.
  static Column from_strings(std::string name,
                             const std::vector<std::string>& values);

  // -- Typed access ---------------------------------------------------------
  [[nodiscard]] std::span<const std::int32_t> int32_data() const;
  [[nodiscard]] std::span<const std::int64_t> int64_data() const;
  [[nodiscard]] std::span<const double> double_data() const;
  /// For string columns: the dictionary codes.
  [[nodiscard]] std::span<const std::int32_t> codes() const;
  [[nodiscard]] const Dictionary& dictionary() const;
  [[nodiscard]] bool has_dictionary() const { return dict_ != nullptr; }

  /// Value at row `i`, decoded (strings materialized from the dictionary).
  [[nodiscard]] Value value_at(std::size_t i) const;

  /// Mutable typed access for in-place construction by loaders.
  [[nodiscard]] std::span<std::int32_t> mutable_int32();
  [[nodiscard]] std::span<std::int64_t> mutable_int64();
  [[nodiscard]] std::span<double> mutable_double();

 private:
  void ensure_capacity(std::size_t rows);
  template <typename T>
  void append_raw(T v);

  std::string name_;
  TypeId type_;
  std::size_t count_ = 0;
  AlignedBuffer data_;
  std::shared_ptr<const Dictionary> dict_;  // string columns only
};

}  // namespace eidb::storage
