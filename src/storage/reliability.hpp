// Multi-level reliability for memory fragments (paper §III).
//
// "Depending on the semantics of a piece of data, different reliability
// constraints should be attached to a memory fragment. For example,
// intermediate results ... could be placed in some 'cheap' memory with
// high write and read performance. On the other hand, REDO-log
// information ... should be stored in a replicated way, within a compute
// cluster or even across multiple locations. The database system therefore
// requires mechanisms to convey quality-of-service information about
// specific memory fragments."
//
// `ReliabilityManager` is that mechanism: fragments declare a QoS class;
// writes are charged the class's cost (local DRAM / cluster-replicated /
// geo-replicated, modeled over hw::LinkSpec); a fault simulation shows
// which fragments survive which failure domains.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/interconnect.hpp"
#include "hw/machine.hpp"

namespace eidb::storage {

/// QoS classes, ordered by durability.
enum class Reliability : std::uint8_t {
  kCheap,          ///< Local DRAM only; lost on node failure.
  kNodeDurable,    ///< Local + NVM-class persistence; survives process crash.
  kReplicated,     ///< Synchronously copied to one cluster peer.
  kGeoReplicated,  ///< Synchronously copied to a remote site.
};

[[nodiscard]] std::string reliability_name(Reliability r);

/// Failure domains a fragment may be subjected to.
enum class Failure : std::uint8_t {
  kProcessCrash,
  kNodeLoss,
  kSiteLoss,
};

/// Does data of class `r` survive failure `f`?
[[nodiscard]] bool survives(Reliability r, Failure f);

/// Per-write cost of one QoS class.
struct WriteCost {
  double time_s = 0;
  double energy_j = 0;
};

class ReliabilityManager {
 public:
  /// `peer` is the intra-cluster replication link; `remote` the cross-site
  /// link.
  ReliabilityManager(hw::MachineSpec machine, hw::LinkSpec peer,
                     hw::LinkSpec remote)
      : machine_(std::move(machine)),
        peer_(std::move(peer)),
        remote_(std::move(remote)) {}

  /// Declares a fragment with its QoS class.
  void declare(const std::string& fragment, Reliability r);
  [[nodiscard]] Reliability level_of(const std::string& fragment) const;

  /// Charges one write of `bytes` to the fragment; accumulates and returns
  /// the modeled cost.
  WriteCost write(const std::string& fragment, double bytes);

  /// Modeled cost of writing `bytes` at QoS level `r` (no accounting).
  [[nodiscard]] WriteCost cost_of(Reliability r, double bytes) const;

  /// Accumulated cost per fragment.
  [[nodiscard]] WriteCost accumulated(const std::string& fragment) const;

  /// Fragments that survive `failure`.
  [[nodiscard]] std::vector<std::string> surviving(Failure failure) const;

 private:
  struct Fragment {
    Reliability level = Reliability::kCheap;
    WriteCost total;
    std::uint64_t writes = 0;
  };

  hw::MachineSpec machine_;
  hw::LinkSpec peer_;
  hw::LinkSpec remote_;
  std::map<std::string, Fragment> fragments_;
};

}  // namespace eidb::storage
