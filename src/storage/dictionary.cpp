#include "storage/dictionary.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::storage {

Dictionary Dictionary::build(const std::vector<std::string>& values) {
  Dictionary d;
  d.strings_ = values;
  std::sort(d.strings_.begin(), d.strings_.end());
  d.strings_.erase(std::unique(d.strings_.begin(), d.strings_.end()),
                   d.strings_.end());
  return d;
}

std::optional<std::int32_t> Dictionary::code_of(std::string_view s) const {
  const auto it = std::lower_bound(strings_.begin(), strings_.end(), s);
  if (it == strings_.end() || *it != s) return std::nullopt;
  return static_cast<std::int32_t>(it - strings_.begin());
}

std::int32_t Dictionary::lower_bound(std::string_view s) const {
  const auto it = std::lower_bound(strings_.begin(), strings_.end(), s);
  return static_cast<std::int32_t>(it - strings_.begin());
}

std::int32_t Dictionary::upper_bound(std::string_view s) const {
  const auto it = std::upper_bound(
      strings_.begin(), strings_.end(), s,
      [](std::string_view a, const std::string& b) { return a < b; });
  return static_cast<std::int32_t>(it - strings_.begin());
}

const std::string& Dictionary::at(std::int32_t code) const {
  EIDB_EXPECTS(code >= 0 && code < size());
  return strings_[static_cast<std::size_t>(code)];
}

std::size_t Dictionary::payload_bytes() const {
  std::size_t total = 0;
  for (const std::string& s : strings_) total += s.size();
  return total;
}

}  // namespace eidb::storage
