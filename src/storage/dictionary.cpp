#include "storage/dictionary.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::storage {

Dictionary Dictionary::build(const std::vector<std::string>& values) {
  Dictionary d;
  d.strings_ = values;
  std::sort(d.strings_.begin(), d.strings_.end());
  d.strings_.erase(std::unique(d.strings_.begin(), d.strings_.end()),
                   d.strings_.end());
  return d;
}

std::optional<std::int32_t> Dictionary::code_of(std::string_view s) const {
  const auto it = std::lower_bound(strings_.begin(), strings_.end(), s);
  if (it == strings_.end() || *it != s) return std::nullopt;
  return static_cast<std::int32_t>(it - strings_.begin());
}

std::int32_t Dictionary::lower_bound(std::string_view s) const {
  const auto it = std::lower_bound(strings_.begin(), strings_.end(), s);
  return static_cast<std::int32_t>(it - strings_.begin());
}

std::int32_t Dictionary::upper_bound(std::string_view s) const {
  const auto it = std::upper_bound(
      strings_.begin(), strings_.end(), s,
      [](std::string_view a, const std::string& b) { return a < b; });
  return static_cast<std::int32_t>(it - strings_.begin());
}

const std::string& Dictionary::at(std::int32_t code) const {
  EIDB_EXPECTS(code >= 0 && code < size());
  return strings_[static_cast<std::size_t>(code)];
}

std::size_t Dictionary::payload_bytes() const {
  std::size_t total = 0;
  for (const std::string& s : strings_) total += s.size();
  return total;
}

std::vector<std::int32_t> Dictionary::remap_to(const Dictionary& other) const {
  std::vector<std::int32_t> remap(strings_.size(), -1);
  std::size_t j = 0;
  for (std::size_t i = 0; i < strings_.size(); ++i) {
    while (j < other.strings_.size() && other.strings_[j] < strings_[i]) ++j;
    if (j < other.strings_.size() && other.strings_[j] == strings_[i])
      remap[i] = static_cast<std::int32_t>(j);
  }
  return remap;
}

DoubleDictionary DoubleDictionary::build(const std::vector<double>& values) {
  DoubleDictionary d;
  for (const double v : values)
    if (v != v) return d;  // NaN: no ordered dictionary exists
  d.values_ = values;
  std::sort(d.values_.begin(), d.values_.end());
  d.values_.erase(std::unique(d.values_.begin(), d.values_.end()),
                  d.values_.end());
  return d;
}

std::optional<std::int32_t> DoubleDictionary::code_of(double v) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || *it != v) return std::nullopt;
  return static_cast<std::int32_t>(it - values_.begin());
}

double DoubleDictionary::at(std::int32_t code) const {
  EIDB_EXPECTS(code >= 0 && code < size());
  return values_[static_cast<std::size_t>(code)];
}

std::vector<std::int32_t> DoubleDictionary::remap_to(
    const DoubleDictionary& other) const {
  std::vector<std::int32_t> remap(values_.size(), -1);
  std::size_t j = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    while (j < other.values_.size() && other.values_[j] < values_[i]) ++j;
    if (j < other.values_.size() && other.values_[j] == values_[i])
      remap[i] = static_cast<std::int32_t>(j);
  }
  return remap;
}

}  // namespace eidb::storage
