// Fixed-width bit packing of unsigned integers.
//
// Values are packed little-endian into 64-bit words at a fixed width
// `bits` ∈ [0, 64]. This is the workhorse layout behind dictionary codes,
// frame-of-reference and delta encodings: scans decompress 64-value blocks
// into registers/stack and evaluate predicates there, so memory traffic
// shrinks by 64/bits× — the "scan on compressed data" effect measured in
// experiment E5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eidb::storage {

/// Number of 64-bit words needed to hold `count` values of `bits` width.
[[nodiscard]] std::size_t packed_word_count(std::size_t count, unsigned bits);

/// Minimum width able to represent every value in `values`.
[[nodiscard]] unsigned min_bits(std::span<const std::uint64_t> values);

/// Packs `values` at width `bits`. Precondition: every value < 2^bits
/// (bits == 64 admits everything).
[[nodiscard]] std::vector<std::uint64_t> bitpack(
    std::span<const std::uint64_t> values, unsigned bits);

/// Unpacks `count` values of width `bits` from `packed` into `out`
/// (out.size() >= count).
void bitunpack(std::span<const std::uint64_t> packed, unsigned bits,
               std::size_t count, std::span<std::uint64_t> out);

/// Unpacks the 64-value block starting at value index `block_start`
/// (a multiple of 64) into `out[0..63]`. Fast path used by packed scans.
void bitunpack_block64(std::span<const std::uint64_t> packed, unsigned bits,
                       std::size_t block_start, std::uint64_t out[64]);

/// Random access to a single packed value.
[[nodiscard]] std::uint64_t bitpacked_at(std::span<const std::uint64_t> packed,
                                         unsigned bits, std::size_t index);

/// Minimum width able to represent every value in [0, width] (0 when the
/// domain is a single value). The encoding-choice counterpart of min_bits
/// that works from cached statistics instead of a data pass.
[[nodiscard]] constexpr unsigned bits_for_width(std::uint64_t width) {
  unsigned bits = 0;
  while (width != 0) {
    ++bits;
    width >>= 1;
  }
  return bits;
}

/// Non-owning view of a frame-of-reference bit-packed integer sequence:
/// decoded value i = reference + packed[i]. This is the unit the packed
/// scan and aggregation kernels consume — it carries everything needed to
/// evaluate predicates and accumulate sums without materializing the
/// plain array.
struct PackedView {
  std::span<const std::uint64_t> words;
  unsigned bits = 0;
  std::int64_t reference = 0;
  std::size_t count = 0;

  [[nodiscard]] std::size_t byte_size() const {
    return words.size() * sizeof(std::uint64_t);
  }
  /// Decoded value at row `i` (modular arithmetic, exact for any domain).
  [[nodiscard]] std::int64_t value_at(std::size_t i) const {
    return reference +
           static_cast<std::int64_t>(bitpacked_at(words, bits, i));
  }
};

}  // namespace eidb::storage
