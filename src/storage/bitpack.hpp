// Fixed-width bit packing of unsigned integers.
//
// Values are packed little-endian into 64-bit words at a fixed width
// `bits` ∈ [0, 64]. This is the workhorse layout behind dictionary codes,
// frame-of-reference and delta encodings: scans decompress 64-value blocks
// into registers/stack and evaluate predicates there, so memory traffic
// shrinks by 64/bits× — the "scan on compressed data" effect measured in
// experiment E5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eidb::storage {

/// Number of 64-bit words needed to hold `count` values of `bits` width.
[[nodiscard]] std::size_t packed_word_count(std::size_t count, unsigned bits);

/// Minimum width able to represent every value in `values`.
[[nodiscard]] unsigned min_bits(std::span<const std::uint64_t> values);

/// Packs `values` at width `bits`. Precondition: every value < 2^bits
/// (bits == 64 admits everything).
[[nodiscard]] std::vector<std::uint64_t> bitpack(
    std::span<const std::uint64_t> values, unsigned bits);

/// Unpacks `count` values of width `bits` from `packed` into `out`
/// (out.size() >= count).
void bitunpack(std::span<const std::uint64_t> packed, unsigned bits,
               std::size_t count, std::span<std::uint64_t> out);

/// Unpacks the 64-value block starting at value index `block_start`
/// (a multiple of 64) into `out[0..63]`. Fast path used by packed scans.
void bitunpack_block64(std::span<const std::uint64_t> packed, unsigned bits,
                       std::size_t block_start, std::uint64_t out[64]);

/// Random access to a single packed value.
[[nodiscard]] std::uint64_t bitpacked_at(std::span<const std::uint64_t> packed,
                                         unsigned bits, std::size_t index);

}  // namespace eidb::storage
