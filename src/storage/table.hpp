// Table = named schema + a set of equal-length columns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/column.hpp"
#include "storage/partition.hpp"
#include "storage/types.hpp"
#include "storage/zonemap.hpp"

namespace eidb::storage {

/// Column name/type pair.
struct ColumnDef {
  std::string name;
  TypeId type;
};

/// Table schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] const ColumnDef& column(std::size_t i) const;
  /// Index of column `name`; throws Error if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  [[nodiscard]] bool has_column(const std::string& name) const;
  [[nodiscard]] const std::vector<ColumnDef>& columns() const {
    return columns_;
  }

 private:
  std::vector<ColumnDef> columns_;
};

/// Immutable-after-load columnar table.
class Table {
 public:
  Table(std::string name, Schema schema);

  // Movable (the zone-map cache mutex is recreated; safe because moves only
  // happen during catalog registration, before concurrent use).
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t row_count() const { return rows_; }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }

  /// Installs `column` at schema position `index`. The column's length must
  /// match previously installed columns.
  void set_column(std::size_t index, Column column);

  [[nodiscard]] const Column& column(std::size_t index) const;
  [[nodiscard]] const Column& column(const std::string& name) const;

  /// Re-encodes one column in place (explicit override of the automatic
  /// choice made at set_column). NOT safe while queries are in flight —
  /// a load/maintenance-time operation, like set_column itself.
  void recode(const std::string& name, Encoding encoding);

  /// Total bytes of physical column data.
  [[nodiscard]] std::size_t byte_size() const;

  /// True when every schema slot holds a column.
  [[nodiscard]] bool complete() const;

  /// Zone map over an integer column, built on first use and cached
  /// (tables are immutable after load, so the cache never invalidates).
  /// Thread-safe. Only int32/int64/string-code columns are mappable.
  [[nodiscard]] const ZoneMap& zone_map(std::size_t column_index,
                                        std::size_t block_rows) const;

  /// Builds (or rebuilds) the hash-partition layer: `shard_count` shard
  /// tables on `key_column`'s hash, each with its own stats/encodings/
  /// dictionaries. Like set_column/recode, a load/maintenance-time
  /// operation — NOT safe while queries are in flight.
  void build_partitions(const std::string& key_column,
                        std::size_t shard_count);
  /// The partition layer, or nullptr when the table is unpartitioned.
  [[nodiscard]] const PartitionSet* partition_set() const {
    return partitions_.get();
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::size_t rows_ = 0;
  std::shared_ptr<const PartitionSet> partitions_;
  mutable std::mutex zone_mu_;
  mutable std::map<std::pair<std::size_t, std::size_t>,
                   std::unique_ptr<ZoneMap>>
      zone_cache_;
};

/// Name → table registry.
///
/// Thread-safe: lookups take a shared lock, registration/drop an exclusive
/// one, so the serving tier can admit DDL while queries execute. Returned
/// references stay valid across concurrent `add` (tables are heap-owned);
/// `drop` of a table still in use by an in-flight query remains a caller
/// error.
class Catalog {
 public:
  Catalog() = default;
  // Movable like Table (the lock is recreated; safe because moves only
  // happen during setup, before concurrent use).
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table`; throws Error on duplicate name.
  Table& add(Table table);
  [[nodiscard]] Table& get(const std::string& name);
  [[nodiscard]] const Table& get(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;
  void drop(const std::string& name);

 private:
  [[nodiscard]] bool contains_locked(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace eidb::storage
