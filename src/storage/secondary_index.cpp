#include "storage/secondary_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::storage {

void SecondaryIndex::append(std::int64_t value) {
  pending_.push_back({value, next_row_++});
  const bool eager =
      policy_ == IndexMaintenance::kUbiquity ||
      (policy_ == IndexMaintenance::kNeedToKnow && readers_ > 0);
  if (eager) merge_pending();
}

void SecondaryIndex::register_reader() {
  ++readers_;
  if (policy_ == IndexMaintenance::kNeedToKnow) merge_pending();
}

void SecondaryIndex::unregister_reader() {
  EIDB_EXPECTS(readers_ > 0);
  --readers_;
}

void SecondaryIndex::merge_pending() {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.row < b.row;
            });
  // Merge cost: every element touched once.
  maintenance_ops_ += pending_.size() + sorted_.size();
  std::vector<Entry> merged;
  merged.reserve(sorted_.size() + pending_.size());
  std::merge(sorted_.begin(), sorted_.end(), pending_.begin(), pending_.end(),
             std::back_inserter(merged),
             [](const Entry& a, const Entry& b) {
               if (a.value != b.value) return a.value < b.value;
               return a.row < b.row;
             });
  sorted_ = std::move(merged);
  pending_.clear();
}

std::vector<std::uint32_t> SecondaryIndex::lookup_range(std::int64_t lo,
                                                        std::int64_t hi) {
  merge_pending();  // correctness regardless of policy
  std::vector<std::uint32_t> rows;
  const auto first = std::lower_bound(
      sorted_.begin(), sorted_.end(), lo,
      [](const Entry& e, std::int64_t v) { return e.value < v; });
  for (auto it = first; it != sorted_.end() && it->value <= hi; ++it)
    rows.push_back(it->row);
  return rows;
}

}  // namespace eidb::storage
