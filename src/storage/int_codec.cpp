#include "storage/int_codec.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "storage/bitpack.hpp"
#include "storage/lz.hpp"
#include "util/assert.hpp"

namespace eidb::storage {

namespace {

// -- little helpers over byte buffers ---------------------------------------

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

std::uint64_t get_u64(std::span<const std::byte> in, std::size_t at) {
  std::uint64_t v;
  EIDB_EXPECTS(at + 8 <= in.size());
  std::memcpy(&v, in.data() + at, 8);
  return v;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void append_words(std::vector<std::byte>& out,
                  const std::vector<std::uint64_t>& words) {
  const std::size_t at = out.size();
  out.resize(at + words.size() * 8);
  std::memcpy(out.data() + at, words.data(), words.size() * 8);
}

std::vector<std::uint64_t> read_words(std::span<const std::byte> in,
                                      std::size_t at, std::size_t n_words) {
  EIDB_EXPECTS(at + n_words * 8 <= in.size());
  std::vector<std::uint64_t> words(n_words);
  std::memcpy(words.data(), in.data() + at, n_words * 8);
  return words;
}

// -- Plain -------------------------------------------------------------------

class PlainCodec final : public IntCodec {
 public:
  [[nodiscard]] CodecKind kind() const override { return CodecKind::kPlain; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::int64_t> values) const override {
    std::vector<std::byte> out;
    put_u64(out, values.size());
    const std::size_t at = out.size();
    out.resize(at + values.size_bytes());
    std::memcpy(out.data() + at, values.data(), values.size_bytes());
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> decode(
      std::span<const std::byte> bytes) const override {
    const std::uint64_t n = get_u64(bytes, 0);
    std::vector<std::int64_t> out(n);
    EIDB_EXPECTS(8 + n * 8 <= bytes.size());
    std::memcpy(out.data(), bytes.data() + 8, n * 8);
    return out;
  }

  [[nodiscard]] double nominal_cycles_per_value() const override { return 0.5; }
};

// -- Frame-of-reference + bitpack ---------------------------------------------

class ForBitpackCodec final : public IntCodec {
 public:
  [[nodiscard]] CodecKind kind() const override {
    return CodecKind::kForBitpack;
  }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::int64_t> values) const override {
    std::vector<std::byte> out;
    put_u64(out, values.size());
    if (values.empty()) return out;
    const auto [mn_it, mx_it] =
        std::minmax_element(values.begin(), values.end());
    const std::int64_t base = *mn_it;
    std::vector<std::uint64_t> offsets(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
      offsets[i] = static_cast<std::uint64_t>(values[i] - base);
    const unsigned bits = min_bits(offsets);
    put_u64(out, static_cast<std::uint64_t>(base));
    put_u64(out, bits);
    append_words(out, bitpack(offsets, bits));
    (void)mx_it;
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> decode(
      std::span<const std::byte> bytes) const override {
    const std::uint64_t n = get_u64(bytes, 0);
    std::vector<std::int64_t> out(n);
    if (n == 0) return out;
    const auto base = static_cast<std::int64_t>(get_u64(bytes, 8));
    const auto bits = static_cast<unsigned>(get_u64(bytes, 16));
    const auto words = read_words(bytes, 24, packed_word_count(n, bits));
    std::vector<std::uint64_t> offsets(n);
    bitunpack(words, bits, n, offsets);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = base + static_cast<std::int64_t>(offsets[i]);
    return out;
  }

  [[nodiscard]] double nominal_cycles_per_value() const override { return 4; }
};

// -- Zigzag delta + FOR + bitpack ---------------------------------------------

class DeltaBitpackCodec final : public IntCodec {
 public:
  [[nodiscard]] CodecKind kind() const override {
    return CodecKind::kDeltaBitpack;
  }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::int64_t> values) const override {
    std::vector<std::byte> out;
    put_u64(out, values.size());
    if (values.empty()) return out;
    std::vector<std::uint64_t> deltas(values.size());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      deltas[i] = zigzag(values[i] - prev);
      prev = values[i];
    }
    const unsigned bits = min_bits(deltas);
    put_u64(out, bits);
    append_words(out, bitpack(deltas, bits));
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> decode(
      std::span<const std::byte> bytes) const override {
    const std::uint64_t n = get_u64(bytes, 0);
    std::vector<std::int64_t> out(n);
    if (n == 0) return out;
    const auto bits = static_cast<unsigned>(get_u64(bytes, 8));
    const auto words = read_words(bytes, 16, packed_word_count(n, bits));
    std::vector<std::uint64_t> deltas(n);
    bitunpack(words, bits, n, deltas);
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      prev += unzigzag(deltas[i]);
      out[i] = prev;
    }
    return out;
  }

  [[nodiscard]] double nominal_cycles_per_value() const override { return 6; }
};

// -- RLE ----------------------------------------------------------------------

class RleCodec final : public IntCodec {
 public:
  [[nodiscard]] CodecKind kind() const override { return CodecKind::kRle; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::int64_t> values) const override {
    std::vector<std::byte> out;
    put_u64(out, values.size());
    std::size_t i = 0;
    while (i < values.size()) {
      const std::int64_t v = values[i];
      std::size_t run = 1;
      while (i + run < values.size() && values[i + run] == v) ++run;
      put_u64(out, static_cast<std::uint64_t>(v));
      put_u64(out, run);
      i += run;
    }
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> decode(
      std::span<const std::byte> bytes) const override {
    const std::uint64_t n = get_u64(bytes, 0);
    std::vector<std::int64_t> out;
    out.reserve(n);
    std::size_t at = 8;
    while (out.size() < n) {
      const auto v = static_cast<std::int64_t>(get_u64(bytes, at));
      const std::uint64_t run = get_u64(bytes, at + 8);
      at += 16;
      out.insert(out.end(), run, v);
    }
    EIDB_ENSURES(out.size() == n);
    return out;
  }

  [[nodiscard]] double nominal_cycles_per_value() const override { return 2; }
};

// -- LZ over the raw byte image -------------------------------------------------

class LzIntCodec final : public IntCodec {
 public:
  [[nodiscard]] CodecKind kind() const override { return CodecKind::kLz; }

  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const std::int64_t> values) const override {
    std::vector<std::byte> out;
    put_u64(out, values.size());
    const std::span<const std::byte> raw{
        reinterpret_cast<const std::byte*>(values.data()),
        values.size_bytes()};
    const std::vector<std::byte> lz = lz_compress(raw);
    put_u64(out, lz.size());
    out.insert(out.end(), lz.begin(), lz.end());
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> decode(
      std::span<const std::byte> bytes) const override {
    const std::uint64_t n = get_u64(bytes, 0);
    const std::uint64_t lz_size = get_u64(bytes, 8);
    EIDB_EXPECTS(16 + lz_size <= bytes.size());
    const std::vector<std::byte> raw =
        lz_decompress(bytes.subspan(16, lz_size), n * 8);
    std::vector<std::int64_t> out(n);
    std::memcpy(out.data(), raw.data(), n * 8);
    return out;
  }

  [[nodiscard]] double nominal_cycles_per_value() const override { return 25; }
};

}  // namespace

std::string codec_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kPlain:
      return "plain";
    case CodecKind::kForBitpack:
      return "for-bitpack";
    case CodecKind::kDeltaBitpack:
      return "delta-bitpack";
    case CodecKind::kRle:
      return "rle";
    case CodecKind::kLz:
      return "lz";
  }
  return "invalid";
}

std::unique_ptr<IntCodec> make_codec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kPlain:
      return std::make_unique<PlainCodec>();
    case CodecKind::kForBitpack:
      return std::make_unique<ForBitpackCodec>();
    case CodecKind::kDeltaBitpack:
      return std::make_unique<DeltaBitpackCodec>();
    case CodecKind::kRle:
      return std::make_unique<RleCodec>();
    case CodecKind::kLz:
      return std::make_unique<LzIntCodec>();
  }
  throw Error("unknown codec kind");
}

std::vector<CodecKind> all_codec_kinds() {
  return {CodecKind::kPlain, CodecKind::kForBitpack, CodecKind::kDeltaBitpack,
          CodecKind::kRle, CodecKind::kLz};
}

}  // namespace eidb::storage
