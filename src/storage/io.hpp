// Columnar table persistence (single-file binary format).
//
// "main memory is the new disk, disk is the new archive" (§IV.B): tables
// are serialized for archival/restart, not for paging. Format:
//
//   [magic "EIDB" u32] [version u32] [table-name] [column-count u32]
//   per column: [name] [type u8] [row-count u64]
//     string columns: [dict-size u32] [dict entries] then int32 codes
//     other columns:  raw little-endian values
//
// Strings are length-prefixed (u32). All integers little-endian (the
// library targets x86-class hosts; a byte-swapping reader would slot in at
// the two helper functions).
#pragma once

#include <iosfwd>
#include <string>

#include "storage/table.hpp"

namespace eidb::storage {

/// Serializes `table` (must be complete). Throws eidb::Error on I/O errors.
void save_table(const Table& table, std::ostream& out);
void save_table_file(const Table& table, const std::string& path);

/// Reads a table back. Throws eidb::Error on malformed input.
[[nodiscard]] Table load_table(std::istream& in);
[[nodiscard]] Table load_table_file(const std::string& path);

}  // namespace eidb::storage
