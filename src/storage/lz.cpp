#include "storage/lz.hpp"

#include <cstdint>
#include <cstring>

#include "util/assert.hpp"

namespace eidb::storage {

// Format (LZ4-style sequences):
//   token byte: high nibble = literal-run length, low nibble = match length
//               minus kMinMatch; nibble value 15 extends with extra bytes
//               (each 255, then a final < 255).
//   [extended literal length] [literals]
//   2-byte little-endian match distance (1..65535), [extended match length]
// The final sequence may end after its literals (no distance field) — the
// decoder detects this by input exhaustion.

namespace {

constexpr std::size_t kWindow = 0xffff;  // max representable distance
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 16;
constexpr std::uint32_t kNoPos = 0xffffffffu;

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_extended(std::vector<std::byte>& out, std::size_t v) {
  while (v >= 255) {
    out.push_back(std::byte{255});
    v -= 255;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::size_t get_extended(std::span<const std::byte> in, std::size_t& at,
                         std::size_t base) {
  if (base != 15) return base;
  std::size_t v = 15;
  for (;;) {
    EIDB_EXPECTS(at < in.size());
    const auto b = static_cast<std::uint8_t>(in[at++]);
    v += b;
    if (b != 255) return v;
  }
}

void emit_sequence(std::vector<std::byte>& out, const std::byte* lit,
                   std::size_t lit_len, std::size_t match_len,
                   std::size_t dist) {
  const std::size_t lit_nib = lit_len < 15 ? lit_len : 15;
  const std::size_t match_extra = match_len >= kMinMatch ? match_len - kMinMatch
                                                         : 0;
  const std::size_t match_nib =
      match_len >= kMinMatch ? (match_extra < 15 ? match_extra : 15) : 0;
  out.push_back(static_cast<std::byte>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) put_extended(out, lit_len - 15);
  out.insert(out.end(), lit, lit + lit_len);
  if (match_len >= kMinMatch) {
    out.push_back(static_cast<std::byte>(dist & 0xff));
    out.push_back(static_cast<std::byte>(dist >> 8));
    if (match_nib == 15) put_extended(out, match_extra - 15);
  }
}

}  // namespace

std::vector<std::byte> lz_compress(std::span<const std::byte> in) {
  std::vector<std::byte> out;
  out.reserve(in.size() / 2 + 16);
  const std::size_t n = in.size();
  if (n < kMinMatch + 1) {
    if (n > 0) emit_sequence(out, in.data(), n, 0, 0);
    return out;
  }

  std::vector<std::uint32_t> head(std::size_t{1} << kHashBits, kNoPos);
  std::size_t i = 0;
  std::size_t literal_start = 0;
  const std::size_t last_hashable = n - kMinMatch;

  while (i <= last_hashable) {
    const std::uint32_t h = hash4(in.data() + i);
    const std::uint32_t cand = head[h];
    head[h] = static_cast<std::uint32_t>(i);
    if (cand != kNoPos && i - cand <= kWindow &&
        std::memcmp(in.data() + cand, in.data() + i, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      const std::size_t max_len = n - i;
      while (len < max_len && in[cand + len] == in[i + len]) ++len;
      emit_sequence(out, in.data() + literal_start, i - literal_start, len,
                    i - cand);
      // Seed hash entries inside long matches so later data can anchor here.
      const std::size_t step = len > 64 ? 8 : 2;
      for (std::size_t k = i + 1;
           k + kMinMatch <= i + len && k <= last_hashable; k += step)
        head[hash4(in.data() + k)] = static_cast<std::uint32_t>(k);
      i += len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  if (literal_start < n)
    emit_sequence(out, in.data() + literal_start, n - literal_start, 0, 0);
  return out;
}

std::vector<std::byte> lz_decompress(std::span<const std::byte> in,
                                     std::size_t expected_size) {
  std::vector<std::byte> out;
  out.reserve(expected_size);
  std::size_t at = 0;
  while (at < in.size()) {
    const auto token = static_cast<std::uint8_t>(in[at++]);
    const std::size_t lit_len = get_extended(in, at, token >> 4);
    EIDB_EXPECTS(at + lit_len <= in.size());
    out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(at),
               in.begin() + static_cast<std::ptrdiff_t>(at + lit_len));
    at += lit_len;
    if (at >= in.size()) break;  // last sequence: literals only
    EIDB_EXPECTS(at + 2 <= in.size());
    const std::size_t dist = static_cast<std::uint8_t>(in[at]) |
                             (static_cast<std::size_t>(
                                  static_cast<std::uint8_t>(in[at + 1]))
                              << 8);
    at += 2;
    const std::size_t match_len =
        get_extended(in, at, token & 0xf) + kMinMatch;
    EIDB_EXPECTS(dist > 0 && dist <= out.size());
    // Byte-wise copy: the source may overlap the destination (run encoding).
    const std::size_t src = out.size() - dist;
    for (std::size_t k = 0; k < match_len; ++k) out.push_back(out[src + k]);
  }
  EIDB_ENSURES(out.size() == expected_size);
  return out;
}

}  // namespace eidb::storage
