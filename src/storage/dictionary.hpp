// Ordered dictionary for string columns.
//
// Strings are stored once in a sorted dictionary; the column itself holds
// int32 codes. Because the dictionary is *ordered*, range predicates on
// strings translate to range predicates on codes, so string scans run on the
// same SIMD integer kernels as numeric scans — the core column-store trick
// behind "main memory is the new disk" scan performance (§IV.B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eidb::storage {

class Dictionary {
 public:
  /// Builds an ordered dictionary over (the distinct values of) `values`.
  static Dictionary build(const std::vector<std::string>& values);

  /// Code for `s`, if present.
  [[nodiscard]] std::optional<std::int32_t> code_of(std::string_view s) const;

  /// Smallest code whose string is >= s (== size() if none).
  [[nodiscard]] std::int32_t lower_bound(std::string_view s) const;
  /// Smallest code whose string is > s (== size() if none).
  [[nodiscard]] std::int32_t upper_bound(std::string_view s) const;

  [[nodiscard]] const std::string& at(std::int32_t code) const;
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(strings_.size());
  }
  [[nodiscard]] bool empty() const { return strings_.empty(); }

  /// Total bytes of string payload (for cost/energy accounting).
  [[nodiscard]] std::size_t payload_bytes() const;

  /// Code translation into `other`'s code domain: `remap[c]` is the code
  /// `other` assigns to `at(c)`, or -1 when `other` lacks the string.
  /// Both dictionaries are sorted, so this is one linear merge — the
  /// cross-dictionary join trick: translate the (small) build side's
  /// codes once, then probe on int32 codes with no string compares.
  [[nodiscard]] std::vector<std::int32_t> remap_to(
      const Dictionary& other) const;

 private:
  std::vector<std::string> strings_;  // sorted, unique
};

/// Ordered dictionary over doubles — the same sorted-unique /
/// code-translation contract as the string Dictionary, so double join
/// and group keys run on int32 codes too. Built only for NaN-free
/// columns (NaN breaks the ordering invariant).
class DoubleDictionary {
 public:
  /// Builds an ordered dictionary over the distinct values of `values`.
  /// Returns an empty dictionary if any value is NaN.
  static DoubleDictionary build(const std::vector<double>& values);

  [[nodiscard]] std::optional<std::int32_t> code_of(double v) const;
  [[nodiscard]] double at(std::int32_t code) const;
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(values_.size());
  }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Code translation into `other`'s domain (-1 = absent); linear merge.
  [[nodiscard]] std::vector<std::int32_t> remap_to(
      const DoubleDictionary& other) const;

 private:
  std::vector<double> values_;  // sorted, unique
};

}  // namespace eidb::storage
