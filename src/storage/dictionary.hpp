// Ordered dictionary for string columns.
//
// Strings are stored once in a sorted dictionary; the column itself holds
// int32 codes. Because the dictionary is *ordered*, range predicates on
// strings translate to range predicates on codes, so string scans run on the
// same SIMD integer kernels as numeric scans — the core column-store trick
// behind "main memory is the new disk" scan performance (§IV.B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eidb::storage {

class Dictionary {
 public:
  /// Builds an ordered dictionary over (the distinct values of) `values`.
  static Dictionary build(const std::vector<std::string>& values);

  /// Code for `s`, if present.
  [[nodiscard]] std::optional<std::int32_t> code_of(std::string_view s) const;

  /// Smallest code whose string is >= s (== size() if none).
  [[nodiscard]] std::int32_t lower_bound(std::string_view s) const;
  /// Smallest code whose string is > s (== size() if none).
  [[nodiscard]] std::int32_t upper_bound(std::string_view s) const;

  [[nodiscard]] const std::string& at(std::int32_t code) const;
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(strings_.size());
  }
  [[nodiscard]] bool empty() const { return strings_.empty(); }

  /// Total bytes of string payload (for cost/energy accounting).
  [[nodiscard]] std::size_t payload_bytes() const;

 private:
  std::vector<std::string> strings_;  // sorted, unique
};

}  // namespace eidb::storage
