// Byte-oriented LZ77 compressor (hash-chain, greedy parse, 64 KiB window).
//
// Built from scratch (no external codec dependencies). Format: a stream of
// ops; each op byte's low bit selects {literal-run, match}. Literal run:
// varint length then raw bytes. Match: varint length (>= 4) and varint
// backward distance. Decompression is a straight copy loop — intentionally
// much faster than compression, matching the asymmetry real engines exploit
// when only the receiver is CPU-constrained.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eidb::storage {

[[nodiscard]] std::vector<std::byte> lz_compress(std::span<const std::byte> in);

/// `expected_size` is the exact size of the original input.
[[nodiscard]] std::vector<std::byte> lz_decompress(
    std::span<const std::byte> in, std::size_t expected_size);

}  // namespace eidb::storage
