// Per-block min/max zone maps.
//
// Experiment E1's "better plan" arm: the paper argues (citing [12]) that
// classic optimization — touching less data — is implicitly energy
// optimization. Zone maps let a scan skip blocks whose [min, max] range
// cannot satisfy the predicate: fewer cycles, fewer DRAM bytes, fewer
// joules, same answer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eidb::storage {

struct Zone {
  std::int64_t min = 0;
  std::int64_t max = 0;
};

class ZoneMap {
 public:
  /// Builds zones of `block_rows` consecutive rows over `values`.
  static ZoneMap build(std::span<const std::int64_t> values,
                       std::size_t block_rows);
  static ZoneMap build32(std::span<const std::int32_t> values,
                         std::size_t block_rows);

  [[nodiscard]] std::size_t block_rows() const { return block_rows_; }
  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }
  [[nodiscard]] const Zone& zone(std::size_t i) const { return zones_[i]; }

  /// True if block `i` may contain values in [lo, hi].
  [[nodiscard]] bool may_overlap(std::size_t i, std::int64_t lo,
                                 std::int64_t hi) const {
    return zones_[i].max >= lo && zones_[i].min <= hi;
  }

  /// Row ranges of blocks that may contain values in [lo, hi].
  struct RowRange {
    std::size_t begin;
    std::size_t end;
  };
  [[nodiscard]] std::vector<RowRange> candidate_ranges(std::int64_t lo,
                                                       std::int64_t hi,
                                                       std::size_t row_count)
      const;

 private:
  std::size_t block_rows_ = 0;
  std::vector<Zone> zones_;
};

}  // namespace eidb::storage
