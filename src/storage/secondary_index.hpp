// Secondary index with Ubiquity vs. Need-to-Know maintenance (paper §IV.A).
//
// "The Need-to-Know principle states that the system has to reflect only
// that degree of consistency, which is required by a specific application.
// ... a system following the principle of ubiquity has to maintain an index
// entry after an update in the database independent of any reader ... A
// system following the Need-to-Know principle would only update the index
// if another application has indicated interest in reading the index."
//
// Implementation: a sorted (value, row) array over an append-only column.
//  * kUbiquity    — every append is merged into the sorted run immediately.
//  * kNeedToKnow  — appends land in an unsorted pending buffer; the buffer
//    is merged only when a reader has declared interest (or a lookup
//    arrives). With no readers, maintenance work is zero — the energy win
//    measured by the A1 ablation bench.
//
// Lookups are always *correct* regardless of policy: a lookup first forces
// a merge, so lazy maintenance trades write-path work for a latency spike
// on the first read after a write burst.
#pragma once

#include <cstdint>
#include <vector>

namespace eidb::storage {

enum class IndexMaintenance : std::uint8_t { kUbiquity, kNeedToKnow };

class SecondaryIndex {
 public:
  explicit SecondaryIndex(IndexMaintenance policy) : policy_(policy) {}

  [[nodiscard]] IndexMaintenance policy() const { return policy_; }

  /// Appends the next row's key value (row ids are implicit, dense).
  void append(std::int64_t value);

  /// Declares (or retracts) reader interest. Under Need-to-Know, gaining a
  /// reader triggers a catch-up merge and switches to eager maintenance
  /// until interest drops to zero.
  void register_reader();
  void unregister_reader();
  [[nodiscard]] int reader_count() const { return readers_; }

  /// Row ids whose value lies in [lo, hi], ascending by (value, row).
  /// Forces a merge of pending entries first.
  [[nodiscard]] std::vector<std::uint32_t> lookup_range(std::int64_t lo,
                                                        std::int64_t hi);

  /// Rows indexed (merged) so far.
  [[nodiscard]] std::size_t indexed_rows() const { return sorted_.size(); }
  /// Appends buffered but not yet merged.
  [[nodiscard]] std::size_t pending_rows() const { return pending_.size(); }
  /// Total entries ever merged — the maintenance work metric. Merging n
  /// pending rows into m indexed rows counts n + m (re-merge cost), the
  /// sorted-array trade; a B-tree would charge n log m.
  [[nodiscard]] std::uint64_t maintenance_ops() const {
    return maintenance_ops_;
  }

 private:
  struct Entry {
    std::int64_t value;
    std::uint32_t row;
  };
  void merge_pending();

  IndexMaintenance policy_;
  int readers_ = 0;
  std::uint32_t next_row_ = 0;
  std::vector<Entry> sorted_;
  std::vector<Entry> pending_;
  std::uint64_t maintenance_ops_ = 0;
};

}  // namespace eidb::storage
