#include "storage/tier.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::storage {

void TierManager::register_column(const std::string& table,
                                  const std::string& column, std::size_t bytes,
                                  Tier tier) {
  std::scoped_lock lock(mu_);
  entries_[key(table, column)] = Entry{bytes, tier, 0};
}

void TierManager::place(const std::string& table, const std::string& column,
                        Tier tier) {
  std::scoped_lock lock(mu_);
  const auto it = entries_.find(key(table, column));
  if (it == entries_.end()) throw Error("unregistered column: " + key(table, column));
  it->second.tier = tier;
}

Tier TierManager::tier_of(const std::string& table,
                          const std::string& column) const {
  std::scoped_lock lock(mu_);
  return entry(table, column).tier;
}

const TierManager::Entry& TierManager::entry(const std::string& table,
                                             const std::string& column) const {
  const auto it = entries_.find(key(table, column));
  if (it == entries_.end())
    throw Error("unregistered column: " + key(table, column));
  return it->second;
}

TierManager::Penalty TierManager::access(const std::string& table,
                                         const std::string& column) {
  std::scoped_lock lock(mu_);
  const auto it = entries_.find(key(table, column));
  if (it == entries_.end())
    throw Error("unregistered column: " + key(table, column));
  ++it->second.accesses;
  if (it->second.tier == Tier::kHot) return {};
  const auto bytes = static_cast<double>(it->second.bytes);
  return {cold_.read_time_s(bytes), cold_.read_energy_j(bytes)};
}

std::size_t TierManager::hot_bytes_locked() const {
  std::size_t total = 0;
  for (const auto& [_, e] : entries_)
    if (e.tier == Tier::kHot) total += e.bytes;
  return total;
}

std::size_t TierManager::hot_bytes() const {
  std::scoped_lock lock(mu_);
  return hot_bytes_locked();
}

std::size_t TierManager::cold_bytes() const {
  std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [_, e] : entries_)
    if (e.tier == Tier::kCold) total += e.bytes;
  return total;
}

std::size_t TierManager::enforce_budget(std::size_t budget_bytes) {
  // Demote hot columns with the fewest accesses first (ties: largest first,
  // to free memory with the fewest demotions).
  std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, Entry*>> hot;
  for (auto& [k, e] : entries_)
    if (e.tier == Tier::kHot) hot.push_back({k, &e});
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.second->accesses != b.second->accesses)
      return a.second->accesses < b.second->accesses;
    return a.second->bytes > b.second->bytes;
  });
  std::size_t current = hot_bytes_locked();
  std::size_t demoted = 0;
  for (auto& [k, e] : hot) {
    if (current <= budget_bytes) break;
    e->tier = Tier::kCold;
    current -= e->bytes;
    ++demoted;
  }
  return demoted;
}

std::uint64_t TierManager::access_count(const std::string& table,
                                        const std::string& column) const {
  std::scoped_lock lock(mu_);
  return entry(table, column).accesses;
}

}  // namespace eidb::storage
