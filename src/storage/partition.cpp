#include "storage/partition.hpp"

#include <bit>
#include <cstddef>

#include "storage/table.hpp"
#include "util/assert.hpp"

namespace eidb::storage {

std::uint64_t shard_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

/// Shard id of every row: hash of the key column's per-row identity. The
/// identity is the value for integer keys and the dictionary code for
/// string/double keys — any deterministic row → shard map works (the
/// executor's results must match single-node regardless of placement),
/// codes just avoid materializing strings.
std::vector<std::uint32_t> assign_shards(const Column& key,
                                         std::size_t shard_count) {
  std::vector<std::uint32_t> shard_of(key.size());
  const auto assign = [&](auto span) {
    for (std::size_t i = 0; i < shard_of.size(); ++i)
      shard_of[i] = static_cast<std::uint32_t>(
          shard_mix(static_cast<std::uint64_t>(span[i])) % shard_count);
  };
  switch (key.type()) {
    case TypeId::kInt32:
      assign(key.int32_data());
      break;
    case TypeId::kInt64:
      assign(key.int64_data());
      break;
    case TypeId::kString:
      assign(key.codes());
      break;
    case TypeId::kDouble:
      if (key.has_double_dictionary()) {
        assign(key.double_codes());
      } else {
        const auto data = key.double_data();
        for (std::size_t i = 0; i < shard_of.size(); ++i)
          shard_of[i] = static_cast<std::uint32_t>(
              shard_mix(std::bit_cast<std::uint64_t>(data[i])) % shard_count);
      }
      break;
  }
  return shard_of;
}

/// Gathers `rows` of `src` into a freshly built column (stats, encoding
/// and dictionaries rebuilt by Table::set_column afterwards).
Column gather_column(const Column& src, const std::vector<std::uint32_t>& rows) {
  switch (src.type()) {
    case TypeId::kInt32: {
      const auto data = src.int32_data();
      std::vector<std::int32_t> out;
      out.reserve(rows.size());
      for (const std::uint32_t r : rows) out.push_back(data[r]);
      return Column::from_int32(src.name(), out);
    }
    case TypeId::kInt64: {
      const auto data = src.int64_data();
      std::vector<std::int64_t> out;
      out.reserve(rows.size());
      for (const std::uint32_t r : rows) out.push_back(data[r]);
      return Column::from_int64(src.name(), out);
    }
    case TypeId::kDouble: {
      const auto data = src.double_data();
      std::vector<double> out;
      out.reserve(rows.size());
      for (const std::uint32_t r : rows) out.push_back(data[r]);
      return Column::from_double(src.name(), out);
    }
    case TypeId::kString: {
      const auto codes = src.codes();
      const Dictionary& dict = src.dictionary();
      std::vector<std::string> out;
      out.reserve(rows.size());
      for (const std::uint32_t r : rows) out.push_back(dict.at(codes[r]));
      return Column::from_strings(src.name(), out);
    }
  }
  throw Error("invalid column type");
}

}  // namespace

PartitionSet build_partition_set(const Table& table,
                                 const std::string& key_column,
                                 std::size_t shard_count) {
  if (shard_count == 0)
    throw Error("cannot partition " + table.name() + " into 0 shards");
  if (!table.complete())
    throw Error("cannot partition incomplete table " + table.name());
  const Column& key = table.column(key_column);  // throws when absent

  PartitionSet set;
  set.key_column = key_column;
  set.shard_rows.resize(shard_count);
  const std::vector<std::uint32_t> shard_of = assign_shards(key, shard_count);
  for (std::size_t i = 0; i < shard_of.size(); ++i)
    set.shard_rows[shard_of[i]].push_back(static_cast<std::uint32_t>(i));

  const Schema& schema = table.schema();
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Table>(
        table.name() + "#" + std::to_string(s), schema);
    for (std::size_t c = 0; c < schema.column_count(); ++c)
      shard->set_column(c, gather_column(table.column(c), set.shard_rows[s]));
    set.shards.push_back(std::move(shard));
  }
  return set;
}

}  // namespace eidb::storage
