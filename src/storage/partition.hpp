// Hash-partition layer over immutable tables: the storage side of sharded
// execution. A PartitionSet splits one fact table into `shard_count`
// row-disjoint shard tables on a key column's hash; each shard is a full
// storage::Table built through the normal load path (set_column), so
// per-shard ColumnStats, encodings and dictionaries exist exactly as they
// would for a standalone table. `shard_rows` keeps each shard's global row
// ids so the executor can map shard-local selections back onto the
// original table (the gather-to-coordinator exchange).
//
// Like recode()/set_column(), building partitions is a load/maintenance-
// time operation — not safe while queries are in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace eidb::storage {

class Table;

/// Deterministic 64-bit finalizer (splitmix64) used for row → shard
/// assignment. Exposed so tests can predict shard membership.
[[nodiscard]] std::uint64_t shard_mix(std::uint64_t x);

/// One table's hash-partition layer. Shards are named "<table>#<i>" and
/// cover the original rows disjointly; shard i of S holds exactly the rows
/// whose key hashes to i mod S, in ascending original-row order.
struct PartitionSet {
  std::string key_column;
  std::vector<std::unique_ptr<Table>> shards;
  /// Global (original-table) row ids per shard, ascending; shard-local row
  /// j of shard i is original row shard_rows[i][j].
  std::vector<std::vector<std::uint32_t>> shard_rows;

  [[nodiscard]] std::size_t shard_count() const { return shards.size(); }
};

/// Hash-partitions `table` on `key_column` into `shard_count` shards.
/// Integer keys hash their value, string keys their dictionary code,
/// double keys their ordered-dictionary code (bit pattern when the column
/// has no code domain, i.e. contains NaN). Throws Error when the table is
/// incomplete, the key column is absent, or shard_count == 0.
[[nodiscard]] PartitionSet build_partition_set(const Table& table,
                                               const std::string& key_column,
                                               std::size_t shard_count);

}  // namespace eidb::storage
