// Integer-column codecs for intermediate-result exchange (experiment E2).
//
// §IV of the paper: "an optimizer has to decide about sending intermediate
// data in a compressed or uncompressed format ... In the former case, the
// system has to spend time and energy for (de-)compression but saves time
// and energy for the communication path. Since both cost factors are
// independent, the optimizer has to decide on a case-by-case basis."
//
// Each codec encodes a span of int64 values to bytes and back. The
// compression advisor (src/opt/) measures each codec's throughput and ratio
// on a sample, then picks raw-vs-codec per link.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace eidb::storage {

enum class CodecKind : std::uint8_t {
  kPlain,         ///< memcpy; the "uncompressed" arm of the decision.
  kForBitpack,    ///< frame-of-reference + fixed-width bit packing.
  kDeltaBitpack,  ///< zigzag deltas + FOR + bit packing (sorted-ish data).
  kRle,           ///< run-length (value, count) pairs.
  kLz,            ///< byte-oriented LZ77 (hash-chain, 64 KiB window).
};

[[nodiscard]] std::string codec_name(CodecKind kind);

class IntCodec {
 public:
  virtual ~IntCodec() = default;
  [[nodiscard]] virtual CodecKind kind() const = 0;
  /// Encodes `values` into a self-contained byte buffer.
  [[nodiscard]] virtual std::vector<std::byte> encode(
      std::span<const std::int64_t> values) const = 0;
  /// Decodes a buffer produced by `encode`.
  [[nodiscard]] virtual std::vector<std::int64_t> decode(
      std::span<const std::byte> bytes) const = 0;
  /// Estimated CPU cycles per input value for encode+decode combined
  /// (used by the cost model before calibration refines it).
  [[nodiscard]] virtual double nominal_cycles_per_value() const = 0;
};

/// Factory for each codec kind.
[[nodiscard]] std::unique_ptr<IntCodec> make_codec(CodecKind kind);

/// All codecs, for sweeps.
[[nodiscard]] std::vector<CodecKind> all_codec_kinds();

}  // namespace eidb::storage
