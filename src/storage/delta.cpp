#include "storage/delta.hpp"

#include "exec/scan_kernels.hpp"
#include "util/assert.hpp"

namespace eidb::storage {

std::int64_t DeltaColumn::at(std::size_t i) const {
  EIDB_EXPECTS(i < size());
  return i < main_.size() ? main_[i] : delta_[i - main_.size()];
}

void DeltaColumn::scan_range(std::int64_t lo, std::int64_t hi,
                             BitVector& out) const {
  EIDB_EXPECTS(out.size() >= size());
  // SIMD over the main…
  if (!main_.empty()) {
    BitVector main_bits(main_.size());
    exec::scan_bitmap_best64(main_, lo, hi, main_bits);
    // The main occupies logical rows [0, main_size): word-aligned copy is
    // only safe when out shares word boundaries — logical row 0 == bit 0,
    // so it does.
    std::copy(main_bits.words(), main_bits.words() + main_bits.word_count(),
              out.words());
    // Clear any tail bits the copy may have brought along past main_size
    // (the last word of main_bits is already masked to main size; delta
    // bits get set below).
  }
  // …scalar over the delta.
  for (std::size_t d = 0; d < delta_.size(); ++d) {
    const std::size_t i = main_.size() + d;
    if (delta_[d] >= lo && delta_[d] <= hi)
      out.set(i);
    else
      out.reset(i);
  }
}

std::size_t DeltaColumn::merge() {
  const std::size_t merged = delta_.size();
  if (merged == 0) return 0;
  main_.insert(main_.end(), delta_.begin(), delta_.end());
  delta_.clear();
  ++merges_;
  rows_rewritten_ += main_.size();  // a real merge rewrites the new main
  return merged;
}

}  // namespace eidb::storage
