#include "storage/column.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace eidb::storage {

Column::Column(std::string name, TypeId type)
    : name_(std::move(name)), type_(type) {}

void Column::reserve(std::size_t rows) {
  ensure_capacity(rows);
}

void Column::ensure_capacity(std::size_t rows) {
  const std::size_t need = rows * physical_size(type_);
  if (need > data_.size())
    data_.grow(std::max(need, data_.size() == 0 ? std::size_t{4096}
                                                : data_.size() * 2));
}

template <typename T>
void Column::append_raw(T v) {
  ensure_capacity(count_ + 1);
  data_.as_span<T>()[count_] = v;
  ++count_;
}

void Column::append_int32(std::int32_t v) {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  append_raw(v);
}

void Column::append_int64(std::int64_t v) {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  append_raw(v);
}

void Column::append_double(double v) {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  append_raw(v);
}

Column Column::from_int32(std::string name, std::span<const std::int32_t> v) {
  Column c(std::move(name), TypeId::kInt32);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_int64(std::string name, std::span<const std::int64_t> v) {
  Column c(std::move(name), TypeId::kInt64);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_double(std::string name, std::span<const double> v) {
  Column c(std::move(name), TypeId::kDouble);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_strings(std::string name,
                            const std::vector<std::string>& values) {
  Column c(std::move(name), TypeId::kString);
  auto dict = std::make_shared<Dictionary>(Dictionary::build(values));
  c.ensure_capacity(values.size());
  auto out = c.data_.as_span<std::int32_t>();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto code = dict->code_of(values[i]);
    EIDB_ASSERT(code.has_value());
    out[i] = *code;
  }
  c.count_ = values.size();
  c.dict_ = std::move(dict);
  return c;
}

std::span<const std::int32_t> Column::int32_data() const {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  return data_.as_span<const std::int32_t>().subspan(0, count_);
}

std::span<const std::int64_t> Column::int64_data() const {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  return data_.as_span<const std::int64_t>().subspan(0, count_);
}

std::span<const double> Column::double_data() const {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  return data_.as_span<const double>().subspan(0, count_);
}

std::span<const std::int32_t> Column::codes() const {
  EIDB_EXPECTS(type_ == TypeId::kString);
  return data_.as_span<const std::int32_t>().subspan(0, count_);
}

const Dictionary& Column::dictionary() const {
  EIDB_EXPECTS(dict_ != nullptr);
  return *dict_;
}

Value Column::value_at(std::size_t i) const {
  EIDB_EXPECTS(i < count_);
  switch (type_) {
    case TypeId::kInt32:
      return Value{std::int64_t{int32_data()[i]}};
    case TypeId::kInt64:
      return Value{int64_data()[i]};
    case TypeId::kDouble:
      return Value{double_data()[i]};
    case TypeId::kString:
      return Value{dictionary().at(codes()[i])};
  }
  EIDB_ASSERT(false);
  return {};
}

std::span<std::int32_t> Column::mutable_int32() {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  return data_.as_span<std::int32_t>().subspan(0, count_);
}

std::span<std::int64_t> Column::mutable_int64() {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  return data_.as_span<std::int64_t>().subspan(0, count_);
}

std::span<double> Column::mutable_double() {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  return data_.as_span<double>().subspan(0, count_);
}

}  // namespace eidb::storage
