#include "storage/column.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "util/assert.hpp"

namespace eidb::storage {

namespace {

/// Overlap of [lo, hi] with [min, max] as a fraction of the value domain.
double uniform_overlap(double lo, double hi, double min, double max) {
  if (hi < lo || hi < min || lo > max) return 0.0;
  const double width = max - min;
  if (width <= 0) return 1.0;  // single-valued column: full overlap
  return std::min(1.0, (std::min(hi, max) - std::max(lo, min)) / width);
}

/// Distinct estimate from an evenly-strided sample: exact when the sample
/// covers the column, linearly extrapolated when repeats have not yet
/// saturated the sample. Coarse by design — it feeds cost estimates, not
/// results.
template <typename T>
std::uint64_t estimate_distinct(std::span<const T> values) {
  constexpr std::size_t kSampleLimit = 1 << 16;
  const std::size_t n = values.size();
  if (n == 0) return 0;
  const std::size_t stride = std::max<std::size_t>(1, n / kSampleLimit);
  std::unordered_set<std::int64_t> seen;
  std::size_t sampled = 0;
  for (std::size_t i = 0; i < n; i += stride) {
    std::int64_t key;
    if constexpr (std::is_same_v<T, double>) {
      std::memcpy(&key, &values[i], sizeof key);  // distinct bit patterns
    } else {
      key = static_cast<std::int64_t>(values[i]);
    }
    seen.insert(key);
    ++sampled;
  }
  if (stride == 1) return seen.size();
  // Repeats in the sample indicate saturation; otherwise scale up.
  const double ratio =
      static_cast<double>(seen.size()) / static_cast<double>(sampled);
  if (ratio < 0.9) return seen.size();
  return static_cast<std::uint64_t>(ratio * static_cast<double>(n));
}

}  // namespace

std::string encoding_name(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kBitPacked:
      return "bitpacked";
    case Encoding::kForBitPacked:
      return "for-bitpacked";
  }
  return "?";
}

unsigned packed_width(const ColumnStats& stats, TypeId type,
                      Encoding encoding) {
  // Widths from the cached statistics; unsigned arithmetic survives
  // hash-like int64 spreads that overflow the signed domain() helper.
  switch (encoding) {
    case Encoding::kPlain:
      return static_cast<unsigned>(physical_size(type)) * 8;
    case Encoding::kBitPacked:
      return stats.rows == 0
                 ? 0
                 : bits_for_width(static_cast<std::uint64_t>(stats.max));
    case Encoding::kForBitPacked:
      return stats.rows == 0
                 ? 0
                 : bits_for_width(static_cast<std::uint64_t>(stats.max) -
                                  static_cast<std::uint64_t>(stats.min));
  }
  return 0;
}

Encoding choose_encoding(const ColumnStats& stats, TypeId type,
                         unsigned* bits_out) {
  if (type == TypeId::kDouble) return Encoding::kPlain;
  if (stats.rows == 0) return Encoding::kPlain;  // nothing to save
  const unsigned plain_bits = packed_width(stats, type, Encoding::kPlain);
  const unsigned for_bits =
      packed_width(stats, type, Encoding::kForBitPacked);
  const unsigned raw_bits =
      stats.min >= 0 ? packed_width(stats, type, Encoding::kBitPacked)
                     : plain_bits;  // negative domain: inapplicable
  // Prefer the reference-free layout when FOR saves nothing on top of it
  // (covers the all-zero column: raw_bits == for_bits == 0).
  Encoding chosen;
  unsigned bits;
  if (stats.min >= 0 && raw_bits <= for_bits) {
    chosen = Encoding::kBitPacked;
    bits = raw_bits;
  } else {
    chosen = Encoding::kForBitPacked;
    bits = for_bits;
  }
  // Compare materialized byte sizes, not per-value widths: the packed
  // image rounds up to whole 64-bit words, which can exceed the plain
  // array for tiny columns at near-full widths — and the dram(packed) <=
  // dram(plain) ledger invariant must hold for every encoded column.
  if (bits >= plain_bits ||
      packed_word_count(stats.rows, bits) * sizeof(std::uint64_t) >=
          stats.rows * physical_size(type))
    return Encoding::kPlain;  // no traffic saving
  if (bits_out != nullptr) *bits_out = bits;
  return chosen;
}

double ColumnStats::range_selectivity(std::int64_t lo, std::int64_t hi) const {
  if (rows == 0) return 0.0;
  if (hi < lo || hi < min || lo > max) return 0.0;
  // Inclusive integer widths: a point predicate on an N-value domain is
  // 1/N, not 0 (the continuous formula under-counts discrete domains).
  const double overlap = static_cast<double>(std::min(hi, max)) -
                         static_cast<double>(std::max(lo, min)) + 1.0;
  const double width =
      static_cast<double>(max) - static_cast<double>(min) + 1.0;
  return std::min(1.0, overlap / width);
}

double ColumnStats::range_selectivity(double lo, double hi) const {
  if (rows == 0) return 0.0;
  return uniform_overlap(lo, hi, dmin, dmax);
}

Column::Column(std::string name, TypeId type)
    : name_(std::move(name)), type_(type) {}

void Column::reserve(std::size_t rows) {
  ensure_capacity(rows);
}

void Column::ensure_capacity(std::size_t rows) {
  const std::size_t need = rows * physical_size(type_);
  if (need > data_.size())
    data_.grow(std::max(need, data_.size() == 0 ? std::size_t{4096}
                                                : data_.size() * 2));
}

template <typename T>
void Column::append_raw(T v) {
  ensure_capacity(count_ + 1);
  data_.as_span<T>()[count_] = v;
  ++count_;
  stats_.reset();  // appended data invalidates cached statistics
  segment_.reset();  // ... and any packed image built from them
  ddict_.reset();
  dcodes_.reset();
}

void Column::append_int32(std::int32_t v) {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  append_raw(v);
}

void Column::append_int64(std::int64_t v) {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  append_raw(v);
}

void Column::append_double(double v) {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  append_raw(v);
}

Column Column::from_int32(std::string name, std::span<const std::int32_t> v) {
  Column c(std::move(name), TypeId::kInt32);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_int64(std::string name, std::span<const std::int64_t> v) {
  Column c(std::move(name), TypeId::kInt64);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_double(std::string name, std::span<const double> v) {
  Column c(std::move(name), TypeId::kDouble);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_strings(std::string name,
                            const std::vector<std::string>& values) {
  Column c(std::move(name), TypeId::kString);
  auto dict = std::make_shared<Dictionary>(Dictionary::build(values));
  c.ensure_capacity(values.size());
  auto out = c.data_.as_span<std::int32_t>();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto code = dict->code_of(values[i]);
    EIDB_ASSERT(code.has_value());
    out[i] = *code;
  }
  c.count_ = values.size();
  c.dict_ = std::move(dict);
  return c;
}

std::span<const std::int32_t> Column::int32_data() const {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  return data_.as_span<const std::int32_t>().subspan(0, count_);
}

std::span<const std::int64_t> Column::int64_data() const {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  return data_.as_span<const std::int64_t>().subspan(0, count_);
}

std::span<const double> Column::double_data() const {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  return data_.as_span<const double>().subspan(0, count_);
}

std::span<const std::int32_t> Column::codes() const {
  EIDB_EXPECTS(type_ == TypeId::kString);
  return data_.as_span<const std::int32_t>().subspan(0, count_);
}

const Dictionary& Column::dictionary() const {
  EIDB_EXPECTS(dict_ != nullptr);
  return *dict_;
}

void Column::build_double_dictionary() {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  const auto data = double_data();
  auto dict = std::make_shared<DoubleDictionary>(
      DoubleDictionary::build({data.begin(), data.end()}));
  if (dict->empty() && count_ > 0) return;  // NaN present: no code domain
  auto codes = std::make_shared<std::vector<std::int32_t>>(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    const auto code = dict->code_of(data[i]);
    EIDB_ASSERT(code.has_value());
    (*codes)[i] = *code;
  }
  ddict_ = std::move(dict);
  dcodes_ = std::move(codes);
}

const DoubleDictionary& Column::double_dictionary() const {
  EIDB_EXPECTS(ddict_ != nullptr);
  return *ddict_;
}

std::span<const std::int32_t> Column::double_codes() const {
  EIDB_EXPECTS(dcodes_ != nullptr);
  return *dcodes_;
}

Value Column::value_at(std::size_t i) const {
  EIDB_EXPECTS(i < count_);
  switch (type_) {
    case TypeId::kInt32:
      return Value{std::int64_t{int32_data()[i]}};
    case TypeId::kInt64:
      return Value{int64_data()[i]};
    case TypeId::kDouble:
      return Value{double_data()[i]};
    case TypeId::kString:
      return Value{dictionary().at(codes()[i])};
  }
  EIDB_ASSERT(false);
  return {};
}

std::int64_t Column::int_at(std::size_t i) const {
  EIDB_EXPECTS(type_ != TypeId::kDouble);
  EIDB_EXPECTS(i < count_);
  if (type_ == TypeId::kInt64)
    return data_.as_span<const std::int64_t>()[i];
  return data_.as_span<const std::int32_t>()[i];  // int32 or string codes
}

std::span<std::int32_t> Column::mutable_int32() {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  stats_.reset();
  segment_.reset();
  return data_.as_span<std::int32_t>().subspan(0, count_);
}

std::span<std::int64_t> Column::mutable_int64() {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  stats_.reset();
  segment_.reset();
  return data_.as_span<std::int64_t>().subspan(0, count_);
}

std::span<double> Column::mutable_double() {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  stats_.reset();
  segment_.reset();
  ddict_.reset();
  dcodes_.reset();
  return data_.as_span<double>().subspan(0, count_);
}

const ColumnStats& Column::stats() const {
  if (stats_ == nullptr) {
    auto s = std::make_shared<ColumnStats>();
    s->rows = count_;
    if (count_ > 0) {
      switch (type_) {
        case TypeId::kInt64: {
          const auto data = int64_data();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->min = *mn;
          s->max = *mx;
          s->distinct = estimate_distinct(data);
          break;
        }
        case TypeId::kInt32: {
          const auto data = int32_data();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->min = *mn;
          s->max = *mx;
          s->distinct = estimate_distinct(data);
          break;
        }
        case TypeId::kString: {
          const auto data = codes();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->min = *mn;
          s->max = *mx;
          s->distinct = dictionary().size();  // exact by construction
          break;
        }
        case TypeId::kDouble: {
          const auto data = double_data();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->dmin = *mn;
          s->dmax = *mx;
          s->distinct = estimate_distinct(data);
          break;
        }
      }
    }
    stats_ = std::move(s);
  }
  return *stats_;
}

PackedView Column::packed_view() const {
  EIDB_EXPECTS(segment_ != nullptr);
  return segment_->view();
}

Encoding Column::choose_encoding() const {
  return eidb::storage::choose_encoding(stats(), type_);
}

void Column::build_segment(Encoding e) {
  if (e == Encoding::kPlain) {
    segment_.reset();
    return;
  }
  if (type_ == TypeId::kDouble)
    throw Error("cannot encode double column " + name_);
  const ColumnStats& s = stats();
  auto seg = std::make_shared<EncodedSegment>();
  seg->encoding = e;
  seg->count = count_;
  if (e == Encoding::kBitPacked) {
    if (s.rows > 0 && s.min < 0)
      throw Error("bitpacked encoding requires a non-negative domain: " +
                  name_);
    seg->reference = 0;
  } else {
    seg->reference = s.rows == 0 ? 0 : s.min;
  }
  seg->bits = packed_width(s, type_, e);
  // Shift into the packed domain and pack. Unsigned subtraction is exact
  // modulo 2^64, so even spreads beyond int64 round-trip correctly.
  std::vector<std::uint64_t> shifted(count_);
  const auto ref = static_cast<std::uint64_t>(seg->reference);
  if (type_ == TypeId::kInt64) {
    const auto data = int64_data();
    for (std::size_t i = 0; i < count_; ++i)
      shifted[i] = static_cast<std::uint64_t>(data[i]) - ref;
  } else {
    const auto data = data_.as_span<const std::int32_t>().subspan(0, count_);
    for (std::size_t i = 0; i < count_; ++i)
      shifted[i] = static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(data[i])) -
                   ref;
  }
  seg->words = bitpack(shifted, seg->bits);
  segment_ = std::move(seg);
}

void Column::set_encoding(Encoding e) {
  forced_encoding_ = e;
  build_segment(e);
}

void Column::auto_encode() {
  const Encoding want =
      forced_encoding_ ? *forced_encoding_ : choose_encoding();
  if (segment_ == nullptr ? want == Encoding::kPlain
                          : segment_->encoding == want &&
                                segment_->count == count_)
    return;
  build_segment(want);
}

}  // namespace eidb::storage
