#include "storage/column.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "util/assert.hpp"

namespace eidb::storage {

namespace {

/// Overlap of [lo, hi] with [min, max] as a fraction of the value domain.
double uniform_overlap(double lo, double hi, double min, double max) {
  if (hi < lo || hi < min || lo > max) return 0.0;
  const double width = max - min;
  if (width <= 0) return 1.0;  // single-valued column: full overlap
  return std::min(1.0, (std::min(hi, max) - std::max(lo, min)) / width);
}

/// Distinct estimate from an evenly-strided sample: exact when the sample
/// covers the column, linearly extrapolated when repeats have not yet
/// saturated the sample. Coarse by design — it feeds cost estimates, not
/// results.
template <typename T>
std::uint64_t estimate_distinct(std::span<const T> values) {
  constexpr std::size_t kSampleLimit = 1 << 16;
  const std::size_t n = values.size();
  if (n == 0) return 0;
  const std::size_t stride = std::max<std::size_t>(1, n / kSampleLimit);
  std::unordered_set<std::int64_t> seen;
  std::size_t sampled = 0;
  for (std::size_t i = 0; i < n; i += stride) {
    std::int64_t key;
    if constexpr (std::is_same_v<T, double>) {
      std::memcpy(&key, &values[i], sizeof key);  // distinct bit patterns
    } else {
      key = static_cast<std::int64_t>(values[i]);
    }
    seen.insert(key);
    ++sampled;
  }
  if (stride == 1) return seen.size();
  // Repeats in the sample indicate saturation; otherwise scale up.
  const double ratio =
      static_cast<double>(seen.size()) / static_cast<double>(sampled);
  if (ratio < 0.9) return seen.size();
  return static_cast<std::uint64_t>(ratio * static_cast<double>(n));
}

}  // namespace

double ColumnStats::range_selectivity(std::int64_t lo, std::int64_t hi) const {
  if (rows == 0) return 0.0;
  if (hi < lo || hi < min || lo > max) return 0.0;
  // Inclusive integer widths: a point predicate on an N-value domain is
  // 1/N, not 0 (the continuous formula under-counts discrete domains).
  const double overlap = static_cast<double>(std::min(hi, max)) -
                         static_cast<double>(std::max(lo, min)) + 1.0;
  const double width =
      static_cast<double>(max) - static_cast<double>(min) + 1.0;
  return std::min(1.0, overlap / width);
}

double ColumnStats::range_selectivity(double lo, double hi) const {
  if (rows == 0) return 0.0;
  return uniform_overlap(lo, hi, dmin, dmax);
}

Column::Column(std::string name, TypeId type)
    : name_(std::move(name)), type_(type) {}

void Column::reserve(std::size_t rows) {
  ensure_capacity(rows);
}

void Column::ensure_capacity(std::size_t rows) {
  const std::size_t need = rows * physical_size(type_);
  if (need > data_.size())
    data_.grow(std::max(need, data_.size() == 0 ? std::size_t{4096}
                                                : data_.size() * 2));
}

template <typename T>
void Column::append_raw(T v) {
  ensure_capacity(count_ + 1);
  data_.as_span<T>()[count_] = v;
  ++count_;
  stats_.reset();  // appended data invalidates cached statistics
}

void Column::append_int32(std::int32_t v) {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  append_raw(v);
}

void Column::append_int64(std::int64_t v) {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  append_raw(v);
}

void Column::append_double(double v) {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  append_raw(v);
}

Column Column::from_int32(std::string name, std::span<const std::int32_t> v) {
  Column c(std::move(name), TypeId::kInt32);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_int64(std::string name, std::span<const std::int64_t> v) {
  Column c(std::move(name), TypeId::kInt64);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_double(std::string name, std::span<const double> v) {
  Column c(std::move(name), TypeId::kDouble);
  c.ensure_capacity(v.size());
  std::memcpy(c.data_.data(), v.data(), v.size_bytes());
  c.count_ = v.size();
  return c;
}

Column Column::from_strings(std::string name,
                            const std::vector<std::string>& values) {
  Column c(std::move(name), TypeId::kString);
  auto dict = std::make_shared<Dictionary>(Dictionary::build(values));
  c.ensure_capacity(values.size());
  auto out = c.data_.as_span<std::int32_t>();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto code = dict->code_of(values[i]);
    EIDB_ASSERT(code.has_value());
    out[i] = *code;
  }
  c.count_ = values.size();
  c.dict_ = std::move(dict);
  return c;
}

std::span<const std::int32_t> Column::int32_data() const {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  return data_.as_span<const std::int32_t>().subspan(0, count_);
}

std::span<const std::int64_t> Column::int64_data() const {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  return data_.as_span<const std::int64_t>().subspan(0, count_);
}

std::span<const double> Column::double_data() const {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  return data_.as_span<const double>().subspan(0, count_);
}

std::span<const std::int32_t> Column::codes() const {
  EIDB_EXPECTS(type_ == TypeId::kString);
  return data_.as_span<const std::int32_t>().subspan(0, count_);
}

const Dictionary& Column::dictionary() const {
  EIDB_EXPECTS(dict_ != nullptr);
  return *dict_;
}

Value Column::value_at(std::size_t i) const {
  EIDB_EXPECTS(i < count_);
  switch (type_) {
    case TypeId::kInt32:
      return Value{std::int64_t{int32_data()[i]}};
    case TypeId::kInt64:
      return Value{int64_data()[i]};
    case TypeId::kDouble:
      return Value{double_data()[i]};
    case TypeId::kString:
      return Value{dictionary().at(codes()[i])};
  }
  EIDB_ASSERT(false);
  return {};
}

std::span<std::int32_t> Column::mutable_int32() {
  EIDB_EXPECTS(type_ == TypeId::kInt32 || type_ == TypeId::kString);
  stats_.reset();
  return data_.as_span<std::int32_t>().subspan(0, count_);
}

std::span<std::int64_t> Column::mutable_int64() {
  EIDB_EXPECTS(type_ == TypeId::kInt64);
  stats_.reset();
  return data_.as_span<std::int64_t>().subspan(0, count_);
}

std::span<double> Column::mutable_double() {
  EIDB_EXPECTS(type_ == TypeId::kDouble);
  stats_.reset();
  return data_.as_span<double>().subspan(0, count_);
}

const ColumnStats& Column::stats() const {
  if (stats_ == nullptr) {
    auto s = std::make_shared<ColumnStats>();
    s->rows = count_;
    if (count_ > 0) {
      switch (type_) {
        case TypeId::kInt64: {
          const auto data = int64_data();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->min = *mn;
          s->max = *mx;
          s->distinct = estimate_distinct(data);
          break;
        }
        case TypeId::kInt32: {
          const auto data = int32_data();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->min = *mn;
          s->max = *mx;
          s->distinct = estimate_distinct(data);
          break;
        }
        case TypeId::kString: {
          const auto data = codes();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->min = *mn;
          s->max = *mx;
          s->distinct = dictionary().size();  // exact by construction
          break;
        }
        case TypeId::kDouble: {
          const auto data = double_data();
          const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
          s->dmin = *mn;
          s->dmax = *mx;
          s->distinct = estimate_distinct(data);
          break;
        }
      }
    }
    stats_ = std::move(s);
  }
  return *stats_;
}

}  // namespace eidb::storage
