#include "storage/bitpack.hpp"

#include <bit>

#include "util/assert.hpp"

namespace eidb::storage {

std::size_t packed_word_count(std::size_t count, unsigned bits) {
  EIDB_EXPECTS(bits <= 64);
  return (count * bits + 63) / 64;
}

unsigned min_bits(std::span<const std::uint64_t> values) {
  std::uint64_t all = 0;
  for (const std::uint64_t v : values) all |= v;
  return all == 0 ? 0u : static_cast<unsigned>(64 - std::countl_zero(all));
}

std::vector<std::uint64_t> bitpack(std::span<const std::uint64_t> values,
                                   unsigned bits) {
  EIDB_EXPECTS(bits <= 64);
  std::vector<std::uint64_t> out(packed_word_count(values.size(), bits), 0);
  if (bits == 0) return out;
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::size_t bitpos = 0;
  for (const std::uint64_t raw : values) {
    const std::uint64_t v = raw & mask;
    EIDB_ASSERT(bits == 64 || raw <= mask);
    const std::size_t word = bitpos >> 6;
    const unsigned off = bitpos & 63;
    out[word] |= v << off;
    if (off + bits > 64) out[word + 1] |= v >> (64 - off);
    bitpos += bits;
  }
  return out;
}

void bitunpack(std::span<const std::uint64_t> packed, unsigned bits,
               std::size_t count, std::span<std::uint64_t> out) {
  EIDB_EXPECTS(bits <= 64);
  EIDB_EXPECTS(out.size() >= count);
  if (bits == 0) {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t word = bitpos >> 6;
    const unsigned off = bitpos & 63;
    std::uint64_t v = packed[word] >> off;
    if (off + bits > 64) v |= packed[word + 1] << (64 - off);
    out[i] = v & mask;
    bitpos += bits;
  }
}

void bitunpack_block64(std::span<const std::uint64_t> packed, unsigned bits,
                       std::size_t block_start, std::uint64_t out[64]) {
  EIDB_EXPECTS((block_start & 63) == 0);
  if (bits == 0) {
    for (int i = 0; i < 64; ++i) out[i] = 0;
    return;
  }
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  // A 64-value block at width b occupies exactly b words and starts word-
  // aligned, which keeps this loop branch-light and auto-vectorizable.
  std::size_t bitpos = block_start * bits;
  for (int i = 0; i < 64; ++i) {
    const std::size_t word = bitpos >> 6;
    const unsigned off = bitpos & 63;
    std::uint64_t v = packed[word] >> off;
    if (off + bits > 64) v |= packed[word + 1] << (64 - off);
    out[i] = v & mask;
    bitpos += bits;
  }
}

std::uint64_t bitpacked_at(std::span<const std::uint64_t> packed,
                           unsigned bits, std::size_t index) {
  EIDB_EXPECTS(bits <= 64);
  if (bits == 0) return 0;
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  const std::size_t bitpos = index * bits;
  const std::size_t word = bitpos >> 6;
  const unsigned off = bitpos & 63;
  std::uint64_t v = packed[word] >> off;
  if (off + bits > 64) v |= packed[word + 1] << (64 - off);
  return v & mask;
}

}  // namespace eidb::storage
