#include "storage/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/assert.hpp"

namespace eidb::storage {

namespace {

constexpr std::uint32_t kMagic = 0x42444945;  // "EIDB" little-endian
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), 8);
}
void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t get_u32(std::istream& in) {
  std::uint32_t v = 0;
  if (!in.read(reinterpret_cast<char*>(&v), 4))
    throw Error("truncated table file (u32)");
  return v;
}
std::uint64_t get_u64(std::istream& in) {
  std::uint64_t v = 0;
  if (!in.read(reinterpret_cast<char*>(&v), 8))
    throw Error("truncated table file (u64)");
  return v;
}
std::string get_string(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  if (n > (1u << 20)) throw Error("implausible string length in table file");
  std::string s(n, '\0');
  if (!in.read(s.data(), n)) throw Error("truncated table file (string)");
  return s;
}

}  // namespace

void save_table(const Table& table, std::ostream& out) {
  if (!table.complete()) throw Error("cannot save incomplete table");
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_string(out, table.name());
  put_u32(out, static_cast<std::uint32_t>(table.column_count()));
  for (std::size_t c = 0; c < table.column_count(); ++c) {
    const Column& col = table.column(c);
    put_string(out, col.name());
    out.put(static_cast<char>(col.type()));
    put_u64(out, col.size());
    switch (col.type()) {
      case TypeId::kString: {
        const Dictionary& dict = col.dictionary();
        put_u32(out, static_cast<std::uint32_t>(dict.size()));
        for (std::int32_t i = 0; i < dict.size(); ++i)
          put_string(out, dict.at(i));
        const auto codes = col.codes();
        out.write(reinterpret_cast<const char*>(codes.data()),
                  static_cast<std::streamsize>(codes.size_bytes()));
        break;
      }
      case TypeId::kInt32: {
        const auto data = col.int32_data();
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size_bytes()));
        break;
      }
      case TypeId::kInt64: {
        const auto data = col.int64_data();
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size_bytes()));
        break;
      }
      case TypeId::kDouble: {
        const auto data = col.double_data();
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size_bytes()));
        break;
      }
    }
  }
  if (!out) throw Error("write failure while saving table");
}

Table load_table(std::istream& in) {
  if (get_u32(in) != kMagic) throw Error("not an eidb table file");
  const std::uint32_t version = get_u32(in);
  if (version != kVersion)
    throw Error("unsupported table file version " + std::to_string(version));
  const std::string table_name = get_string(in);
  const std::uint32_t columns = get_u32(in);
  if (columns > 4096) throw Error("implausible column count");

  // First pass: read columns into memory, building schema along the way.
  std::vector<ColumnDef> defs;
  std::vector<Column> cols;
  for (std::uint32_t c = 0; c < columns; ++c) {
    const std::string name = get_string(in);
    const int type_raw = in.get();
    if (type_raw < 0) throw Error("truncated table file (type)");
    const auto type = static_cast<TypeId>(type_raw);
    const std::uint64_t rows = get_u64(in);
    defs.push_back({name, type});
    switch (type) {
      case TypeId::kString: {
        const std::uint32_t dict_size = get_u32(in);
        std::vector<std::string> dict_entries;
        dict_entries.reserve(dict_size);
        for (std::uint32_t i = 0; i < dict_size; ++i)
          dict_entries.push_back(get_string(in));
        std::vector<std::int32_t> codes(rows);
        if (rows > 0 &&
            !in.read(reinterpret_cast<char*>(codes.data()),
                     static_cast<std::streamsize>(rows * 4)))
          throw Error("truncated table file (codes)");
        // Rebuild via the dictionary path: decode then re-encode keeps the
        // Column invariants without a bespoke constructor.
        std::vector<std::string> values;
        values.reserve(rows);
        for (const std::int32_t code : codes) {
          if (code < 0 || static_cast<std::uint32_t>(code) >= dict_size)
            throw Error("corrupt dictionary code");
          values.push_back(dict_entries[static_cast<std::size_t>(code)]);
        }
        cols.push_back(Column::from_strings(name, values));
        break;
      }
      case TypeId::kInt32: {
        std::vector<std::int32_t> data(rows);
        if (rows > 0 &&
            !in.read(reinterpret_cast<char*>(data.data()),
                     static_cast<std::streamsize>(rows * 4)))
          throw Error("truncated table file (int32)");
        cols.push_back(Column::from_int32(name, data));
        break;
      }
      case TypeId::kInt64: {
        std::vector<std::int64_t> data(rows);
        if (rows > 0 &&
            !in.read(reinterpret_cast<char*>(data.data()),
                     static_cast<std::streamsize>(rows * 8)))
          throw Error("truncated table file (int64)");
        cols.push_back(Column::from_int64(name, data));
        break;
      }
      case TypeId::kDouble: {
        std::vector<double> data(rows);
        if (rows > 0 &&
            !in.read(reinterpret_cast<char*>(data.data()),
                     static_cast<std::streamsize>(rows * 8)))
          throw Error("truncated table file (double)");
        cols.push_back(Column::from_double(name, data));
        break;
      }
      default:
        throw Error("corrupt column type");
    }
  }
  Table table(table_name, Schema(std::move(defs)));
  for (std::size_t c = 0; c < cols.size(); ++c)
    table.set_column(c, std::move(cols[c]));
  return table;
}

void save_table_file(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open for writing: " + path);
  save_table(table, out);
}

Table load_table_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path);
  return load_table(in);
}

}  // namespace eidb::storage
