#include "storage/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::storage {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    for (std::size_t j = i + 1; j < columns_.size(); ++j)
      if (columns_[i].name == columns_[j].name)
        throw Error("duplicate column name: " + columns_[i].name);
}

const ColumnDef& Schema::column(std::size_t i) const {
  EIDB_EXPECTS(i < columns_.size());
  return columns_[i];
}

std::size_t Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].name == name) return i;
  throw Error("no such column: " + name);
}

bool Schema::has_column(const std::string& name) const {
  return std::any_of(columns_.begin(), columns_.end(),
                     [&](const ColumnDef& c) { return c.name == name; });
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(schema_.column_count()) {}

Table::Table(Table&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      columns_(std::move(other.columns_)),
      rows_(other.rows_),
      partitions_(std::move(other.partitions_)),
      zone_cache_(std::move(other.zone_cache_)) {}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    schema_ = std::move(other.schema_);
    columns_ = std::move(other.columns_);
    rows_ = other.rows_;
    partitions_ = std::move(other.partitions_);
    zone_cache_ = std::move(other.zone_cache_);
  }
  return *this;
}

void Table::set_column(std::size_t index, Column column) {
  EIDB_EXPECTS(index < columns_.size());
  const ColumnDef& def = schema_.column(index);
  if (column.type() != def.type)
    throw Error("column type mismatch for " + def.name);
  const bool first = std::all_of(
      columns_.begin(), columns_.end(),
      [](const std::unique_ptr<Column>& c) { return c == nullptr; });
  if (!first && column.size() != rows_)
    throw Error("column length mismatch for " + def.name);
  rows_ = column.size();
  columns_[index] = std::make_unique<Column>(std::move(column));
  // Finalize statistics now (one pass at load) so concurrent queries read
  // a pre-computed cache and never pay a per-query min/max scan; then pick
  // and build the physical encoding from those statistics (respecting any
  // explicit set_encoding() override carried by the column).
  columns_[index]->finalize_stats();
  columns_[index]->auto_encode();
  // Double columns additionally get an ordered dictionary + int32 codes
  // (skipped for NaN) so joins and GROUP BY can run in the code domain.
  if (columns_[index]->type() == TypeId::kDouble)
    columns_[index]->build_double_dictionary();
}

void Table::recode(const std::string& name, Encoding encoding) {
  const std::size_t index = schema_.index_of(name);
  EIDB_EXPECTS(columns_[index] != nullptr);
  columns_[index]->set_encoding(encoding);
}

const Column& Table::column(std::size_t index) const {
  EIDB_EXPECTS(index < columns_.size());
  EIDB_EXPECTS(columns_[index] != nullptr);
  return *columns_[index];
}

const Column& Table::column(const std::string& name) const {
  return column(schema_.index_of(name));
}

std::size_t Table::byte_size() const {
  std::size_t total = 0;
  for (const auto& c : columns_)
    if (c) total += c->byte_size();
  return total;
}

bool Table::complete() const {
  return std::all_of(columns_.begin(), columns_.end(),
                     [](const std::unique_ptr<Column>& c) { return c != nullptr; });
}

void Table::build_partitions(const std::string& key_column,
                             std::size_t shard_count) {
  partitions_ = std::make_shared<const PartitionSet>(
      build_partition_set(*this, key_column, shard_count));
}

const ZoneMap& Table::zone_map(std::size_t column_index,
                               std::size_t block_rows) const {
  std::scoped_lock lock(zone_mu_);
  const auto key = std::make_pair(column_index, block_rows);
  const auto it = zone_cache_.find(key);
  if (it != zone_cache_.end()) return *it->second;
  const Column& col = column(column_index);
  std::unique_ptr<ZoneMap> zm;
  switch (col.type()) {
    case TypeId::kInt64:
      zm = std::make_unique<ZoneMap>(
          ZoneMap::build(col.int64_data(), block_rows));
      break;
    case TypeId::kInt32:
      zm = std::make_unique<ZoneMap>(
          ZoneMap::build32(col.int32_data(), block_rows));
      break;
    case TypeId::kString:
      zm = std::make_unique<ZoneMap>(ZoneMap::build32(col.codes(), block_rows));
      break;
    case TypeId::kDouble:
      throw Error("zone maps unsupported for double column " + col.name());
  }
  const ZoneMap& ref = *zm;
  zone_cache_[key] = std::move(zm);
  return ref;
}

Catalog::Catalog(Catalog&& other) noexcept
    : tables_(std::move(other.tables_)) {}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this != &other) tables_ = std::move(other.tables_);
  return *this;
}

Table& Catalog::add(Table table) {
  std::unique_lock lock(mu_);
  if (contains_locked(table.name()))
    throw Error("table exists: " + table.name());
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  return *tables_.back();
}

Table& Catalog::get(const std::string& name) {
  std::shared_lock lock(mu_);
  for (const auto& t : tables_)
    if (t->name() == name) return *t;
  throw Error("no such table: " + name);
}

const Table& Catalog::get(const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& t : tables_)
    if (t->name() == name) return *t;
  throw Error("no such table: " + name);
}

bool Catalog::contains_locked(const std::string& name) const {
  return std::any_of(tables_.begin(), tables_.end(),
                     [&](const auto& t) { return t->name() == name; });
}

bool Catalog::contains(const std::string& name) const {
  std::shared_lock lock(mu_);
  return contains_locked(name);
}

std::vector<std::string> Catalog::table_names() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

void Catalog::drop(const std::string& name) {
  std::unique_lock lock(mu_);
  const auto it = std::find_if(tables_.begin(), tables_.end(),
                               [&](const auto& t) { return t->name() == name; });
  if (it == tables_.end()) throw Error("no such table: " + name);
  tables_.erase(it);
}

}  // namespace eidb::storage
