#include "storage/reliability.hpp"

#include "util/assert.hpp"

namespace eidb::storage {

std::string reliability_name(Reliability r) {
  switch (r) {
    case Reliability::kCheap:
      return "cheap";
    case Reliability::kNodeDurable:
      return "node-durable";
    case Reliability::kReplicated:
      return "replicated";
    case Reliability::kGeoReplicated:
      return "geo-replicated";
  }
  return "invalid";
}

bool survives(Reliability r, Failure f) {
  switch (f) {
    case Failure::kProcessCrash:
      return r != Reliability::kCheap;
    case Failure::kNodeLoss:
      return r == Reliability::kReplicated ||
             r == Reliability::kGeoReplicated;
    case Failure::kSiteLoss:
      return r == Reliability::kGeoReplicated;
  }
  return false;
}

void ReliabilityManager::declare(const std::string& fragment, Reliability r) {
  fragments_[fragment].level = r;
}

Reliability ReliabilityManager::level_of(const std::string& fragment) const {
  const auto it = fragments_.find(fragment);
  if (it == fragments_.end()) throw Error("undeclared fragment: " + fragment);
  return it->second.level;
}

WriteCost ReliabilityManager::cost_of(Reliability r, double bytes) const {
  EIDB_EXPECTS(bytes >= 0);
  // Local DRAM store: bandwidth-limited write + device energy.
  WriteCost cost;
  cost.time_s = bytes / (machine_.dram_bandwidth_gbs * 1e9);
  cost.energy_j = bytes * machine_.dram_energy_nj_per_byte * 1e-9;
  switch (r) {
    case Reliability::kCheap:
      return cost;
    case Reliability::kNodeDurable:
      // NVM-class persistence: ~3x DRAM write energy, ~4x latency
      // (storage-class-memory figures from the paper's citation [19] era).
      cost.time_s *= 4;
      cost.energy_j *= 3;
      return cost;
    case Reliability::kReplicated: {
      cost.time_s += peer_.transfer_time_s(bytes);
      cost.energy_j += peer_.transfer_energy_j(bytes) +
                       bytes * machine_.dram_energy_nj_per_byte * 1e-9;
      return cost;
    }
    case Reliability::kGeoReplicated: {
      cost.time_s += remote_.transfer_time_s(bytes);
      cost.energy_j += remote_.transfer_energy_j(bytes) +
                       bytes * machine_.dram_energy_nj_per_byte * 1e-9;
      return cost;
    }
  }
  return cost;
}

WriteCost ReliabilityManager::write(const std::string& fragment,
                                    double bytes) {
  auto it = fragments_.find(fragment);
  if (it == fragments_.end()) throw Error("undeclared fragment: " + fragment);
  const WriteCost cost = cost_of(it->second.level, bytes);
  it->second.total.time_s += cost.time_s;
  it->second.total.energy_j += cost.energy_j;
  ++it->second.writes;
  return cost;
}

WriteCost ReliabilityManager::accumulated(const std::string& fragment) const {
  const auto it = fragments_.find(fragment);
  if (it == fragments_.end()) throw Error("undeclared fragment: " + fragment);
  return it->second.total;
}

std::vector<std::string> ReliabilityManager::surviving(Failure failure) const {
  std::vector<std::string> out;
  for (const auto& [name, frag] : fragments_)
    if (survives(frag.level, failure)) out.push_back(name);
  return out;
}

}  // namespace eidb::storage
