// Multi-level storage: hot (DRAM) vs. cold (disk-class) column placement.
//
// §IV.B of the paper: "Physical database design will distinguish between
// 'low-density' and 'high-density' data. High-density data ... will stay
// and [be] manipulated in main-memory. 'Low-density' data ... will be
// placed on traditional cheap disk devices" and is "queried by massive and
// parallel scans against large disk-farms".
//
// The cold tier is *simulated* (DESIGN.md §5): accessing a cold column
// charges the time and energy a disk-array read would cost, parameterized
// by `ColdTierSpec`. Placement decisions and their consequences — not disk
// firmware — are what experiment E6 measures.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace eidb::storage {

/// Where a column currently lives.
enum class Tier : std::uint8_t { kHot, kCold };

/// Cold-tier device model (disk array / archival store).
struct ColdTierSpec {
  std::string name = "disk-array";
  double bandwidth_gbs = 1.6;       ///< Aggregate sequential read bandwidth.
  double access_latency_s = 8e-3;   ///< Seek + queue per access burst.
  double energy_nj_per_byte = 6.0;  ///< Transfer energy.
  double active_power_w = 90.0;     ///< Array power while serving.
  double idle_power_w = 45.0;       ///< Array idle (spinning) power.

  /// Time to stream `bytes` from the cold tier.
  [[nodiscard]] double read_time_s(double bytes) const {
    return access_latency_s + bytes / (bandwidth_gbs * 1e9);
  }
  /// Energy attributable to streaming `bytes` (dynamic + active-idle delta).
  [[nodiscard]] double read_energy_j(double bytes) const {
    return bytes * energy_nj_per_byte * 1e-9 +
           (active_power_w - idle_power_w) * read_time_s(bytes);
  }
};

/// Tracks per-column placement and access statistics and computes the
/// simulated penalty of cold reads. Thread-safe: concurrent queries charge
/// accesses through one shared manager (Database::run's contract).
class TierManager {
 public:
  explicit TierManager(ColdTierSpec cold = {}) : cold_(cold) {}

  /// Declares a column with its physical size; default placement is hot.
  void register_column(const std::string& table, const std::string& column,
                       std::size_t bytes, Tier tier = Tier::kHot);

  void place(const std::string& table, const std::string& column, Tier tier);
  [[nodiscard]] Tier tier_of(const std::string& table,
                             const std::string& column) const;

  /// Records a full-column access; returns {extra_time_s, extra_energy_j}
  /// — zero when hot.
  struct Penalty {
    double time_s = 0;
    double energy_j = 0;
  };
  Penalty access(const std::string& table, const std::string& column);

  /// Bytes currently resident in DRAM / on the cold tier.
  [[nodiscard]] std::size_t hot_bytes() const;
  [[nodiscard]] std::size_t cold_bytes() const;

  /// Moves the coldest (least-accessed) columns out of DRAM until hot bytes
  /// fit in `budget_bytes`. Returns the number of demoted columns.
  std::size_t enforce_budget(std::size_t budget_bytes);

  [[nodiscard]] const ColdTierSpec& cold_spec() const { return cold_; }
  [[nodiscard]] std::uint64_t access_count(const std::string& table,
                                           const std::string& column) const;

 private:
  struct Entry {
    std::size_t bytes = 0;
    Tier tier = Tier::kHot;
    std::uint64_t accesses = 0;
  };
  static std::string key(const std::string& table, const std::string& column) {
    return table + "." + column;
  }
  /// Lookup helpers; caller holds mu_.
  [[nodiscard]] const Entry& entry(const std::string& table,
                                   const std::string& column) const;
  [[nodiscard]] std::size_t hot_bytes_locked() const;

  ColdTierSpec cold_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace eidb::storage
