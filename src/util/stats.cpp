#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace eidb {

void StreamingStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PercentileTracker::percentile(double p) {
  EIDB_EXPECTS(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank with linear interpolation.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace eidb
