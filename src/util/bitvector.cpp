#include "util/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace eidb {

void BitVector::clear_all() { std::fill(words_.begin(), words_.end(), 0); }

void BitVector::set_all() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  mask_tail();
}

void BitVector::resize(std::size_t size) {
  size_ = size;
  words_.resize((size + 63) / 64, 0);
  mask_tail();
}

std::size_t BitVector::count() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  EIDB_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  EIDB_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::and_not(const BitVector& other) {
  EIDB_EXPECTS(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    words_[i] &= ~other.words_[i];
  return *this;
}

void BitVector::flip_all() {
  for (std::uint64_t& w : words_) w = ~w;
  mask_tail();
}

std::vector<std::uint32_t> BitVector::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each_set([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
  return out;
}

void BitVector::mask_tail() {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

}  // namespace eidb
