// Zipfian-distributed key generation for skewed workloads.
//
// The paper (§IV.B) distinguishes "high-density" data (hot, point-accessed)
// from "low-density" data (cold, scanned); realistic skew between the two is
// produced with a Zipf distribution. Implementation: inverse-CDF sampling
// over a precomputed cumulative table for small domains, and the
// Gray et al. (SIGMOD'94) analytic approximation for large domains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace eidb {

class ZipfGenerator {
 public:
  /// Distribution over {0, ..., n-1} with exponent `theta` (>= 0).
  /// theta == 0 degenerates to uniform; theta ~ 0.99 is the YCSB default.
  ZipfGenerator(std::size_t n, double theta, std::uint64_t seed = 42);

  /// Draws one sample. Rank 0 is the most popular item.
  std::uint64_t next();

  [[nodiscard]] std::size_t domain() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::size_t n_;
  double theta_;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double zeta2_ = 0;
  Pcg32 rng_;

  static double zeta(std::size_t n, double theta);
};

}  // namespace eidb
