// Wall-clock stopwatch (measured mode) and virtual clock (simulated mode).
//
// The engine runs in one of two modes (see DESIGN.md §5): `Measured` uses
// real elapsed time on the host; `Simulated` advances a `VirtualClock`
// driven by the machine model, which is how multi-core scaling and DVFS
// experiments run on a single-core container.
#pragma once

#include <chrono>
#include <cstdint>

namespace eidb {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Discrete-event virtual time, in seconds. Monotone by construction.
class VirtualClock {
 public:
  [[nodiscard]] double now() const noexcept { return now_s_; }

  /// Advances time by `dt` seconds (dt >= 0).
  void advance(double dt) noexcept {
    if (dt > 0) now_s_ += dt;
  }
  /// Moves time forward to `t` if `t` is in the future.
  void advance_to(double t) noexcept {
    if (t > now_s_) now_s_ = t;
  }
  void reset() noexcept { now_s_ = 0; }

 private:
  double now_s_ = 0;
};

}  // namespace eidb
