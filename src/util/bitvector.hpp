// Dense bit vector used for selection bitmaps in the execution engine.
//
// Scan kernels produce one bit per tuple; downstream operators consume the
// bitmap either bit-by-bit or via `for_each_set` / `to_indices`, which use
// word-at-a-time iteration (count-trailing-zeros) so sparse bitmaps are
// cheap to walk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eidb {

class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all cleared.
  explicit BitVector(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Number of 64-bit words backing the vector.
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }
  [[nodiscard]] std::uint64_t* words() noexcept { return words_.data(); }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return words_.data();
  }

  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool value) {
    if (value)
      set(i);
    else
      reset(i);
  }

  /// Sets all bits to zero without changing the size.
  void clear_all();
  /// Sets all bits to one (tail bits beyond `size()` stay zero).
  void set_all();

  /// Resizes to `size` bits; newly added bits are cleared.
  void resize(std::size_t size);

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// In-place logical AND / OR / ANDNOT with another vector of equal size.
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  /// this &= ~other
  BitVector& and_not(const BitVector& other);
  /// Flips every bit (tail bits beyond `size()` stay zero).
  void flip_all();

  /// Calls `fn(index)` for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int tz = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(tz));
        bits &= bits - 1;
      }
    }
  }

  /// Returns the indices of all set bits.
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  void mask_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace eidb
