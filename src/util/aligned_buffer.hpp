// Cache-line / SIMD-aligned raw memory owned via RAII.
//
// Column payloads, hash tables and codec scratch space all live in
// `AlignedBuffer`s so that vector kernels can use aligned loads and so that
// buffers never straddle a cache line unintentionally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace eidb {

/// Default alignment: one x86 cache line; also satisfies AVX-512 loads.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, aligned, zero-initialised byte buffer (move-only).
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  /// Allocates `size` bytes aligned to `alignment` (a power of two).
  /// The storage is zero-initialised.
  explicit AlignedBuffer(std::size_t size,
                         std::size_t alignment = kCacheLineBytes);

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer();

  /// Number of usable bytes.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }

  /// Typed view of the buffer; `sizeof(T)` must divide `size()`.
  template <typename T>
  [[nodiscard]] std::span<T> as_span() noexcept {
    return {reinterpret_cast<T*>(data_), size_ / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> as_span() const noexcept {
    return {reinterpret_cast<const T*>(data_), size_ / sizeof(T)};
  }

  /// Grows the buffer to at least `new_size` bytes, preserving contents.
  /// New bytes are zero-initialised. No-op if already large enough.
  void grow(std::size_t new_size);

  void swap(AlignedBuffer& other) noexcept;

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = kCacheLineBytes;
};

}  // namespace eidb
