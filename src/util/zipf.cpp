#include "util/zipf.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace eidb {

ZipfGenerator::ZipfGenerator(std::size_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  EIDB_EXPECTS(n > 0);
  EIDB_EXPECTS(theta >= 0.0);
  if (theta_ == 0.0) return;  // uniform fast path
  zetan_ = zeta(n_, theta_);
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfGenerator::next() {
  if (theta_ == 0.0)
    return rng_.next_bounded(static_cast<std::uint32_t>(
        n_ > 0xffffffffULL ? 0xffffffffULL : n_));
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfGenerator::zeta(std::size_t n, double theta) {
  double sum = 0;
  for (std::size_t i = 1; i <= n; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace eidb
