#include "util/aligned_buffer.hpp"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "util/assert.hpp"

namespace eidb {

namespace {

std::size_t round_up(std::size_t value, std::size_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

}  // namespace

AlignedBuffer::AlignedBuffer(std::size_t size, std::size_t alignment)
    : size_(size), alignment_(alignment) {
  EIDB_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (size == 0) return;
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t alloc_size = round_up(size, alignment);
  data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, alloc_size));
  if (data_ == nullptr) throw std::bad_alloc{};
  std::memset(data_, 0, alloc_size);
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      alignment_(other.alignment_) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    alignment_ = other.alignment_;
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

void AlignedBuffer::grow(std::size_t new_size) {
  if (new_size <= size_) return;
  AlignedBuffer bigger(new_size, alignment_);
  if (size_ != 0) std::memcpy(bigger.data_, data_, size_);
  swap(bigger);
}

void AlignedBuffer::swap(AlignedBuffer& other) noexcept {
  std::swap(data_, other.data_);
  std::swap(size_, other.size_);
  std::swap(alignment_, other.alignment_);
}

}  // namespace eidb
