#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace eidb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  EIDB_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  EIDB_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

std::string TablePrinter::fmt_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace eidb
