// Streaming statistics and percentile tracking for experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace eidb {

/// Welford's online algorithm: numerically stable mean/variance without
/// storing samples.
class StreamingStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Stores all samples; exact percentiles on demand. Suitable for the sample
/// counts produced by benchmark harnesses (up to a few million).
class PercentileTracker {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Exact p-th percentile, p in [0, 100]. Sorts lazily.
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace eidb
