// Deterministic pseudo-random number generation for workload synthesis.
//
// PCG32 (O'Neill, "PCG: A Family of Simple Fast Space-Efficient Statistically
// Good Algorithms for Random Number Generation") — small state, excellent
// statistical quality, fully reproducible across platforms. All generators in
// eidb are explicitly seeded so experiments are repeatable.
#pragma once

#include <cstdint>
#include <limits>

namespace eidb {

class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1) | 1u) {
    next();
    state_ += seed;
    next();
  }

  /// Uniform 32-bit value.
  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint32_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform value in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t next_bounded(std::uint32_t bound) {
    if (bound == 0) return 0;
    std::uint64_t m = std::uint64_t{next()} * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = std::uint64_t{next()} * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform 64-bit value.
  std::uint64_t next64() {
    return (std::uint64_t{next()} << 32) | next();
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform value in [lo, hi] (inclusive).
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next64());  // full range
    // 64-bit Lemire-style rejection is overkill for workload synthesis;
    // widening multiply on the 32-bit generator covers spans < 2^32, and we
    // fall back to modulo for the rare larger span.
    if (span <= std::numeric_limits<std::uint32_t>::max())
      return lo + next_bounded(static_cast<std::uint32_t>(span));
    return lo + static_cast<std::int64_t>(next64() % span);
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace eidb
