// Console table / CSV emitter used by every benchmark harness so that the
// tables in EXPERIMENTS.md are regenerated with a uniform format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace eidb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with `precision` significant
  /// digits and strings verbatim.
  static std::string fmt(double value, int precision = 4);
  static std::string fmt_int(long long value);

  /// Renders an aligned, pipe-separated table.
  void print(std::ostream& os) const;
  /// Renders RFC-4180-style CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eidb
