#include "util/clock.hpp"

// Header-only types; this translation unit anchors the header in the build
// so include hygiene is compile-checked even before other users exist.
