// Contract-checking macros and the library-wide error type.
//
// Follows C++ Core Guidelines I.5/I.7 (state pre/postconditions) and
// I.10 (use exceptions to signal failure). Contract violations indicate
// programming errors and abort in debug builds; `eidb::Error` is thrown for
// recoverable runtime failures (bad input, resource exhaustion, missing
// hardware capabilities).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace eidb {

/// Library-wide exception for recoverable runtime failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "eidb: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace detail
}  // namespace eidb

/// Precondition check: argument/state requirements of a function.
#define EIDB_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::eidb::detail::contract_failure("precondition", #cond, __FILE__,    \
                                       __LINE__);                          \
  } while (0)

/// Postcondition check: guarantees established by a function.
#define EIDB_ENSURES(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::eidb::detail::contract_failure("postcondition", #cond, __FILE__,   \
                                       __LINE__);                          \
  } while (0)

/// Internal invariant check.
#define EIDB_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::eidb::detail::contract_failure("invariant", #cond, __FILE__,       \
                                       __LINE__);                          \
  } while (0)
