#include "hw/sync_sim.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace eidb::hw {

namespace {

/// Greedy deterministic list scheduling of identical (parallel, critical)
/// task pairs with a single FIFO lock. Returns {makespan, busy, spin}.
struct ScheduleOutcome {
  double makespan = 0;
  double busy = 0;
  double spin = 0;
};

ScheduleOutcome schedule(std::int64_t tasks, int cores, double parallel_s,
                         double critical_s) {
  // Min-heap of core-available times.
  std::priority_queue<double, std::vector<double>, std::greater<>> core_free;
  for (int c = 0; c < cores; ++c) core_free.push(0.0);
  double lock_free = 0.0;
  double makespan = 0.0;
  double busy = 0.0;
  double spin = 0.0;

  for (std::int64_t t = 0; t < tasks; ++t) {
    const double start = core_free.top();
    core_free.pop();
    const double parallel_done = start + parallel_s;
    double done = parallel_done;
    if (critical_s > 0) {
      const double cs_start = std::max(parallel_done, lock_free);
      done = cs_start + critical_s;
      lock_free = done;
      spin += cs_start - parallel_done;  // spinning while waiting for lock
      busy += parallel_s + critical_s;
    } else {
      busy += parallel_s;
    }
    core_free.push(done);
    makespan = std::max(makespan, done);
  }
  return {makespan, busy, spin};
}

}  // namespace

SyncResult simulate_sync(const SyncWorkload& wl, int cores,
                         const MachineSpec& machine, const DvfsState& state) {
  EIDB_EXPECTS(cores >= 1);
  EIDB_EXPECTS(wl.tasks >= 0);
  EIDB_EXPECTS(wl.parallel_s >= 0 && wl.critical_s >= 0 &&
               wl.final_serial_s >= 0);

  const ScheduleOutcome par =
      schedule(wl.tasks, cores, wl.parallel_s, wl.critical_s);
  const ScheduleOutcome seq =
      schedule(wl.tasks, 1, wl.parallel_s, wl.critical_s);

  SyncResult r;
  r.makespan_s = par.makespan + wl.final_serial_s;
  r.busy_s = par.busy + wl.final_serial_s;
  r.spin_s = par.spin;
  const double t1 = seq.makespan + wl.final_serial_s;
  r.speedup = r.makespan_s > 0 ? t1 / r.makespan_s : 0.0;

  // Energy: while the operation runs, all `cores` granted to it are either
  // working or spinning — both at active power (spinlocks do not yield).
  // Utilisation below 100% (cores idle after their last task) is billed at
  // core idle power.
  const double core_seconds = static_cast<double>(cores) * r.makespan_s;
  const double active_s = std::min(r.busy_s + r.spin_s, core_seconds);
  const double idle_s = core_seconds - active_s;
  const double per_core_active = state.active_power_w;
  r.energy_j = (machine.uncore_power_w + machine.dram_static_power_w) *
                   r.makespan_s +
               per_core_active * active_s +
               machine.core_idle_power_w * idle_s;
  return r;
}

}  // namespace eidb::hw
