#include "hw/dvfs.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::hw {

DvfsTable::DvfsTable(std::vector<DvfsState> states)
    : states_(std::move(states)) {
  EIDB_EXPECTS(!states_.empty());
  EIDB_EXPECTS(std::is_sorted(states_.begin(), states_.end(),
                              [](const DvfsState& a, const DvfsState& b) {
                                return a.freq_ghz < b.freq_ghz;
                              }));
}

const DvfsState& DvfsTable::at_least(double freq_ghz) const {
  for (const DvfsState& s : states_)
    if (s.freq_ghz >= freq_ghz) return s;
  return states_.back();
}

DvfsTable DvfsTable::make_cmos(int n, double f_min, double f_max, double v_min,
                               double v_max, double top_power_w,
                               double leak_w) {
  EIDB_EXPECTS(n >= 2);
  EIDB_EXPECTS(f_min > 0 && f_max > f_min);
  EIDB_EXPECTS(top_power_w > leak_w);
  // Effective switched capacitance from the top state:
  //   top_power = leak + c_eff * v_max^2 * f_max
  const double c_eff = (top_power_w - leak_w) / (v_max * v_max * f_max);
  std::vector<DvfsState> states;
  states.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    const double f = f_min + t * (f_max - f_min);
    const double v = v_min + t * (v_max - v_min);
    states.push_back({f, v, leak_w + c_eff * v * v * f});
  }
  return DvfsTable(std::move(states));
}

}  // namespace eidb::hw
