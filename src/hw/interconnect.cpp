#include "hw/interconnect.hpp"

namespace eidb::hw {

LinkSpec LinkSpec::qpi() {
  // 16 GB/s payload per direction; on-die SerDes energy ~ 1 nJ/byte end-to-
  // end; sub-microsecond latency.
  return {"qpi", 16.0, 1.0, 0.4e-6, 2.0};
}

LinkSpec LinkSpec::gbe() {
  // 1 GbE: 0.125 GB/s; NIC+switch path ~ 40 nJ/byte; ~50 us stack latency.
  return {"1gbe", 0.125, 40.0, 50e-6, 4.0};
}

LinkSpec LinkSpec::tengbe() {
  // 10 GbE: 1.25 GB/s; ~15 nJ/byte; kernel-bypass-class 10 us latency.
  return {"10gbe", 1.25, 15.0, 10e-6, 8.0};
}

LinkSpec LinkSpec::haec_optical() {
  // HAEC board-to-board optical: 12.5 GB/s, very low pJ/bit.
  return {"haec-optical", 12.5, 0.8, 1e-6, 3.0};
}

LinkSpec LinkSpec::haec_wireless() {
  // HAEC mm-wave wireless: ~ 6 GB/s aggregate, radio energy dominates.
  return {"haec-wireless", 6.0, 12.0, 2e-6, 5.0};
}

}  // namespace eidb::hw
