// Machine model: cores, P-states, C-states, DRAM — the simulated substrate.
//
// Substitution note (DESIGN.md §5): the paper assumes a lab server with RAPL
// counters and many cores. This model supplies (a) a power curve for the
// `ModelMeter` when RAPL is unavailable, and (b) a virtual multicore for the
// scaling/scheduling experiments on a single-core container. Default
// parameters are calibrated to published Sandy-Bridge-era server numbers
// (the hardware generation of the paper): idle system power ≈ 45% of peak,
// as reported by Tsirogiannis et al. (SIGMOD'10), the paper's citation [12].
#pragma once

#include <string>
#include <vector>

#include "hw/dvfs.hpp"

namespace eidb::hw {

/// A core/package sleep state.
struct CState {
  std::string name;
  double power_w = 0;        ///< Residual power while in this state (per core).
  double wake_latency_s = 0; ///< Time to return to C0.
};

/// Abstract work performed by an operator, convertible to time and energy
/// on any machine at any P-state (roofline-style).
struct Work {
  double cpu_cycles = 0;   ///< Core cycles of computation.
  double dram_bytes = 0;   ///< Bytes transferred to/from DRAM.
  double net_bytes = 0;    ///< Bytes shipped over cluster links (wire lane).

  Work& operator+=(const Work& o) {
    cpu_cycles += o.cpu_cycles;
    dram_bytes += o.dram_bytes;
    net_bytes += o.net_bytes;
    return *this;
  }
  friend Work operator+(Work a, const Work& b) { return a += b; }
  friend Work operator*(Work w, double k) {
    return {w.cpu_cycles * k, w.dram_bytes * k, w.net_bytes * k};
  }
};

/// Full machine description.
struct MachineSpec {
  std::string name;
  int cores = 1;
  DvfsTable dvfs;
  double core_idle_power_w = 0;    ///< C0 idle (halted, clock gated) per core.
  std::vector<CState> cstates;     ///< Deeper per-core sleep states.
  double uncore_power_w = 0;       ///< Package static power while not asleep.
  double package_sleep_power_w = 0;///< Package power in deepest sleep.
  double package_wake_latency_s = 0;
  double dram_bandwidth_gbs = 0;   ///< Sustained GB/s (all channels).
  double dram_energy_nj_per_byte = 0;
  double dram_static_power_w = 0;  ///< Refresh/background.

  /// Execution time of `work` on one core at P-state `s`, roofline model:
  /// max(compute time, memory time). `mem_share` scales the memory
  /// bandwidth available to this core (1.0 = whole machine).
  [[nodiscard]] double exec_time_s(const Work& work, const DvfsState& s,
                                   double mem_share = 1.0) const;

  /// Package power with `active` cores busy at P-state `s` and the remaining
  /// cores C0-idle.
  [[nodiscard]] double package_power_w(const DvfsState& s, int active) const;

  /// Power when the whole package sits in its deepest sleep state.
  [[nodiscard]] double sleep_power_w() const { return package_sleep_power_w; }

  /// Idle power with all cores halted but package awake (shallow idle).
  [[nodiscard]] double idle_power_w() const;

  /// Energy to execute `work` on `active` cores at P-state `s`, assuming
  /// perfect parallelism (work split evenly). Includes DRAM dynamic energy.
  [[nodiscard]] double energy_j(const Work& work, const DvfsState& s,
                                int active = 1) const;

  /// Incremental (above-idle) energy of one core busy at `s` for `busy_s`
  /// seconds performing `work`: the busy-power delta over core idle plus
  /// DRAM dynamic energy. The per-query attribution quantum shared by the
  /// stream policies (sched::PolicyEngine), per-tenant billing
  /// (core::Database ledger scopes), and the bench harnesses — one
  /// definition so they cannot drift apart.
  [[nodiscard]] double incremental_busy_energy_j(const Work& work,
                                                 const DvfsState& s,
                                                 double busy_s) const;

  /// Calibrated default: dual-socket-class Sandy Bridge era server
  /// (8 cores, 1.2–2.9 GHz, peak ≈ 150 W, idle ≈ 45% of peak).
  static MachineSpec server();
  /// Small mobile part for laptop-scale experiments.
  static MachineSpec laptop();
};

}  // namespace eidb::hw
