#include "hw/machine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::hw {

double MachineSpec::exec_time_s(const Work& work, const DvfsState& s,
                                double mem_share) const {
  EIDB_EXPECTS(mem_share > 0 && mem_share <= 1.0);
  const double compute_s = work.cpu_cycles / (s.freq_ghz * 1e9);
  const double mem_s =
      dram_bandwidth_gbs > 0
          ? work.dram_bytes / (dram_bandwidth_gbs * 1e9 * mem_share)
          : 0.0;
  return std::max(compute_s, mem_s);
}

double MachineSpec::package_power_w(const DvfsState& s, int active) const {
  EIDB_EXPECTS(active >= 0 && active <= cores);
  return uncore_power_w + dram_static_power_w +
         static_cast<double>(active) * s.active_power_w +
         static_cast<double>(cores - active) * core_idle_power_w;
}

double MachineSpec::idle_power_w() const {
  return uncore_power_w + dram_static_power_w +
         static_cast<double>(cores) * core_idle_power_w;
}

double MachineSpec::energy_j(const Work& work, const DvfsState& s,
                             int active) const {
  EIDB_EXPECTS(active >= 1 && active <= cores);
  const Work per_core{work.cpu_cycles / active, work.dram_bytes / active};
  const double t = exec_time_s(per_core, s, 1.0 / active);
  return package_power_w(s, active) * t +
         work.dram_bytes * dram_energy_nj_per_byte * 1e-9;
}

double MachineSpec::incremental_busy_energy_j(const Work& work,
                                              const DvfsState& s,
                                              double busy_s) const {
  return (s.active_power_w - core_idle_power_w) * busy_s +
         work.dram_bytes * dram_energy_nj_per_byte * 1e-9;
}

MachineSpec MachineSpec::server() {
  MachineSpec m;
  m.name = "sb-server-8c";
  m.cores = 8;
  // 1.2–2.9 GHz, 0.85–1.10 V; 11.5 W per fully-busy core at the top state of
  // which 1.5 W is leakage. Peak package: 8*11.5 + 35 uncore+dram ≈ 127 W.
  m.dvfs = DvfsTable::make_cmos(/*n=*/8, 1.2, 2.9, 0.85, 1.10,
                                /*top_power_w=*/11.5, /*leak_w=*/1.5);
  m.core_idle_power_w = 1.2;
  m.cstates = {{"C1", 0.6, 2e-6}, {"C3", 0.3, 20e-6}, {"C6", 0.05, 100e-6}};
  m.uncore_power_w = 22.0;
  m.dram_static_power_w = 13.0;
  m.package_sleep_power_w = 9.0;
  m.package_wake_latency_s = 300e-6;
  m.dram_bandwidth_gbs = 51.2;  // 4x DDR3-1600
  m.dram_energy_nj_per_byte = 0.5;
  // Idle/peak ratio: (22+13+8*1.2)/127 ≈ 0.35 package-only; with platform
  // overhead in the meter this lands near the ~45% system-level figure
  // reported in [12].
  return m;
}

MachineSpec MachineSpec::laptop() {
  MachineSpec m;
  m.name = "mobile-4c";
  m.cores = 4;
  m.dvfs = DvfsTable::make_cmos(/*n=*/6, 0.8, 2.4, 0.75, 1.05,
                                /*top_power_w=*/7.0, /*leak_w=*/0.8);
  m.core_idle_power_w = 0.5;
  m.cstates = {{"C1", 0.25, 2e-6}, {"C6", 0.02, 80e-6}};
  m.uncore_power_w = 6.0;
  m.dram_static_power_w = 2.5;
  m.package_sleep_power_w = 1.5;
  m.package_wake_latency_s = 200e-6;
  m.dram_bandwidth_gbs = 21.3;  // 2x DDR3-1333
  m.dram_energy_nj_per_byte = 0.6;
  return m;
}

}  // namespace eidb::hw
