// Interconnect link models for the distributed-exchange experiments.
//
// §IV of the paper: "an optimizer has to decide about sending intermediate
// data in a compressed or uncompressed format to other nodes or even sockets
// on the same board" — the decision depends on the link's bandwidth and
// energy-per-byte, both of which vary by orders of magnitude between a QPI
// hop and a datacenter Ethernet path. The paper also cites the HAEC project
// [10] (high-bandwidth short-range wireless and optical board-to-board
// links); presets for both are provided.
#pragma once

#include <string>

namespace eidb::hw {

/// A point-to-point link.
struct LinkSpec {
  std::string name;
  double bandwidth_gbs = 0;       ///< Payload bandwidth, GB/s.
  double energy_nj_per_byte = 0;  ///< Dynamic transfer energy, both ends.
  double latency_s = 0;           ///< One-way propagation + stack latency.
  double static_power_w = 0;      ///< Interface idle power (PHY/NIC), both ends.

  /// Time to move `bytes` over the link (bandwidth + one latency).
  [[nodiscard]] double transfer_time_s(double bytes) const {
    return latency_s + (bandwidth_gbs > 0 ? bytes / (bandwidth_gbs * 1e9) : 0);
  }
  /// Dynamic energy to move `bytes`.
  [[nodiscard]] double transfer_energy_j(double bytes) const {
    return bytes * energy_nj_per_byte * 1e-9;
  }

  /// Cross-socket QPI/UPI-class on-board link.
  static LinkSpec qpi();
  /// 1 Gb Ethernet (datacenter legacy tier).
  static LinkSpec gbe();
  /// 10 Gb Ethernet.
  static LinkSpec tengbe();
  /// HAEC-style short-range 100 Gb/s optical board-to-board link.
  static LinkSpec haec_optical();
  /// HAEC-style short-range mm-wave wireless inter-board link.
  static LinkSpec haec_wireless();
};

}  // namespace eidb::hw
