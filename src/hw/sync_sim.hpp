// Deterministic multicore contention simulator (experiment E4).
//
// Reproduces the Shore-MT observation the paper cites ([6]): "even read-only
// synchronization already shows a significant serial part dramatically
// reducing the speedup with a growing number of parallel operators".
//
// Model: a parallel aggregation is split into `tasks` morsels. Each morsel
// performs `parallel_s` seconds of independent work and then a critical
// section of `critical_s` seconds guarded by one global lock (FIFO grant
// order). Greedy list scheduling onto `cores` identical cores; waiting cores
// spin (burn active power), matching spinlock/latch behaviour in storage
// managers. An optional `final_serial_s` models a single-threaded merge/
// plan-finalization phase (Amdahl tail).
//
// Substitution note (DESIGN.md §5): the host container has one vCPU, so
// speedup-vs-cores curves are produced on this simulator instead of real
// threads; the real work-stealing pool in src/sched/ covers functional
// correctness of parallel execution.
#pragma once

#include <cstdint>

#include "hw/machine.hpp"

namespace eidb::hw {

/// Workload description for one simulated parallel operation.
struct SyncWorkload {
  std::int64_t tasks = 0;      ///< Number of morsels.
  double parallel_s = 0;       ///< Independent work per morsel (seconds).
  double critical_s = 0;       ///< Lock-protected work per morsel (seconds).
  double final_serial_s = 0;   ///< One-off serial tail (merge phase).
};

/// Simulation outcome.
struct SyncResult {
  double makespan_s = 0;   ///< Wall time to finish all tasks.
  double busy_s = 0;       ///< Sum over cores of busy (working) time.
  double spin_s = 0;       ///< Sum over cores of spin-wait time.
  double speedup = 0;      ///< T(1) / T(cores).
  double energy_j = 0;     ///< Package energy at the given P-state,
                           ///< spinning billed at active power.
};

/// Simulates `wl` on `cores` cores of `machine` at P-state `state`.
[[nodiscard]] SyncResult simulate_sync(const SyncWorkload& wl, int cores,
                                       const MachineSpec& machine,
                                       const DvfsState& state);

}  // namespace eidb::hw
