// Dynamic voltage/frequency scaling (DVFS) state tables.
//
// The paper (§IV "Energy efficiency") calls for balancing response time and
// throughput "under a given energy constraint ... on a case-by-case basis".
// The mechanism the optimizer controls is the per-core P-state: each state is
// a (frequency, voltage, power) triple. Power follows the classic CMOS model
//   P(f) = P_leak + C_eff * V(f)^2 * f
// so halving frequency saves superlinearly on dynamic power — the reason
// "pace" can beat "race-to-idle" when idle power is high, and lose when idle
// power is low (experiment E7).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eidb::hw {

/// One P-state of a core.
struct DvfsState {
  double freq_ghz = 0;        ///< Core clock.
  double voltage_v = 0;       ///< Supply voltage at this clock.
  double active_power_w = 0;  ///< Per-core power when 100% busy at this state.
};

/// Ordered set of P-states (ascending frequency).
class DvfsTable {
 public:
  DvfsTable() = default;
  explicit DvfsTable(std::vector<DvfsState> states);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const DvfsState& operator[](std::size_t i) const {
    return states_[i];
  }
  [[nodiscard]] const DvfsState& slowest() const { return states_.front(); }
  [[nodiscard]] const DvfsState& fastest() const { return states_.back(); }
  [[nodiscard]] const std::vector<DvfsState>& states() const noexcept {
    return states_;
  }

  /// Returns the slowest state whose frequency is >= `freq_ghz`
  /// (the fastest state if none qualifies).
  [[nodiscard]] const DvfsState& at_least(double freq_ghz) const;

  /// Builds a table of `n` states spanning [f_min, f_max] GHz with voltage
  /// scaling linearly from `v_min` to `v_max` and per-core power calibrated
  /// so that the top state dissipates `top_power_w` (of which `leak_w` is
  /// frequency-independent leakage).
  static DvfsTable make_cmos(int n, double f_min, double f_max, double v_min,
                             double v_max, double top_power_w, double leak_w);

 private:
  std::vector<DvfsState> states_;
};

}  // namespace eidb::hw
