// Co-processor (xPU) model for offload decisions (paper §III, §IV.B).
//
// "while init()- and finish()-phases of operators may run on a CPU side,
// the actual work()-part of an operator may be scheduled on a GPU
// platform." No real GPU code runs here (DESIGN.md §5): the model captures
// what the *decision* depends on — kernel speedup, PCIe-class transfer
// bandwidth/energy, launch latency, and device power — so the offload
// advisor can reproduce the break-even behaviour reported in the
// CPU-vs-GPU database literature the paper cites ([16]).
#pragma once

#include <string>

namespace eidb::hw {

struct AcceleratorSpec {
  std::string name;
  double speedup = 1;            ///< Kernel throughput vs. one CPU core.
  double link_bandwidth_gbs = 0; ///< Host<->device transfer bandwidth.
  double link_energy_nj_per_byte = 0;
  double launch_latency_s = 0;   ///< Kernel launch + driver overhead.
  double active_power_w = 0;     ///< Device busy power.
  double idle_power_w = 0;       ///< Device powered but idle.

  /// Time to run a kernel of `cpu_seconds` (single-core CPU time) on the
  /// device, moving `bytes_in` + `bytes_out` across the link.
  [[nodiscard]] double offload_time_s(double cpu_seconds, double bytes_in,
                                      double bytes_out) const {
    return launch_latency_s +
           (bytes_in + bytes_out) / (link_bandwidth_gbs * 1e9) +
           cpu_seconds / speedup;
  }
  /// Incremental device energy of that offload (above device idle).
  [[nodiscard]] double offload_energy_j(double cpu_seconds, double bytes_in,
                                        double bytes_out) const {
    return (bytes_in + bytes_out) * link_energy_nj_per_byte * 1e-9 +
           (active_power_w - idle_power_w) * (cpu_seconds / speedup);
  }

  /// 2012-era discrete GPU (Fermi/Kepler class) over PCIe 2.0.
  static AcceleratorSpec discrete_gpu() {
    return {"discrete-gpu", 12.0, 6.0, 4.0, 30e-6, 140.0, 25.0};
  }
  /// FPGA dataflow engine: lower speedup, far lower power.
  static AcceleratorSpec fpga() {
    return {"fpga", 5.0, 3.2, 2.5, 100e-6, 25.0, 8.0};
  }
  /// Near-memory compute point (bulk-bitwise PIM class, Perach et al. /
  /// Mutlu in PAPERS.md): modest kernel speedup, but its "link" is the
  /// DRAM row buffer, so per-byte traffic costs a fraction of a CPU-side
  /// DRAM read and device power is small. The shared-scan cost arm prices
  /// follower queries of a fused pass at this point — they re-touch bytes
  /// a first member already streamed.
  static AcceleratorSpec pim() {
    return {"pim", 2.0, 25.6, 0.15, 5e-6, 4.0, 1.0};
  }
};

}  // namespace eidb::hw
