#include "exec/vector_agg.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <type_traits>

#include "exec/hash_table.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

namespace {

// Serial dense slots come from the shared kDenseDomainLimit
// (exec/aggregate.hpp); per-worker dense accumulators cap lower.
constexpr std::int64_t kParallelDenseLimit = 1 << 16;

// ---------------------------------------------------------------------------
// Global (ungrouped) multi-aggregate.
// ---------------------------------------------------------------------------

/// Per-input running accumulator; integer inputs (int32/int64) promote into
/// the int64 fields, doubles into the double fields.
struct InputAcc {
  std::int64_t isum = 0;
  std::int64_t imin = std::numeric_limits<std::int64_t>::max();
  std::int64_t imax = std::numeric_limits<std::int64_t>::min();
  double dsum = 0;
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
};

/// Branch-free full-word accumulate: 64 consecutive rows, no bit tests —
/// the plain loops autovectorize (SIMD) on any target.
template <typename T, typename S>
void acc_word_full(const T* data, std::size_t base, S& sum, S& mn, S& mx) {
  S s = 0;
  T lo = data[base];
  T hi = data[base];
  for (std::size_t j = 0; j < 64; ++j) {
    const T v = data[base + j];
    s += static_cast<S>(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  sum += s;
  mn = std::min(mn, static_cast<S>(lo));
  mx = std::max(mx, static_cast<S>(hi));
}

/// Partial-word accumulate: walk set bits (count-trailing-zeros).
template <typename T, typename S>
void acc_word_bits(const T* data, std::size_t base, std::uint64_t bits,
                   S& sum, S& mn, S& mx) {
  while (bits != 0) {
    const auto j = static_cast<std::size_t>(__builtin_ctzll(bits));
    bits &= bits - 1;
    const S v = static_cast<S>(data[base + j]);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
}

/// Packed-input accumulate: full words unpack one 64-value block into a
/// stack buffer (the only memory touched is the packed image); partial
/// words random-access the surviving bits.
void acc_word_packed(const storage::PackedView& pv, InputAcc& acc,
                     std::size_t base, std::uint64_t bits, bool full) {
  if (full) {
    alignas(64) std::uint64_t buf[64];
    storage::bitunpack_block64(pv.words, pv.bits, base, buf);
    std::int64_t s = 0;
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();
    for (unsigned j = 0; j < 64; ++j) {
      const std::int64_t v =
          pv.reference + static_cast<std::int64_t>(buf[j]);
      s += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    acc.isum += s;
    acc.imin = std::min(acc.imin, lo);
    acc.imax = std::max(acc.imax, hi);
    return;
  }
  // Dense partial words amortize one block unpack; sparse ones pay the
  // cheaper per-bit random access.
  alignas(64) std::uint64_t buf[64];
  const bool unpack_block = __builtin_popcountll(bits) >= 16 &&
                            base + 64 <= pv.count;
  if (unpack_block) storage::bitunpack_block64(pv.words, pv.bits, base, buf);
  while (bits != 0) {
    const auto j = static_cast<std::size_t>(__builtin_ctzll(bits));
    bits &= bits - 1;
    const std::int64_t v =
        unpack_block ? pv.reference + static_cast<std::int64_t>(buf[j])
                     : pv.value_at(base + j);
    acc.isum += v;
    acc.imin = std::min(acc.imin, v);
    acc.imax = std::max(acc.imax, v);
  }
}

void acc_word(const AggInput& in, InputAcc& acc, std::size_t base,
              std::uint64_t bits, bool full) {
  switch (in.kind) {
    case AggInput::Kind::kInt32:
      if (full)
        acc_word_full(in.i32.data(), base, acc.isum, acc.imin, acc.imax);
      else
        acc_word_bits(in.i32.data(), base, bits, acc.isum, acc.imin, acc.imax);
      break;
    case AggInput::Kind::kInt64:
      if (full)
        acc_word_full(in.i64.data(), base, acc.isum, acc.imin, acc.imax);
      else
        acc_word_bits(in.i64.data(), base, bits, acc.isum, acc.imin, acc.imax);
      break;
    case AggInput::Kind::kDouble:
      if (full)
        acc_word_full(in.f64.data(), base, acc.dsum, acc.dmin, acc.dmax);
      else
        acc_word_bits(in.f64.data(), base, bits, acc.dsum, acc.dmin, acc.dmax);
      break;
    case AggInput::Kind::kPacked:
      acc_word_packed(in.packed, acc, base, bits, full);
      break;
  }
}

/// One pass over selection words [word_begin, word_end) accumulating every
/// input; returns the number of selected rows seen.
std::uint64_t multi_acc_range(std::span<const AggInput> inputs,
                              const BitVector& selection,
                              std::size_t word_begin, std::size_t word_end,
                              std::vector<InputAcc>& accs) {
  const std::uint64_t* words = selection.words();
  std::uint64_t count = 0;
  for (std::size_t w = word_begin; w < word_end; ++w) {
    const std::uint64_t bits = words[w];
    if (bits == 0) continue;
    count += static_cast<std::uint64_t>(__builtin_popcountll(bits));
    const bool full = bits == ~std::uint64_t{0};
    const std::size_t base = w * 64;
    for (std::size_t j = 0; j < inputs.size(); ++j)
      acc_word(inputs[j], accs[j], base, bits, full);
  }
  return count;
}

std::vector<AggOut> finalize_multi(std::span<const AggInput> inputs,
                                   const std::vector<InputAcc>& accs,
                                   std::uint64_t count) {
  std::vector<AggOut> outs(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    AggOut& o = outs[j];
    o.is_double = inputs[j].is_double();
    if (o.is_double) {
      o.d.count = count;
      o.d.sum = accs[j].dsum;
      o.d.min = count ? accs[j].dmin : 0;
      o.d.max = count ? accs[j].dmax : 0;
    } else {
      o.i.count = count;
      o.i.sum = accs[j].isum;
      o.i.min = count ? accs[j].imin : 0;
      o.i.max = count ? accs[j].imax : 0;
    }
  }
  return outs;
}

void check_input_sizes(std::span<const AggInput> inputs,
                       const BitVector& selection) {
  for (const AggInput& in : inputs)
    EIDB_EXPECTS(selection.size() >= in.size());
}

// ---------------------------------------------------------------------------
// Grouped multi-aggregate.
// ---------------------------------------------------------------------------

/// Slot-indexed accumulation arrays shared by the dense and hash paths:
/// one count per group plus sum/min/max per (input, group).
struct GroupAccum {
  struct IntArrays {
    std::vector<std::int64_t> sum, mn, mx;
  };
  struct DblArrays {
    std::vector<double> sum, mn, mx;
  };
  std::vector<std::uint64_t> counts;
  std::vector<IntArrays> iarr;  // indexed by input; empty for double inputs
  std::vector<DblArrays> darr;  // indexed by input; empty for int inputs

  void init(std::span<const AggInput> inputs) {
    iarr.resize(inputs.size());
    darr.resize(inputs.size());
  }

  /// Grows every array to `slots`, default-initializing new groups.
  /// Capacity grows geometrically so one-slot-at-a-time growth (hash path)
  /// stays amortized O(1).
  void ensure(std::size_t slots, std::span<const AggInput> inputs) {
    if (counts.size() >= slots) return;
    if (counts.capacity() < slots) {
      const std::size_t cap = std::max(slots, counts.capacity() * 2 + 16);
      counts.reserve(cap);
      for (std::size_t j = 0; j < inputs.size(); ++j) {
        if (inputs[j].is_double()) {
          darr[j].sum.reserve(cap);
          darr[j].mn.reserve(cap);
          darr[j].mx.reserve(cap);
        } else {
          iarr[j].sum.reserve(cap);
          iarr[j].mn.reserve(cap);
          iarr[j].mx.reserve(cap);
        }
      }
    }
    counts.resize(slots, 0);
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (inputs[j].is_double()) {
        darr[j].sum.resize(slots, 0);
        darr[j].mn.resize(slots, std::numeric_limits<double>::infinity());
        darr[j].mx.resize(slots, -std::numeric_limits<double>::infinity());
      } else {
        iarr[j].sum.resize(slots, 0);
        iarr[j].mn.resize(slots, std::numeric_limits<std::int64_t>::max());
        iarr[j].mx.resize(slots, std::numeric_limits<std::int64_t>::min());
      }
    }
  }
};

/// Accumulates one extracted block (up to 64 rows) for one input.
template <typename T, typename A>
void acc_block_grouped(const T* data, const std::uint32_t* idx,
                       const std::uint32_t* slot, std::size_t k,
                       A& arrays) {
  using S = std::decay_t<decltype(arrays.sum[0])>;
  for (std::size_t e = 0; e < k; ++e) {
    const S v = static_cast<S>(data[idx[e]]);
    const std::uint32_t s = slot[e];
    arrays.sum[s] += v;
    arrays.mn[s] = std::min(arrays.mn[s], v);
    arrays.mx[s] = std::max(arrays.mx[s], v);
  }
}

void acc_block_grouped_packed(const storage::PackedView& pv,
                              const std::uint32_t* idx,
                              const std::uint32_t* slot, std::size_t k,
                              GroupAccum::IntArrays& arrays) {
  // All idx entries of one call lie in a single 64-value block (they were
  // extracted from one selection word): dense blocks amortize one
  // vectorizable unpack, sparse ones use per-bit random access — the
  // grouped mirror of acc_word_packed.
  const std::size_t base = k > 0 ? (idx[0] / 64) * 64 : 0;
  alignas(64) std::uint64_t buf[64];
  const bool unpack_block = k >= 16 && base + 64 <= pv.count;
  if (unpack_block) storage::bitunpack_block64(pv.words, pv.bits, base, buf);
  for (std::size_t e = 0; e < k; ++e) {
    const std::int64_t v =
        unpack_block
            ? pv.reference + static_cast<std::int64_t>(buf[idx[e] - base])
            : pv.value_at(idx[e]);
    const std::uint32_t s = slot[e];
    arrays.sum[s] += v;
    arrays.mn[s] = std::min(arrays.mn[s], v);
    arrays.mx[s] = std::max(arrays.mx[s], v);
  }
}

/// Readonly key accessor over a bit-packed column image, shaped like the
/// span the templated grouped kernels expect (operator[] + size()).
struct PackedKeys {
  storage::PackedView view;
  [[nodiscard]] std::int64_t operator[](std::size_t i) const {
    return view.value_at(i);
  }
  [[nodiscard]] std::size_t size() const { return view.count; }
};

/// Core grouped pass, templated over key width. `resolve` maps a key to a
/// dense slot id (identity-offset for the dense strategy, hash lookup
/// otherwise). Processes selection words [word_begin, word_end).
template <typename Keys, typename Resolve>
void grouped_acc_range(const Keys& keys,
                       std::span<const AggInput> inputs,
                       const BitVector& selection, std::size_t word_begin,
                       std::size_t word_end, Resolve&& resolve,
                       GroupAccum& acc) {
  const std::uint64_t* words = selection.words();
  std::uint32_t idx[64];
  std::uint32_t slot[64];
  for (std::size_t w = word_begin; w < word_end; ++w) {
    std::uint64_t bits = words[w];
    if (bits == 0) continue;  // dead block: 64 rows skipped outright
    const std::size_t base = w * 64;
    std::size_t k = 0;
    while (bits != 0) {
      const auto j = static_cast<std::size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      idx[k++] = static_cast<std::uint32_t>(base + j);
    }
    // Key column touched once per row: slots computed for the whole block,
    // then every input accumulates column-at-a-time over the block.
    for (std::size_t e = 0; e < k; ++e)
      slot[e] = resolve(static_cast<std::int64_t>(keys[idx[e]]));
    for (std::size_t e = 0; e < k; ++e) ++acc.counts[slot[e]];
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      const AggInput& in = inputs[j];
      switch (in.kind) {
        case AggInput::Kind::kInt32:
          acc_block_grouped(in.i32.data(), idx, slot, k, acc.iarr[j]);
          break;
        case AggInput::Kind::kInt64:
          acc_block_grouped(in.i64.data(), idx, slot, k, acc.iarr[j]);
          break;
        case AggInput::Kind::kDouble:
          acc_block_grouped(in.f64.data(), idx, slot, k, acc.darr[j]);
          break;
        case AggInput::Kind::kPacked:
          acc_block_grouped_packed(in.packed, idx, slot, k, acc.iarr[j]);
          break;
      }
    }
  }
}

/// Key min/max over the selected rows (fallback when the caller has no
/// cached statistics).
template <typename Keys>
KeyRange selected_key_range(const Keys& keys, const BitVector& selection) {
  KeyRange r;
  std::int64_t mn = std::numeric_limits<std::int64_t>::max();
  std::int64_t mx = std::numeric_limits<std::int64_t>::min();
  bool any = false;
  selection.for_each_set([&](std::size_t i) {
    if (i >= keys.size()) return;
    any = true;
    mn = std::min<std::int64_t>(mn, keys[i]);
    mx = std::max<std::int64_t>(mx, keys[i]);
  });
  if (any) {
    r.known = true;
    r.min = mn;
    r.max = mx;
  }
  return r;
}

/// Emits groups `order[i] -> slot` as sorted GroupedAggs.
GroupedAggs emit_groups(std::span<const AggInput> inputs,
                        const GroupAccum& acc,
                        const std::vector<std::pair<std::int64_t,
                                                    std::uint32_t>>& order) {
  GroupedAggs out;
  const std::size_t g = order.size();
  out.keys.reserve(g);
  out.counts.reserve(g);
  out.iout.resize(inputs.size());
  out.dout.resize(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    if (inputs[j].is_double())
      out.dout[j].reserve(g);
    else
      out.iout[j].reserve(g);
  }
  for (const auto& [key, slot] : order) {
    out.keys.push_back(key);
    const std::uint64_t count = acc.counts[slot];
    out.counts.push_back(count);
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (inputs[j].is_double()) {
        const auto& a = acc.darr[j];
        out.dout[j].push_back({count, a.sum[slot], a.mn[slot], a.mx[slot]});
      } else {
        const auto& a = acc.iarr[j];
        out.iout[j].push_back({count, a.sum[slot], a.mn[slot], a.mx[slot]});
      }
    }
  }
  return out;
}

template <typename Keys>
GroupedAggs grouped_impl(const Keys& keys,
                         std::span<const AggInput> inputs,
                         const BitVector& selection, KeyRange range,
                         GroupStrategy strategy, std::size_t word_begin,
                         std::size_t word_end) {
  if (!range.known) range = selected_key_range(keys, selection);
  if (!range.known) return {};  // empty selection

  // Unsigned width survives hash-like int64 keys whose spread overflows
  // a signed domain computation (huge widths simply fail the dense test).
  const std::uint64_t width = static_cast<std::uint64_t>(range.max) -
                              static_cast<std::uint64_t>(range.min);
  const bool dense_ok = width < static_cast<std::uint64_t>(kDenseDomainLimit);
  GroupStrategy chosen = strategy;
  if (chosen == GroupStrategy::kAuto)
    chosen = dense_ok ? GroupStrategy::kDenseArray : GroupStrategy::kHash;
  if (chosen == GroupStrategy::kDenseArray && !dense_ok)
    throw Error("dense group-by domain too large");

  GroupAccum acc;
  acc.init(inputs);
  std::vector<std::pair<std::int64_t, std::uint32_t>> order;

  if (chosen == GroupStrategy::kDenseArray) {
    const auto domain = static_cast<std::size_t>(width) + 1;
    acc.ensure(domain, inputs);
    const std::int64_t kmin = range.min;
    grouped_acc_range(keys, inputs, selection, word_begin, word_end,
                      [kmin](std::int64_t key) {
                        return static_cast<std::uint32_t>(key - kmin);
                      },
                      acc);
    // Slot order == key order for the dense layout.
    for (std::size_t s = 0; s < static_cast<std::size_t>(domain); ++s)
      if (acc.counts[s] != 0)
        order.emplace_back(kmin + static_cast<std::int64_t>(s),
                           static_cast<std::uint32_t>(s));
  } else {
    // Size the table from the cached distinct estimate when the caller
    // has one; otherwise popcount only this call's word range (the
    // parallel path invokes grouped_impl once per chunk).
    std::size_t sized = range.distinct_hint;
    if (sized == 0) {
      const std::uint64_t* words = selection.words();
      std::uint64_t local = 0;
      for (std::size_t w = word_begin; w < word_end; ++w)
        local += static_cast<std::uint64_t>(__builtin_popcountll(words[w]));
      sized = static_cast<std::size_t>(local) / 8 + 16;
    }
    HashTable<std::uint32_t> slots(sized);
    std::uint32_t next = 0;
    grouped_acc_range(
        keys, inputs, selection, word_begin, word_end,
        [&](std::int64_t key) {
          std::uint32_t& s = slots.get_or_insert(
              key, [&](std::uint32_t& fresh) { fresh = next++; });
          acc.ensure(next, inputs);
          return s;
        },
        acc);
    order.reserve(next);
    slots.for_each([&](std::int64_t key, const std::uint32_t& s) {
      order.emplace_back(key, s);
    });
    std::sort(order.begin(), order.end());
  }
  return emit_groups(inputs, acc, order);
}

/// Merges partial GroupedAggs (parallel workers) by key.
void merge_grouped(std::span<const AggInput> inputs, const GroupedAggs& part,
                   HashTable<std::uint32_t>& slots, std::uint32_t& next,
                   GroupAccum& acc) {
  for (std::size_t g = 0; g < part.keys.size(); ++g) {
    const std::int64_t key = part.keys[g];
    const std::uint32_t s = slots.get_or_insert(
        key, [&](std::uint32_t& f) { f = next++; });
    acc.ensure(next, inputs);
    acc.counts[s] += part.counts[g];
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (inputs[j].is_double()) {
        const AggResultD& r = part.dout[j][g];
        auto& a = acc.darr[j];
        a.sum[s] += r.sum;
        a.mn[s] = std::min(a.mn[s], r.min);
        a.mx[s] = std::max(a.mx[s], r.max);
      } else {
        const AggResult& r = part.iout[j][g];
        auto& a = acc.iarr[j];
        a.sum[s] += r.sum;
        a.mn[s] = std::min(a.mn[s], r.min);
        a.mx[s] = std::max(a.mx[s], r.max);
      }
    }
  }
}

template <typename Keys>
GroupedAggs parallel_grouped_impl(sched::ThreadPool& pool,
                                  const Keys& keys,
                                  std::span<const AggInput> inputs,
                                  const BitVector& selection, KeyRange range,
                                  std::size_t morsel_rows) {
  EIDB_EXPECTS(selection.size() >= keys.size());
  check_input_sizes(inputs, selection);
  if (!range.known) range = selected_key_range(keys, selection);
  if (!range.known) return {};

  // Per-worker dense accumulators only for modest domains; everything
  // larger hashes explicitly — per-chunk dense arrays over a big domain
  // would pay O(domain) init and emit per chunk.
  const std::uint64_t width = static_cast<std::uint64_t>(range.max) -
                              static_cast<std::uint64_t>(range.min);
  const GroupStrategy strategy =
      width < static_cast<std::uint64_t>(kParallelDenseLimit)
          ? GroupStrategy::kDenseArray
          : GroupStrategy::kHash;

  const std::size_t n = keys.size();
  // Chunks are at least a morsel but no more than ~4 per worker, so the
  // per-chunk dense-array setup amortizes over enough rows.
  const std::size_t chunks = pool.thread_count() * 4;
  const std::size_t per_worker = (n + chunks - 1) / chunks;
  const std::size_t grain =
      std::max<std::size_t>(64, std::max(morsel_rows, per_worker) / 64 * 64);
  const std::size_t total_words = (n + 63) / 64;

  std::mutex merge_mu;
  GroupAccum merged;
  merged.init(inputs);
  HashTable<std::uint32_t> slots;
  std::uint32_t next = 0;

  pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    // Morsels are grain-aligned (multiple of 64): whole selection words.
    const std::size_t wb = begin / 64;
    const std::size_t we = std::min(total_words, (end + 63) / 64);
    GroupedAggs part =
        grouped_impl(keys, inputs, selection, range, strategy, wb, we);
    if (part.keys.empty()) return;
    std::scoped_lock lock(merge_mu);
    merge_grouped(inputs, part, slots, next, merged);
  });

  std::vector<std::pair<std::int64_t, std::uint32_t>> order;
  order.reserve(next);
  slots.for_each([&](std::int64_t key, const std::uint32_t& s) {
    order.emplace_back(key, s);
  });
  std::sort(order.begin(), order.end());
  return emit_groups(inputs, merged, order);
}

}  // namespace

std::vector<AggOut> multi_aggregate(std::span<const AggInput> inputs,
                                    const BitVector& selection) {
  check_input_sizes(inputs, selection);
  std::vector<InputAcc> accs(inputs.size());
  const std::uint64_t count =
      multi_acc_range(inputs, selection, 0, selection.word_count(), accs);
  return finalize_multi(inputs, accs, count);
}

std::vector<AggOut> parallel_multi_aggregate(sched::ThreadPool& pool,
                                             std::span<const AggInput> inputs,
                                             const BitVector& selection,
                                             std::size_t morsel_rows) {
  check_input_sizes(inputs, selection);
  const std::size_t n = selection.size();
  const std::size_t grain = std::max<std::size_t>(64, morsel_rows / 64 * 64);
  const std::size_t total_words = selection.word_count();

  std::mutex merge_mu;
  std::vector<InputAcc> accs(inputs.size());
  std::uint64_t count = 0;

  pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    const std::size_t wb = begin / 64;
    const std::size_t we = std::min(total_words, (end + 63) / 64);
    std::vector<InputAcc> local(inputs.size());
    const std::uint64_t c = multi_acc_range(inputs, selection, wb, we, local);
    if (c == 0) return;
    std::scoped_lock lock(merge_mu);
    count += c;
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      accs[j].isum += local[j].isum;
      accs[j].imin = std::min(accs[j].imin, local[j].imin);
      accs[j].imax = std::max(accs[j].imax, local[j].imax);
      accs[j].dsum += local[j].dsum;
      accs[j].dmin = std::min(accs[j].dmin, local[j].dmin);
      accs[j].dmax = std::max(accs[j].dmax, local[j].dmax);
    }
  });
  return finalize_multi(inputs, accs, count);
}

GroupedAggs grouped_multi_aggregate(std::span<const std::int64_t> keys,
                                    std::span<const AggInput> inputs,
                                    const BitVector& selection, KeyRange range,
                                    GroupStrategy strategy) {
  EIDB_EXPECTS(selection.size() >= keys.size());
  check_input_sizes(inputs, selection);
  return grouped_impl(keys, inputs, selection, range, strategy, 0,
                      (keys.size() + 63) / 64);
}

GroupedAggs grouped_multi_aggregate32(std::span<const std::int32_t> keys,
                                      std::span<const AggInput> inputs,
                                      const BitVector& selection,
                                      KeyRange range, GroupStrategy strategy) {
  EIDB_EXPECTS(selection.size() >= keys.size());
  check_input_sizes(inputs, selection);
  return grouped_impl(keys, inputs, selection, range, strategy, 0,
                      (keys.size() + 63) / 64);
}

GroupedAggs parallel_grouped_multi_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> keys,
    std::span<const AggInput> inputs, const BitVector& selection,
    KeyRange range, std::size_t morsel_rows) {
  return parallel_grouped_impl(pool, keys, inputs, selection, range,
                               morsel_rows);
}

GroupedAggs parallel_grouped_multi_aggregate32(
    sched::ThreadPool& pool, std::span<const std::int32_t> keys,
    std::span<const AggInput> inputs, const BitVector& selection,
    KeyRange range, std::size_t morsel_rows) {
  return parallel_grouped_impl(pool, keys, inputs, selection, range,
                               morsel_rows);
}

GroupedAggs grouped_multi_aggregate_packed(const storage::PackedView& keys,
                                           std::span<const AggInput> inputs,
                                           const BitVector& selection,
                                           KeyRange range,
                                           GroupStrategy strategy) {
  EIDB_EXPECTS(selection.size() >= keys.count);
  check_input_sizes(inputs, selection);
  return grouped_impl(PackedKeys{keys}, inputs, selection, range, strategy,
                      0, (keys.count + 63) / 64);
}

GroupedAggs parallel_grouped_multi_aggregate_packed(
    sched::ThreadPool& pool, const storage::PackedView& keys,
    std::span<const AggInput> inputs, const BitVector& selection,
    KeyRange range, std::size_t morsel_rows) {
  return parallel_grouped_impl(pool, PackedKeys{keys}, inputs, selection,
                               range, morsel_rows);
}

// ---------------------------------------------------------------------------
// JoinAggregator: gather-based sink for the late-materialized join pipeline.
// ---------------------------------------------------------------------------

namespace {

/// Internal sub-block size: key/slot scratch stays on the stack.
constexpr std::size_t kGatherBlock = 1024;

std::int64_t gather_int(const AggInput& in, std::uint32_t row) {
  switch (in.kind) {
    case AggInput::Kind::kInt32:
      return in.i32[row];
    case AggInput::Kind::kInt64:
      return in.i64[row];
    case AggInput::Kind::kPacked:
      return in.packed.value_at(row);
    case AggInput::Kind::kDouble:
      break;
  }
  EIDB_ASSERT(false);
  return 0;
}

}  // namespace

JoinAggregator::JoinAggregator(std::vector<Input> inputs)
    : inputs_(std::move(inputs)) {
  iacc_.resize(inputs_.size());
  dacc_.resize(inputs_.size());
  dense_ = true;  // one implicit slot
  ensure(1);
}

JoinAggregator::JoinAggregator(std::vector<Input> inputs,
                               std::vector<KeyPart> key, KeyRange range)
    : inputs_(std::move(inputs)), key_(std::move(key)), grouped_(true) {
  EIDB_EXPECTS(!key_.empty());
  for (const KeyPart& part : key_)
    EIDB_EXPECTS(part.column.kind != AggInput::Kind::kDouble);
  iacc_.resize(inputs_.size());
  dacc_.resize(inputs_.size());
  const std::uint64_t width = static_cast<std::uint64_t>(range.max) -
                              static_cast<std::uint64_t>(range.min);
  dense_ = range.known &&
           width < static_cast<std::uint64_t>(kDenseDomainLimit);
  if (dense_) {
    dense_min_ = range.min;
    ensure(static_cast<std::size_t>(width) + 1);
  }
}

void JoinAggregator::ensure(std::size_t slots) {
  if (counts_.size() >= slots) return;
  counts_.resize(slots, 0);
  for (std::size_t j = 0; j < inputs_.size(); ++j) {
    if (inputs_[j].column.is_double()) {
      dacc_[j].sum.resize(slots, 0);
      dacc_[j].mn.resize(slots, std::numeric_limits<double>::infinity());
      dacc_[j].mx.resize(slots, -std::numeric_limits<double>::infinity());
    } else {
      iacc_[j].sum.resize(slots, 0);
      iacc_[j].mn.resize(slots, std::numeric_limits<std::int64_t>::max());
      iacc_[j].mx.resize(slots, std::numeric_limits<std::int64_t>::min());
    }
  }
}

std::uint32_t JoinAggregator::resolve(std::int64_t key) {
  if (dense_) return static_cast<std::uint32_t>(key - dense_min_);
  const std::uint32_t s = slots_.get_or_insert(key, [&](std::uint32_t& f) {
    f = next_++;
    slot_keys_.push_back(key);
  });
  ensure(next_);
  return s;
}

void JoinAggregator::add_block(const std::uint32_t* build_rows,
                               const std::uint32_t* probe_rows,
                               std::size_t count) {
  const std::uint32_t* rows[2] = {probe_rows, build_rows};
  add_block(rows, count);
}

void JoinAggregator::add_block(const std::uint32_t* const* side_rows,
                               std::size_t count) {
  pairs_ += count;
  std::int64_t keys[kGatherBlock];
  std::uint32_t slot[kGatherBlock];
  for (std::size_t at = 0; at < count; at += kGatherBlock) {
    const std::size_t n = std::min(kGatherBlock, count - at);
    if (!grouped_) {
      for (std::size_t e = 0; e < n; ++e) slot[e] = 0;
      counts_[0] += n;
    } else {
      // Key column(s) touched once per match: the composite key is
      // synthesized per block, then every input gathers column-at-a-time.
      for (std::size_t e = 0; e < n; ++e) keys[e] = 0;
      for (const KeyPart& part : key_) {
        const std::uint32_t* rows = side_rows[part.side] + at;
        for (std::size_t e = 0; e < n; ++e)
          keys[e] +=
              (gather_int(part.column, rows[e]) - part.offset) * part.stride;
      }
      for (std::size_t e = 0; e < n; ++e) slot[e] = resolve(keys[e]);
      for (std::size_t e = 0; e < n; ++e) ++counts_[slot[e]];
    }
    for (std::size_t j = 0; j < inputs_.size(); ++j) {
      const Input& in = inputs_[j];
      const std::uint32_t* rows = side_rows[in.side] + at;
      if (in.column.is_double()) {
        const auto data = in.column.f64;
        DblAcc& a = dacc_[j];
        for (std::size_t e = 0; e < n; ++e) {
          const double v = data[rows[e]];
          const std::uint32_t s = slot[e];
          a.sum[s] += v;
          a.mn[s] = std::min(a.mn[s], v);
          a.mx[s] = std::max(a.mx[s], v);
        }
      } else {
        IntAcc& a = iacc_[j];
        for (std::size_t e = 0; e < n; ++e) {
          const std::int64_t v = gather_int(in.column, rows[e]);
          const std::uint32_t s = slot[e];
          a.sum[s] += v;
          a.mn[s] = std::min(a.mn[s], v);
          a.mx[s] = std::max(a.mx[s], v);
        }
      }
    }
  }
}

void JoinAggregator::merge_from(const JoinAggregator& other) {
  pairs_ += other.pairs_;
  const auto merge_slot = [&](std::uint32_t mine, std::size_t theirs) {
    counts_[mine] += other.counts_[theirs];
    for (std::size_t j = 0; j < inputs_.size(); ++j) {
      if (inputs_[j].column.is_double()) {
        DblAcc& a = dacc_[j];
        const DblAcc& o = other.dacc_[j];
        a.sum[mine] += o.sum[theirs];
        a.mn[mine] = std::min(a.mn[mine], o.mn[theirs]);
        a.mx[mine] = std::max(a.mx[mine], o.mx[theirs]);
      } else {
        IntAcc& a = iacc_[j];
        const IntAcc& o = other.iacc_[j];
        a.sum[mine] += o.sum[theirs];
        a.mn[mine] = std::min(a.mn[mine], o.mn[theirs]);
        a.mx[mine] = std::max(a.mx[mine], o.mx[theirs]);
      }
    }
  };
  if (dense_) {
    // Same slot layout (shared dense_min_): merge elementwise.
    ensure(other.counts_.size());
    for (std::size_t s = 0; s < other.counts_.size(); ++s) {
      if (other.counts_[s] != 0) merge_slot(static_cast<std::uint32_t>(s), s);
    }
  } else {
    for (std::size_t s = 0; s < other.next_; ++s)
      merge_slot(resolve(other.slot_keys_[s]), s);
  }
}

GroupedAggs JoinAggregator::finish() const {
  std::vector<std::pair<std::int64_t, std::uint32_t>> order;
  if (!grouped_) {
    order.emplace_back(0, 0);
  } else if (dense_) {
    for (std::size_t s = 0; s < counts_.size(); ++s)
      if (counts_[s] != 0)
        order.emplace_back(dense_min_ + static_cast<std::int64_t>(s),
                           static_cast<std::uint32_t>(s));
  } else {
    order.reserve(next_);
    for (std::size_t s = 0; s < next_; ++s)
      order.emplace_back(slot_keys_[s], static_cast<std::uint32_t>(s));
    std::sort(order.begin(), order.end());
  }

  GroupedAggs out;
  out.keys.reserve(order.size());
  out.counts.reserve(order.size());
  out.iout.resize(inputs_.size());
  out.dout.resize(inputs_.size());
  for (const auto& [key, slot] : order) {
    out.keys.push_back(key);
    const std::uint64_t count = counts_[slot];
    out.counts.push_back(count);
    for (std::size_t j = 0; j < inputs_.size(); ++j) {
      if (inputs_[j].column.is_double()) {
        const DblAcc& a = dacc_[j];
        out.dout[j].push_back({count, a.sum[slot], count ? a.mn[slot] : 0,
                               count ? a.mx[slot] : 0});
      } else {
        const IntAcc& a = iacc_[j];
        out.iout[j].push_back({count, a.sum[slot], count ? a.mn[slot] : 0,
                               count ? a.mx[slot] : 0});
      }
    }
  }
  return out;
}

}  // namespace eidb::exec
