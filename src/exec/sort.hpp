// Order-by and top-N kernels over row indices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvector.hpp"

namespace eidb::exec {

/// Row indices of the selection, ordered by keys[i] (ascending or
/// descending; ties keep ascending row order for determinism).
[[nodiscard]] std::vector<std::uint32_t> sort_indices(
    std::span<const std::int64_t> keys, const BitVector& selection,
    bool ascending = true);

[[nodiscard]] std::vector<std::uint32_t> sort_indices_double(
    std::span<const double> keys, const BitVector& selection,
    bool ascending = true);

/// First `n` rows of `sort_indices` without sorting the full selection
/// (partial selection sort via heap).
[[nodiscard]] std::vector<std::uint32_t> top_n(
    std::span<const std::int64_t> keys, const BitVector& selection,
    std::size_t n, bool ascending = true);

}  // namespace eidb::exec
