// Order-by and top-N kernels over row indices.
//
// Two index shapes are supported:
//
//  * selection-driven (`sort_indices` / `top_n`): the output is row ids of
//    the selection ordered by a key column, either a plain int64/double
//    span or a typed `exec::JoinKeys` view — int32, int64, dictionary-code
//    and bit-packed key columns are compared in place, with NO widened
//    int64 copy materialized;
//  * permutation (`sort_permutation` / `top_n_permutation`): the input is
//    an already-gathered key vector (one entry per emitted row, e.g. per
//    join match) and the output is positions [0, n) ordered by it — the
//    sort/top-k operator over join output.
//
// The bounded variants (`top_n*`) use heap-based partial selection
// (std::partial_sort), so an ORDER BY + LIMIT k query costs O(n + k log n)
// comparisons instead of a full O(n log n) sort — and, as importantly for
// the energy ledger, the downstream materialization gathers only k rows.
//
// Every kernel takes an optional sched::ThreadPool. With a pool, full
// sorts run as per-morsel chunk sorts followed by a pairwise merge tree,
// and top-N runs as per-morsel partial selection followed by one merge of
// the ≤ chunks×N candidates. All comparisons use a TOTAL order (key, then
// position), so the parallel result is bit-identical to the serial one
// for every thread count and chunking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/join.hpp"
#include "util/bitvector.hpp"

namespace eidb::sched {
class ThreadPool;
}  // namespace eidb::sched

namespace eidb::exec {

/// Row indices of the selection, ordered by keys[i] (ascending or
/// descending; ties keep ascending row order for determinism).
[[nodiscard]] std::vector<std::uint32_t> sort_indices(
    std::span<const std::int64_t> keys, const BitVector& selection,
    bool ascending = true, sched::ThreadPool* pool = nullptr);

[[nodiscard]] std::vector<std::uint32_t> sort_indices_double(
    std::span<const double> keys, const BitVector& selection,
    bool ascending = true, sched::ThreadPool* pool = nullptr);

/// Typed-view sort: int32 / dictionary-code spans are compared as int32,
/// bit-packed images decode per comparison — no widened key copy.
[[nodiscard]] std::vector<std::uint32_t> sort_indices(
    const JoinKeys& keys, const BitVector& selection, bool ascending = true,
    sched::ThreadPool* pool = nullptr);

/// First `n` rows of `sort_indices` without sorting the full selection
/// (partial selection sort via heap).
[[nodiscard]] std::vector<std::uint32_t> top_n(
    std::span<const std::int64_t> keys, const BitVector& selection,
    std::size_t n, bool ascending = true, sched::ThreadPool* pool = nullptr);

[[nodiscard]] std::vector<std::uint32_t> top_n(const JoinKeys& keys,
                                               const BitVector& selection,
                                               std::size_t n,
                                               bool ascending = true,
                                               sched::ThreadPool* pool = nullptr);

[[nodiscard]] std::vector<std::uint32_t> top_n_double(
    std::span<const double> keys, const BitVector& selection, std::size_t n,
    bool ascending = true, sched::ThreadPool* pool = nullptr);

/// Positions [0, keys.size()) ordered by the gathered key vector (stable:
/// ties keep ascending position order).
[[nodiscard]] std::vector<std::uint32_t> sort_permutation(
    std::span<const std::int64_t> keys, bool ascending = true,
    sched::ThreadPool* pool = nullptr);

[[nodiscard]] std::vector<std::uint32_t> sort_permutation_double(
    std::span<const double> keys, bool ascending = true,
    sched::ThreadPool* pool = nullptr);

/// First `n` positions of `sort_permutation` via heap-based partial sort.
[[nodiscard]] std::vector<std::uint32_t> top_n_permutation(
    std::span<const std::int64_t> keys, std::size_t n, bool ascending = true,
    sched::ThreadPool* pool = nullptr);

[[nodiscard]] std::vector<std::uint32_t> top_n_permutation_double(
    std::span<const double> keys, std::size_t n, bool ascending = true,
    sched::ThreadPool* pool = nullptr);

}  // namespace eidb::exec
