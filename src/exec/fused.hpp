// Fused and short-circuit kernels (paper §IV.B, citing Neumann [14]).
//
// "Recent developments focus on efficient code generation as an alternative
// to build a data-flow graph based on pre-compiled plan operators." The
// measurable core of compiled plans is *fusion*: one pass that filters and
// aggregates keeps tuples in registers, where operator-at-a-time execution
// materializes a selection bitmap and re-reads the data. These kernels are
// the hand-fused equivalents the A3 ablation compares against the
// materializing pipeline.
#pragma once

#include <cstdint>
#include <span>

#include "exec/aggregate.hpp"
#include "util/bitvector.hpp"

namespace eidb::exec {

/// One-pass filter(lo <= k <= hi on keys) + aggregate(values): the fused
/// `scan -> filter -> agg` pipeline over two columns.
[[nodiscard]] AggResult fused_filter_aggregate(
    std::span<const std::int64_t> keys, std::int64_t lo, std::int64_t hi,
    std::span<const std::int64_t> values);

/// Same-column special case: filter and aggregate the same values.
[[nodiscard]] AggResult fused_filter_aggregate_self(
    std::span<const std::int64_t> values, std::int64_t lo, std::int64_t hi);

/// Masked (short-circuit) conjunctive scan: evaluates the predicate only
/// where `selection` still has candidates, skipping fully dead 64-tuple
/// words — the win grows as earlier predicates get more selective.
/// Updates `selection` in place (logical AND).
void scan_bitmap_masked64(std::span<const std::int64_t> values,
                          std::int64_t lo, std::int64_t hi,
                          BitVector& selection);

/// Statistics from the last masked scan (words skipped vs. visited) — for
/// tests and the A3 ablation. Returned by the _counted variant.
struct MaskedScanStats {
  std::uint64_t words_total = 0;
  std::uint64_t words_skipped = 0;
};

void scan_bitmap_masked64_counted(std::span<const std::int64_t> values,
                                  std::int64_t lo, std::int64_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats);

/// int32 / dictionary-code masked conjunctive scan.
void scan_bitmap_masked32(std::span<const std::int32_t> values,
                          std::int32_t lo, std::int32_t hi,
                          BitVector& selection);

void scan_bitmap_masked32_counted(std::span<const std::int32_t> values,
                                  std::int32_t lo, std::int32_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats);

/// Double masked conjunctive scan.
void scan_bitmap_masked_double(std::span<const double> values, double lo,
                               double hi, BitVector& selection);

void scan_bitmap_masked_double_counted(std::span<const double> values,
                                       double lo, double hi,
                                       BitVector& selection,
                                       MaskedScanStats& stats);

/// Masked conjunctive scan over a bit-packed column image: dead 64-row
/// selection words are skipped without unpacking anything; live words
/// unpack one 64-value block and AND the range match into `selection`.
/// `lo`/`hi` are in the packed (reference-shifted) domain.
void scan_packed_bitmap_masked_counted(std::span<const std::uint64_t> packed,
                                       unsigned bits, std::size_t count,
                                       std::uint64_t lo, std::uint64_t hi,
                                       BitVector& selection,
                                       MaskedScanStats& stats);

}  // namespace eidb::exec
