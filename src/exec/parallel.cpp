#include "exec/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include "exec/hash_table.hpp"
#include "exec/scan_kernels.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

namespace {

std::size_t align64(std::size_t n) { return n / 64 * 64; }

/// Runs fn(begin, end, worker_slot) over 64-aligned morsels; `slots` bounds
/// the number of distinct worker slots (= partial accumulators).
template <typename Fn>
void for_each_morsel(sched::ThreadPool& pool, std::size_t rows,
                     std::size_t morsel_rows, Fn&& fn) {
  EIDB_EXPECTS(morsel_rows >= 64);
  const std::size_t grain = std::max<std::size_t>(64, align64(morsel_rows));
  std::atomic<std::size_t> next_slot{0};
  // Each submitted chunk claims a dense slot id; chunk count bounds slots.
  for (std::size_t begin = 0; begin < rows; begin += grain) {
    const std::size_t end = std::min(begin + grain, rows);
    pool.submit([&fn, &next_slot, begin, end] {
      fn(begin, end, next_slot.fetch_add(1));
    });
  }
  pool.wait_idle();
}

}  // namespace

void parallel_scan_bitmap64(sched::ThreadPool& pool,
                            std::span<const std::int64_t> values,
                            std::int64_t lo, std::int64_t hi, BitVector& out,
                            std::size_t morsel_rows) {
  EIDB_EXPECTS(out.size() >= values.size());
  for_each_morsel(pool, values.size(), morsel_rows,
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    // Morsels are 64-aligned: each worker owns whole words.
                    BitVector local(end - begin);
                    scan_bitmap_best64(values.subspan(begin, end - begin), lo,
                                       hi, local);
                    std::copy(local.words(),
                              local.words() + local.word_count(),
                              out.words() + begin / 64);
                  });
}

void parallel_scan_bitmap32(sched::ThreadPool& pool,
                            std::span<const std::int32_t> values,
                            std::int32_t lo, std::int32_t hi, BitVector& out,
                            std::size_t morsel_rows) {
  EIDB_EXPECTS(out.size() >= values.size());
  for_each_morsel(pool, values.size(), morsel_rows,
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    BitVector local(end - begin);
                    scan_bitmap_best(values.subspan(begin, end - begin), lo,
                                     hi, local);
                    std::copy(local.words(),
                              local.words() + local.word_count(),
                              out.words() + begin / 64);
                  });
}

void parallel_scan_packed_bitmap(sched::ThreadPool& pool,
                                 std::span<const std::uint64_t> packed,
                                 unsigned bits, std::size_t count,
                                 std::uint64_t lo, std::uint64_t hi,
                                 BitVector& out, std::size_t morsel_rows) {
  EIDB_EXPECTS(out.size() >= count);
  for_each_morsel(pool, count, morsel_rows,
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    scan_packed_bitmap_range(packed, bits, begin, end, lo,
                                             hi, out);
                  });
}

AggResult parallel_aggregate(sched::ThreadPool& pool,
                             std::span<const std::int64_t> values,
                             const BitVector& selection,
                             std::size_t morsel_rows) {
  EIDB_EXPECTS(selection.size() >= values.size());
  std::mutex merge_mu;
  AggResult total;
  bool any = false;
  for_each_morsel(
      pool, values.size(), morsel_rows,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        AggResult local;
        local.min = std::numeric_limits<std::int64_t>::max();
        local.max = std::numeric_limits<std::int64_t>::min();
        // Walk only this morsel's words of the shared selection.
        for (std::size_t w = begin / 64; w * 64 < end; ++w) {
          std::uint64_t bits = selection.words()[w];
          while (bits != 0) {
            const auto j =
                static_cast<std::size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const std::size_t i = w * 64 + j;
            if (i >= end || i < begin) continue;
            const std::int64_t v = values[i];
            ++local.count;
            local.sum += v;
            local.min = std::min(local.min, v);
            local.max = std::max(local.max, v);
          }
        }
        if (local.count == 0) return;
        std::scoped_lock lock(merge_mu);
        if (!any) {
          total = local;
          any = true;
        } else {
          total.count += local.count;
          total.sum += local.sum;
          total.min = std::min(total.min, local.min);
          total.max = std::max(total.max, local.max);
        }
      });
  return total;
}

namespace {

template <typename Key, typename Value>
std::vector<GroupRow> parallel_group_impl(sched::ThreadPool& pool,
                                          std::span<const Key> keys,
                                          std::span<const Value> values,
                                          const BitVector& selection,
                                          std::size_t morsel_rows) {
  EIDB_EXPECTS(keys.size() == values.size());
  EIDB_EXPECTS(selection.size() >= keys.size());

  std::mutex merge_mu;
  std::map<std::int64_t, AggResult> merged;

  for_each_morsel(
      pool, keys.size(), morsel_rows,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        // Thread-local table over this morsel.
        HashTable<AggResult> local((end - begin) / 8 + 16);
        for (std::size_t w = begin / 64; w * 64 < end; ++w) {
          std::uint64_t bits = selection.words()[w];
          while (bits != 0) {
            const auto j =
                static_cast<std::size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const std::size_t i = w * 64 + j;
            if (i >= end || i < begin) continue;
            const std::int64_t v = values[i];
            AggResult& a = local.get_or_insert(
                static_cast<std::int64_t>(keys[i]), [&](AggResult& f) {
                  f.min = v;
                  f.max = v;
                });
            ++a.count;
            a.sum += v;
            a.min = std::min(a.min, v);
            a.max = std::max(a.max, v);
          }
        }
        // Serial merge (the partitioned scheme's tail).
        std::scoped_lock lock(merge_mu);
        local.for_each([&](std::int64_t key, const AggResult& a) {
          auto [it, fresh] = merged.try_emplace(key, a);
          if (!fresh) {
            AggResult& m = it->second;
            m.count += a.count;
            m.sum += a.sum;
            m.min = std::min(m.min, a.min);
            m.max = std::max(m.max, a.max);
          }
        });
      });

  std::vector<GroupRow> rows;
  rows.reserve(merged.size());
  for (const auto& [key, agg] : merged) rows.push_back({key, agg});
  return rows;
}

}  // namespace

std::vector<GroupRow> parallel_group_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> keys,
    std::span<const std::int64_t> values, const BitVector& selection,
    std::size_t morsel_rows) {
  return parallel_group_impl(pool, keys, values, selection, morsel_rows);
}

std::vector<GroupRow> parallel_group_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> keys,
    std::span<const std::int32_t> values, const BitVector& selection,
    std::size_t morsel_rows) {
  return parallel_group_impl(pool, keys, values, selection, morsel_rows);
}

std::vector<GroupRow> parallel_group_aggregate32(
    sched::ThreadPool& pool, std::span<const std::int32_t> keys,
    std::span<const std::int64_t> values, const BitVector& selection,
    std::size_t morsel_rows) {
  return parallel_group_impl(pool, keys, values, selection, morsel_rows);
}

std::vector<GroupRow> parallel_group_aggregate32(
    sched::ThreadPool& pool, std::span<const std::int32_t> keys,
    std::span<const std::int32_t> values, const BitVector& selection,
    std::size_t morsel_rows) {
  return parallel_group_impl(pool, keys, values, selection, morsel_rows);
}

}  // namespace eidb::exec
