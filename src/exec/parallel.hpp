// Morsel-driven parallel operators (paper §III/§IV.B: "orchestrate a huge
// number of parallel tasks ... Parallelism has to be considered in an
// end-to-end manner").
//
// Real-thread implementations of the scan/aggregate/group pipeline using
// the worker pool, built on the *partitioned* synchronization scheme that
// experiment E4 shows to scale: each worker owns a private accumulator (or
// hash table); a single merge runs at the end. Morsel boundaries are
// aligned to 64 tuples so selection-bitmap words are never shared between
// workers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/aggregate.hpp"
#include "sched/thread_pool.hpp"
#include "util/bitvector.hpp"

namespace eidb::exec {

/// Default morsel size: big enough to amortize dispatch, small enough to
/// load-balance (64-aligned).
inline constexpr std::size_t kDefaultMorselRows = 64 * 1024;

/// Parallel range scan into a selection bitmap (int64 values).
void parallel_scan_bitmap64(sched::ThreadPool& pool,
                            std::span<const std::int64_t> values,
                            std::int64_t lo, std::int64_t hi, BitVector& out,
                            std::size_t morsel_rows = kDefaultMorselRows);

/// Parallel range scan (int32).
void parallel_scan_bitmap32(sched::ThreadPool& pool,
                            std::span<const std::int32_t> values,
                            std::int32_t lo, std::int32_t hi, BitVector& out,
                            std::size_t morsel_rows = kDefaultMorselRows);

/// Parallel range scan over a bit-packed column image (`lo`/`hi` in the
/// packed, reference-shifted domain): 64-aligned morsels own whole
/// selection words, so workers write `out` directly.
void parallel_scan_packed_bitmap(sched::ThreadPool& pool,
                                 std::span<const std::uint64_t> packed,
                                 unsigned bits, std::size_t count,
                                 std::uint64_t lo, std::uint64_t hi,
                                 BitVector& out,
                                 std::size_t morsel_rows = kDefaultMorselRows);

/// Parallel aggregation over the selected rows: per-worker partial
/// accumulators, serial merge (the E4-partitioned scheme).
[[nodiscard]] AggResult parallel_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> values,
    const BitVector& selection,
    std::size_t morsel_rows = kDefaultMorselRows);

/// Parallel grouped aggregation: thread-local hash tables merged by key.
/// Returns rows sorted by key (same contract as group_aggregate).
[[nodiscard]] std::vector<GroupRow> parallel_group_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> keys,
    std::span<const std::int64_t> values, const BitVector& selection,
    std::size_t morsel_rows = kDefaultMorselRows);

/// int32 values (raw int32 / dictionary-code columns): no widened copy,
/// sums widen into the int64 accumulators.
[[nodiscard]] std::vector<GroupRow> parallel_group_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> keys,
    std::span<const std::int32_t> values, const BitVector& selection,
    std::size_t morsel_rows = kDefaultMorselRows);

/// int32 keys (dictionary codes), int64 or int32 values.
[[nodiscard]] std::vector<GroupRow> parallel_group_aggregate32(
    sched::ThreadPool& pool, std::span<const std::int32_t> keys,
    std::span<const std::int64_t> values, const BitVector& selection,
    std::size_t morsel_rows = kDefaultMorselRows);

[[nodiscard]] std::vector<GroupRow> parallel_group_aggregate32(
    sched::ThreadPool& pool, std::span<const std::int32_t> keys,
    std::span<const std::int32_t> values, const BitVector& selection,
    std::size_t morsel_rows = kDefaultMorselRows);

}  // namespace eidb::exec
