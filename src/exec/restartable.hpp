// Restartable long-running operators (paper §IV "Robustness").
//
// "a future database system should in a much wider sense compensate for
// failures ... while short read requests can be easily repeated,
// intermediate results of long-running analytical queries ... have to be
// preserved and transparently used for a restart."
//
// A `RestartableAggregation` processes morsels left to right, snapshotting
// its partial accumulator every `checkpoint_every` morsels. An injected
// fault aborts the in-flight morsel; the retry resumes from the last
// checkpoint instead of from scratch. The A1 ablation bench sweeps the
// checkpoint interval against fault rates — checkpointing too often wastes
// work, too rarely loses work, exactly the balance the paper asks to tune
// per query.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "exec/aggregate.hpp"
#include "util/bitvector.hpp"

namespace eidb::exec {

/// Deterministic fault oracle: invoked once per morsel with the morsel's
/// global index; returning true kills the worker mid-morsel.
using FaultInjector = std::function<bool(std::uint64_t morsel_index)>;

struct RestartStats {
  std::uint64_t morsels_total = 0;       ///< Morsels in the job.
  std::uint64_t morsels_processed = 0;   ///< Including reprocessed ones.
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t restarts = 0;
  /// Work that had to be redone because it postdated the last checkpoint.
  std::uint64_t morsels_reprocessed = 0;
};

class RestartableAggregation {
 public:
  /// `checkpoint_every`: morsels between snapshots (>= 1).
  /// `morsel_rows`: rows per morsel (>= 1).
  RestartableAggregation(std::size_t morsel_rows, std::size_t checkpoint_every)
      : morsel_rows_(morsel_rows), checkpoint_every_(checkpoint_every) {}

  /// Aggregates `values` under `selection`, surviving injected faults.
  /// Restarts resume from the last checkpoint. `max_restarts` bounds
  /// pathological injectors; exceeding it throws eidb::Error.
  [[nodiscard]] AggResult run(std::span<const std::int64_t> values,
                              const BitVector& selection,
                              const FaultInjector& fault, RestartStats& stats,
                              std::uint64_t max_restarts = 1000) const;

  /// Baseline without checkpointing: any fault restarts from scratch.
  [[nodiscard]] AggResult run_from_scratch(
      std::span<const std::int64_t> values, const BitVector& selection,
      const FaultInjector& fault, RestartStats& stats,
      std::uint64_t max_restarts = 1000) const;

 private:
  std::size_t morsel_rows_;
  std::size_t checkpoint_every_;
};

}  // namespace eidb::exec
