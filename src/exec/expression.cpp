#include "exec/expression.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace eidb::exec {

std::shared_ptr<const Expr> Expr::column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(name);
  return e;
}

std::shared_ptr<const Expr> Expr::literal(double value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->value_ = value;
  return e;
}

std::shared_ptr<const Expr> Expr::binary(ExprOp op,
                                         std::shared_ptr<const Expr> lhs,
                                         std::shared_ptr<const Expr> rhs) {
  EIDB_EXPECTS(lhs != nullptr && rhs != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

void Expr::collect_columns(std::vector<std::string>& out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      out.push_back(name_);
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kBinary:
      lhs_->collect_columns(out);
      rhs_->collect_columns(out);
      return;
  }
}

std::string Expr::to_string() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return name_;
    case ExprKind::kLiteral: {
      std::ostringstream os;
      os << value_;
      return os.str();
    }
    case ExprKind::kBinary: {
      const char* sym = op_ == ExprOp::kAdd   ? "+"
                        : op_ == ExprOp::kSub ? "-"
                        : op_ == ExprOp::kMul ? "*"
                                              : "/";
      return "(" + lhs_->to_string() + " " + sym + " " + rhs_->to_string() +
             ")";
    }
  }
  return "?";
}

namespace {

void load_column(const storage::Column& col, std::vector<double>& out) {
  const std::size_t n = col.size();
  out.resize(n);
  switch (col.type()) {
    case storage::TypeId::kDouble: {
      const auto data = col.double_data();
      std::copy(data.begin(), data.end(), out.begin());
      return;
    }
    case storage::TypeId::kInt64: {
      const auto data = col.int64_data();
      for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(data[i]);
      return;
    }
    case storage::TypeId::kInt32: {
      const auto data = col.int32_data();
      for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(data[i]);
      return;
    }
    case storage::TypeId::kString:
      throw Error("cannot use string column " + col.name() +
                  " in arithmetic");
  }
}

void eval_rec(const Expr& expr, const storage::Table& table,
              std::vector<double>& out) {
  switch (expr.kind()) {
    case ExprKind::kColumn:
      load_column(table.column(expr.column_name()), out);
      return;
    case ExprKind::kLiteral:
      out.assign(table.row_count(), expr.literal_value());
      return;
    case ExprKind::kBinary: {
      std::vector<double> rhs;
      eval_rec(expr.lhs(), table, out);
      eval_rec(expr.rhs(), table, rhs);
      EIDB_ASSERT(out.size() == rhs.size());
      // Tight loops the compiler vectorizes.
      switch (expr.op()) {
        case ExprOp::kAdd:
          for (std::size_t i = 0; i < out.size(); ++i) out[i] += rhs[i];
          return;
        case ExprOp::kSub:
          for (std::size_t i = 0; i < out.size(); ++i) out[i] -= rhs[i];
          return;
        case ExprOp::kMul:
          for (std::size_t i = 0; i < out.size(); ++i) out[i] *= rhs[i];
          return;
        case ExprOp::kDiv:
          for (std::size_t i = 0; i < out.size(); ++i) out[i] /= rhs[i];
          return;
      }
      return;
    }
  }
}

}  // namespace

void evaluate_expression(const Expr& expr, const storage::Table& table,
                         std::vector<double>& out) {
  eval_rec(expr, table, out);
  EIDB_ENSURES(out.size() == table.row_count());
}

}  // namespace eidb::exec
