// Mid-scan operator reconfiguration (paper §IV.B).
//
// "operators have to quickly adapt to changing data characteristics ...
// selectivity factors significantly impact the success of branch prediction
// forcing the operator to switch between different implementations [17]".
//
// The adaptive scan processes the column in chunks. It starts with the cost
// model's pick for the *prior* selectivity estimate, measures the observed
// selectivity of each completed chunk, re-estimates with an exponential
// moving average, and re-picks the kernel when the model's preference
// changes. On clustered data (selectivity drifting along the column) this
// tracks the winner per region instead of committing to one kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/scan_kernels.hpp"
#include "opt/cost_model.hpp"
#include "util/bitvector.hpp"

namespace eidb::exec {

struct AdaptiveScanStats {
  std::uint64_t chunks = 0;
  std::uint64_t switches = 0;           ///< Kernel changes mid-scan.
  double final_selectivity_estimate = 0;
  std::vector<ScanVariant> variant_per_chunk;
};

class AdaptiveScan {
 public:
  /// `prior_selectivity`: optimizer's pre-execution estimate.
  /// `chunk_rows`: adaptation granularity (64-aligned internally).
  AdaptiveScan(const opt::CostModel& model, double prior_selectivity = 0.1,
               std::size_t chunk_rows = 64 * 1024)
      : model_(model),
        estimate_(prior_selectivity),
        chunk_rows_(chunk_rows / 64 * 64 == 0 ? 64 : chunk_rows / 64 * 64) {}

  /// Scans `values` for lo <= v <= hi into `out` (sized to values.size()).
  void scan(std::span<const std::int32_t> values, std::int32_t lo,
            std::int32_t hi, BitVector& out, AdaptiveScanStats& stats);

 private:
  const opt::CostModel& model_;
  double estimate_;
  std::size_t chunk_rows_;
};

}  // namespace eidb::exec
