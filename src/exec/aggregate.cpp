#include "exec/aggregate.hpp"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "exec/hash_table.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

AggResult aggregate_all(std::span<const std::int64_t> values) {
  AggResult r;
  if (values.empty()) return r;
  r.count = values.size();
  r.min = std::numeric_limits<std::int64_t>::max();
  r.max = std::numeric_limits<std::int64_t>::min();
  for (const std::int64_t v : values) {
    r.sum += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  }
  return r;
}

AggResultD aggregate_all(std::span<const double> values) {
  AggResultD r;
  if (values.empty()) return r;
  r.count = values.size();
  r.min = std::numeric_limits<double>::infinity();
  r.max = -std::numeric_limits<double>::infinity();
  for (const double v : values) {
    r.sum += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  }
  return r;
}

AggResult aggregate_selected(std::span<const std::int64_t> values,
                             const BitVector& selection) {
  EIDB_EXPECTS(selection.size() >= values.size());
  AggResult r;
  r.min = std::numeric_limits<std::int64_t>::max();
  r.max = std::numeric_limits<std::int64_t>::min();
  selection.for_each_set([&](std::size_t i) {
    const std::int64_t v = values[i];
    ++r.count;
    r.sum += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  });
  if (r.count == 0) r.min = r.max = 0;
  return r;
}

AggResult aggregate_selected(std::span<const std::int32_t> values,
                             const BitVector& selection) {
  EIDB_EXPECTS(selection.size() >= values.size());
  AggResult r;
  r.min = std::numeric_limits<std::int64_t>::max();
  r.max = std::numeric_limits<std::int64_t>::min();
  selection.for_each_set([&](std::size_t i) {
    const std::int64_t v = values[i];
    ++r.count;
    r.sum += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  });
  if (r.count == 0) r.min = r.max = 0;
  return r;
}

AggResultD aggregate_selected(std::span<const double> values,
                              const BitVector& selection) {
  EIDB_EXPECTS(selection.size() >= values.size());
  AggResultD r;
  r.min = std::numeric_limits<double>::infinity();
  r.max = -std::numeric_limits<double>::infinity();
  selection.for_each_set([&](std::size_t i) {
    const double v = values[i];
    ++r.count;
    r.sum += v;
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  });
  if (r.count == 0) r.min = r.max = 0;
  return r;
}

namespace {

template <typename Acc, typename Key, typename Value, typename Row>
std::vector<Row> group_dense(std::span<const Key> keys,
                             std::span<const Value> values,
                             const BitVector& selection, std::int64_t kmin,
                             std::int64_t kmax) {
  const auto domain = static_cast<std::size_t>(kmax - kmin + 1);
  std::vector<Acc> slots(domain);
  std::vector<bool> seen(domain, false);
  selection.for_each_set([&](std::size_t i) {
    const auto slot = static_cast<std::size_t>(keys[i] - kmin);
    Acc& a = slots[slot];
    // Accumulator-typed view of the value: int32 inputs widen here, not
    // via a materialized copy.
    const auto v = static_cast<std::decay_t<decltype(a.sum)>>(values[i]);
    if (!seen[slot]) {
      seen[slot] = true;
      a.min = a.max = v;
      a.sum = v;
      a.count = 1;
    } else {
      ++a.count;
      a.sum += v;
      a.min = std::min(a.min, v);
      a.max = std::max(a.max, v);
    }
  });
  std::vector<Row> rows;
  for (std::size_t s = 0; s < domain; ++s)
    if (seen[s])
      rows.push_back({kmin + static_cast<std::int64_t>(s), slots[s]});
  return rows;
}

template <typename Acc, typename Key, typename Value, typename Row>
std::vector<Row> group_hash(std::span<const Key> keys,
                            std::span<const Value> values,
                            const BitVector& selection) {
  HashTable<Acc> table(selection.count());
  selection.for_each_set([&](std::size_t i) {
    Acc& a = table.get_or_insert(static_cast<std::int64_t>(keys[i]),
                                 [&](Acc& fresh) {
                                   fresh.min = values[i];
                                   fresh.max = values[i];
                                 });
    const auto v = static_cast<std::decay_t<decltype(a.sum)>>(values[i]);
    ++a.count;
    a.sum += v;
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
  });
  std::vector<Row> rows;
  rows.reserve(table.size());
  table.for_each(
      [&](std::int64_t key, const Acc& a) { rows.push_back({key, a}); });
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  return rows;
}

template <typename Acc, typename Row, typename Key, typename Value>
std::vector<Row> group_impl(std::span<const Key> keys,
                            std::span<const Value> values,
                            const BitVector& selection,
                            GroupStrategy strategy) {
  EIDB_EXPECTS(keys.size() == values.size());
  EIDB_EXPECTS(selection.size() >= keys.size());
  if (keys.empty()) return {};

  std::int64_t kmin = std::numeric_limits<std::int64_t>::max();
  std::int64_t kmax = std::numeric_limits<std::int64_t>::min();
  bool any = false;
  selection.for_each_set([&](std::size_t i) {
    any = true;
    kmin = std::min<std::int64_t>(kmin, keys[i]);
    kmax = std::max<std::int64_t>(kmax, keys[i]);
  });
  if (!any) return {};

  const bool dense_ok = kmax - kmin + 1 <= kDenseDomainLimit;
  GroupStrategy chosen = strategy;
  if (chosen == GroupStrategy::kAuto)
    chosen = dense_ok ? GroupStrategy::kDenseArray : GroupStrategy::kHash;
  if (chosen == GroupStrategy::kDenseArray && !dense_ok)
    throw Error("dense group-by domain too large");

  return chosen == GroupStrategy::kDenseArray
             ? group_dense<Acc, Key, Value, Row>(keys, values, selection,
                                                 kmin, kmax)
             : group_hash<Acc, Key, Value, Row>(keys, values, selection);
}

}  // namespace

std::vector<GroupRow> group_aggregate(std::span<const std::int64_t> keys,
                                      std::span<const std::int64_t> values,
                                      const BitVector& selection,
                                      GroupStrategy strategy) {
  return group_impl<AggResult, GroupRow>(keys, values, selection, strategy);
}

std::vector<GroupRow> group_aggregate(std::span<const std::int64_t> keys,
                                      std::span<const std::int32_t> values,
                                      const BitVector& selection,
                                      GroupStrategy strategy) {
  return group_impl<AggResult, GroupRow>(keys, values, selection, strategy);
}

std::vector<GroupRow> group_aggregate32(std::span<const std::int32_t> keys,
                                        std::span<const std::int64_t> values,
                                        const BitVector& selection,
                                        GroupStrategy strategy) {
  return group_impl<AggResult, GroupRow>(keys, values, selection, strategy);
}

std::vector<GroupRow> group_aggregate32(std::span<const std::int32_t> keys,
                                        std::span<const std::int32_t> values,
                                        const BitVector& selection,
                                        GroupStrategy strategy) {
  return group_impl<AggResult, GroupRow>(keys, values, selection, strategy);
}

std::vector<GroupRowD> group_aggregate_d(std::span<const std::int64_t> keys,
                                         std::span<const double> values,
                                         const BitVector& selection,
                                         GroupStrategy strategy) {
  return group_impl<AggResultD, GroupRowD>(keys, values, selection, strategy);
}

std::vector<GroupRowD> group_aggregate32_d(std::span<const std::int32_t> keys,
                                           std::span<const double> values,
                                           const BitVector& selection,
                                           GroupStrategy strategy) {
  return group_impl<AggResultD, GroupRowD>(keys, values, selection, strategy);
}

}  // namespace eidb::exec
