// Aggregation kernels: full-column and selection-driven sums/min/max/count,
// plus grouped aggregation (dense-array and hash strategies).
//
// The strategy split mirrors production column stores: when the group-key
// domain is small (dictionary codes, small int ranges) a dense accumulator
// array beats hashing by a wide margin; otherwise a linear-probe hash table
// is used. The adaptive choice is another instance of §IV.B's
// "reconfigurable operator".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvector.hpp"

namespace eidb::exec {

/// Aggregate results for one group (or the whole selection).
struct AggResult {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  [[nodiscard]] double avg() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

struct AggResultD {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  [[nodiscard]] double avg() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Aggregates all values.
[[nodiscard]] AggResult aggregate_all(std::span<const std::int64_t> values);
[[nodiscard]] AggResultD aggregate_all(std::span<const double> values);

/// Aggregates values where the selection bit is set. The int32 overload
/// consumes raw int32 / dictionary-code columns directly (sums widen to
/// int64) — no widened copy.
[[nodiscard]] AggResult aggregate_selected(std::span<const std::int64_t> values,
                                           const BitVector& selection);
[[nodiscard]] AggResult aggregate_selected(std::span<const std::int32_t> values,
                                           const BitVector& selection);
[[nodiscard]] AggResultD aggregate_selected(std::span<const double> values,
                                            const BitVector& selection);

/// One output group.
struct GroupRow {
  std::int64_t key = 0;
  AggResult agg;
};

/// Grouped aggregation: keys[i] groups values[i]; only selected rows
/// participate (pass an all-set selection for full columns).
/// `strategy`: 0 = auto, 1 = dense array (requires small key domain),
/// 2 = hash. Returns rows sorted by key.
enum class GroupStrategy : std::uint8_t { kAuto, kDenseArray, kHash };

/// Largest key domain the kAuto strategy resolves to a dense accumulator
/// array (1M slots); shared by every grouping kernel and mirrored by the
/// cost model's strategy prediction.
inline constexpr std::int64_t kDenseDomainLimit = 1 << 20;

[[nodiscard]] std::vector<GroupRow> group_aggregate(
    std::span<const std::int64_t> keys, std::span<const std::int64_t> values,
    const BitVector& selection, GroupStrategy strategy = GroupStrategy::kAuto);

/// int32 values (raw int32 / dictionary-code columns): aggregated in place,
/// sums widen to int64 — no widened int64 copy of the column.
[[nodiscard]] std::vector<GroupRow> group_aggregate(
    std::span<const std::int64_t> keys, std::span<const std::int32_t> values,
    const BitVector& selection, GroupStrategy strategy = GroupStrategy::kAuto);

/// int32 keys (dictionary codes) overload.
[[nodiscard]] std::vector<GroupRow> group_aggregate32(
    std::span<const std::int32_t> keys, std::span<const std::int64_t> values,
    const BitVector& selection, GroupStrategy strategy = GroupStrategy::kAuto);

/// int32 keys AND int32 values.
[[nodiscard]] std::vector<GroupRow> group_aggregate32(
    std::span<const std::int32_t> keys, std::span<const std::int32_t> values,
    const BitVector& selection, GroupStrategy strategy = GroupStrategy::kAuto);

/// Double-valued grouped aggregation.
struct GroupRowD {
  std::int64_t key = 0;
  AggResultD agg;
};

[[nodiscard]] std::vector<GroupRowD> group_aggregate_d(
    std::span<const std::int64_t> keys, std::span<const double> values,
    const BitVector& selection, GroupStrategy strategy = GroupStrategy::kAuto);

[[nodiscard]] std::vector<GroupRowD> group_aggregate32_d(
    std::span<const std::int32_t> keys, std::span<const double> values,
    const BitVector& selection, GroupStrategy strategy = GroupStrategy::kAuto);

}  // namespace eidb::exec
