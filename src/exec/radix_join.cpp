#include "exec/radix_join.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "exec/hash_table.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

namespace {

struct Partitioned {
  // Per partition: (key, original row) pairs.
  std::vector<std::vector<std::pair<std::int64_t, std::uint32_t>>> parts;
};

Partitioned partition(std::span<const std::int64_t> keys,
                      const BitVector& selection, unsigned radix_bits) {
  Partitioned p;
  p.parts.resize(std::size_t{1} << radix_bits);
  const std::uint64_t mask = (std::uint64_t{1} << radix_bits) - 1;
  selection.for_each_set([&](std::size_t i) {
    // Hash-based radix: raw low bits would put sequential keys into
    // sequential partitions, which is fine, but hashing also balances
    // skewed domains.
    const std::size_t part = hash_key(keys[i]) & mask;
    p.parts[part].push_back({keys[i], static_cast<std::uint32_t>(i)});
  });
  return p;
}

void join_partition(
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& build,
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& probe,
    std::vector<JoinPair>& out) {
  if (build.empty() || probe.empty()) return;
  JoinHashTable table(build.size());
  for (const auto& [key, row] : build) table.insert(key, row);
  for (const auto& [key, row] : probe) {
    table.probe(key, [&](std::uint32_t build_row) {
      out.push_back({build_row, row});
    });
  }
}

}  // namespace

std::vector<JoinPair> radix_hash_join(std::span<const std::int64_t> build_keys,
                                      const BitVector& build_selection,
                                      std::span<const std::int64_t> probe_keys,
                                      const BitVector& probe_selection,
                                      unsigned radix_bits,
                                      sched::ThreadPool* pool) {
  EIDB_EXPECTS(radix_bits >= 1 && radix_bits <= 16);
  const Partitioned build = partition(build_keys, build_selection, radix_bits);
  const Partitioned probe = partition(probe_keys, probe_selection, radix_bits);
  const std::size_t n_parts = build.parts.size();

  std::vector<JoinPair> out;
  if (pool == nullptr) {
    for (std::size_t part = 0; part < n_parts; ++part)
      join_partition(build.parts[part], probe.parts[part], out);
  } else {
    std::vector<std::vector<JoinPair>> per_part(n_parts);
    for (std::size_t part = 0; part < n_parts; ++part) {
      pool->submit([&, part] {
        join_partition(build.parts[part], probe.parts[part], per_part[part]);
      });
    }
    pool->wait_idle();
    std::size_t total = 0;
    for (const auto& v : per_part) total += v.size();
    out.reserve(total);
    for (const auto& v : per_part) out.insert(out.end(), v.begin(), v.end());
  }

  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  return out;
}

}  // namespace eidb::exec
