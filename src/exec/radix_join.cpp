#include "exec/radix_join.hpp"

#include <algorithm>

#include "exec/hash_table.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

RadixPartitions radix_partition(const JoinKeys& keys,
                                const BitVector& selection,
                                unsigned radix_bits) {
  EIDB_EXPECTS(radix_bits >= 1 && radix_bits <= 16);
  EIDB_EXPECTS(selection.size() == keys.size());
  RadixPartitions p;
  p.parts.resize(std::size_t{1} << radix_bits);
  const std::uint64_t mask = (std::uint64_t{1} << radix_bits) - 1;
  selection.for_each_set([&](std::size_t i) {
    const std::int64_t key = keys.at(i);
    const std::size_t part = hash_key(key) & mask;
    p.parts[part].push_back({key, static_cast<std::uint32_t>(i)});
  });
  return p;
}

std::uint64_t join_partition_blocks(
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& build,
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& probe,
    const JoinBlockSink& sink) {
  if (build.empty() || probe.empty()) return 0;
  JoinHashTable table(build.size());
  // Reverse insertion order: LIFO chains then probe ascending build rows.
  for (auto it = build.rbegin(); it != build.rend(); ++it)
    table.insert(it->first, it->second);

  std::uint32_t bld[kJoinBlockRows];
  std::uint32_t prb[kJoinBlockRows];
  std::size_t k = 0;
  std::uint64_t pairs = 0;
  const auto flush = [&] {
    if (k != 0) {
      sink(bld, prb, k);
      k = 0;
    }
  };
  for (const auto& [key, row] : probe) {
    table.probe(key, [&](std::uint32_t build_row) {
      bld[k] = build_row;
      prb[k] = row;
      ++pairs;
      if (++k == kJoinBlockRows) flush();
    });
  }
  flush();
  return pairs;
}

std::vector<JoinPair> radix_hash_join(std::span<const std::int64_t> build_keys,
                                      const BitVector& build_selection,
                                      std::span<const std::int64_t> probe_keys,
                                      const BitVector& probe_selection,
                                      unsigned radix_bits,
                                      sched::ThreadPool* pool) {
  const RadixPartitions build =
      radix_partition(JoinKeys::from(build_keys), build_selection, radix_bits);
  const RadixPartitions probe =
      radix_partition(JoinKeys::from(probe_keys), probe_selection, radix_bits);
  const std::size_t n_parts = build.parts.size();

  std::vector<std::vector<JoinPair>> per_part(n_parts);
  const auto run_partition = [&](std::size_t part) {
    std::vector<JoinPair>& out = per_part[part];
    (void)join_partition_blocks(
        build.parts[part], probe.parts[part],
        [&out](const std::uint32_t* b, const std::uint32_t* p, std::size_t k) {
          for (std::size_t e = 0; e < k; ++e) out.push_back({b[e], p[e]});
        });
  };
  if (pool == nullptr) {
    for (std::size_t part = 0; part < n_parts; ++part) run_partition(part);
  } else {
    for (std::size_t part = 0; part < n_parts; ++part)
      pool->submit([&run_partition, part] { run_partition(part); });
    pool->wait_idle();
  }

  std::size_t total = 0;
  for (const auto& v : per_part) total += v.size();
  std::vector<JoinPair> out;
  out.reserve(total);
  for (const auto& v : per_part) out.insert(out.end(), v.begin(), v.end());
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  return out;
}

}  // namespace eidb::exec
