#include "exec/sort.hpp"

#include <algorithm>

namespace eidb::exec {

namespace {

template <typename T>
std::vector<std::uint32_t> sort_impl(std::span<const T> keys,
                                     const BitVector& selection,
                                     bool ascending) {
  std::vector<std::uint32_t> idx = selection.to_indices();
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return ascending ? keys[a] < keys[b] : keys[a] > keys[b];
                   });
  return idx;
}

}  // namespace

std::vector<std::uint32_t> sort_indices(std::span<const std::int64_t> keys,
                                        const BitVector& selection,
                                        bool ascending) {
  return sort_impl(keys, selection, ascending);
}

std::vector<std::uint32_t> sort_indices_double(std::span<const double> keys,
                                               const BitVector& selection,
                                               bool ascending) {
  return sort_impl(keys, selection, ascending);
}

std::vector<std::uint32_t> top_n(std::span<const std::int64_t> keys,
                                 const BitVector& selection, std::size_t n,
                                 bool ascending) {
  std::vector<std::uint32_t> idx = selection.to_indices();
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    if (keys[a] != keys[b])
      return ascending ? keys[a] < keys[b] : keys[a] > keys[b];
    return a < b;  // deterministic tie-break
  };
  if (n >= idx.size()) {
    std::sort(idx.begin(), idx.end(), cmp);
    return idx;
  }
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n),
                    idx.end(), cmp);
  idx.resize(n);
  return idx;
}

}  // namespace eidb::exec
