#include "exec/sort.hpp"

#include <algorithm>

#include "sched/thread_pool.hpp"

namespace eidb::exec {

namespace {

// Chunk-count ceiling for the parallel paths: bounds the candidate buffer
// of parallel top-N (≤ kMaxSortChunks × N entries) and the merge-tree
// depth of the full sort.
constexpr std::size_t kMaxSortChunks = 64;

/// Key accessor adapters: a span indexes directly; a JoinKeys view goes
/// through its typed at() (int32/int64/packed all compared as int64
/// values without materializing a widened copy).
template <typename T>
struct SpanKeys {
  std::span<const T> keys;
  T operator()(std::uint32_t i) const { return keys[i]; }
};
struct ViewKeys {
  const JoinKeys& keys;
  std::int64_t operator()(std::uint32_t i) const { return keys.at(i); }
};

/// Per-chunk sorts followed by a pairwise std::inplace_merge tree. The
/// comparator is total, so the result equals one std::sort of the whole
/// range no matter how the chunks land.
template <typename Cmp>
void parallel_full_sort(std::vector<std::uint32_t>& idx, const Cmp& cmp,
                        sched::ThreadPool& pool) {
  const std::size_t n = idx.size();
  std::size_t chunks = 1;
  while (chunks < pool.thread_count() && chunks < kMaxSortChunks) chunks *= 2;
  const std::size_t per = (n + chunks - 1) / chunks;
  pool.parallel_for(chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const auto first = idx.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(c * per, n));
      const auto last = idx.begin() + static_cast<std::ptrdiff_t>(
                                          std::min((c + 1) * per, n));
      std::sort(first, last, cmp);
    }
  });
  for (std::size_t width = per; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.parallel_for(pairs, 1, [&](std::size_t pb, std::size_t pe) {
      for (std::size_t p = pb; p < pe; ++p) {
        const std::size_t lo = p * 2 * width;
        const std::size_t mid = std::min(lo + width, n);
        const std::size_t hi = std::min(lo + 2 * width, n);
        if (mid < hi)
          std::inplace_merge(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                             idx.begin() + static_cast<std::ptrdiff_t>(mid),
                             idx.begin() + static_cast<std::ptrdiff_t>(hi),
                             cmp);
      }
    });
  }
}

/// Per-chunk heap top-N keeps ≤ N candidates per chunk; one final partial
/// sort over the ≤ chunks×N survivors picks the global top N.
template <typename Cmp>
void parallel_top_n(std::vector<std::uint32_t>& idx, const Cmp& cmp,
                    std::size_t n_keep, sched::ThreadPool& pool) {
  const std::size_t n = idx.size();
  const std::size_t chunks =
      std::min<std::size_t>(kMaxSortChunks,
                            std::max<std::size_t>(1, pool.thread_count()));
  const std::size_t per = (n + chunks - 1) / chunks;
  pool.parallel_for(chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t lo = std::min(c * per, n);
      const std::size_t hi = std::min((c + 1) * per, n);
      const std::size_t keep = std::min(n_keep, hi - lo);
      std::partial_sort(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                        idx.begin() + static_cast<std::ptrdiff_t>(lo + keep),
                        idx.begin() + static_cast<std::ptrdiff_t>(hi), cmp);
    }
  });
  std::vector<std::uint32_t> cand;
  cand.reserve(std::min(n, chunks * n_keep));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = std::min(c * per, n);
    const std::size_t hi = std::min((c + 1) * per, n);
    const std::size_t keep = std::min(n_keep, hi - lo);
    cand.insert(cand.end(), idx.begin() + static_cast<std::ptrdiff_t>(lo),
                idx.begin() + static_cast<std::ptrdiff_t>(lo + keep));
  }
  const std::size_t out = std::min(n_keep, cand.size());
  std::partial_sort(cand.begin(),
                    cand.begin() + static_cast<std::ptrdiff_t>(out),
                    cand.end(), cmp);
  cand.resize(out);
  idx = std::move(cand);
}

/// Shared driver: orders `idx` by the total comparator (key, then index),
/// bounded to the first `n_keep` entries when `bounded`. Picks the
/// parallel path when a multi-thread pool is supplied and the range is
/// big enough for chunking to be meaningful.
template <typename KeyAt>
std::vector<std::uint32_t> order_impl(const KeyAt& at,
                                      std::vector<std::uint32_t> idx,
                                      std::size_t n_keep, bool bounded,
                                      bool ascending,
                                      sched::ThreadPool* pool) {
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    const auto ka = at(a), kb = at(b);
    if (ka != kb) return ascending ? ka < kb : ka > kb;
    return a < b;  // deterministic tie-break
  };
  if (bounded && n_keep >= idx.size()) bounded = false;
  const bool parallel = pool != nullptr && pool->thread_count() > 1 &&
                        idx.size() >= 2 * pool->thread_count();
  if (parallel) {
    if (bounded)
      parallel_top_n(idx, cmp, n_keep, *pool);
    else
      parallel_full_sort(idx, cmp, *pool);
    return idx;
  }
  if (!bounded) {
    std::sort(idx.begin(), idx.end(), cmp);
    return idx;
  }
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(n_keep),
                    idx.end(), cmp);
  idx.resize(n_keep);
  return idx;
}

template <typename KeyAt>
std::vector<std::uint32_t> sort_impl(const KeyAt& at,
                                     const BitVector& selection,
                                     bool ascending, sched::ThreadPool* pool) {
  return order_impl(at, selection.to_indices(), 0, false, ascending, pool);
}

template <typename KeyAt>
std::vector<std::uint32_t> top_n_impl(const KeyAt& at,
                                      const BitVector& selection,
                                      std::size_t n, bool ascending,
                                      sched::ThreadPool* pool) {
  return order_impl(at, selection.to_indices(), n, true, ascending, pool);
}

template <typename T>
std::vector<std::uint32_t> permutation_impl(std::span<const T> keys,
                                            std::size_t n, bool ascending,
                                            bool bounded,
                                            sched::ThreadPool* pool) {
  std::vector<std::uint32_t> idx(keys.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::uint32_t>(i);
  return order_impl(SpanKeys<T>{keys}, std::move(idx), n, bounded, ascending,
                    pool);
}

}  // namespace

std::vector<std::uint32_t> sort_indices(std::span<const std::int64_t> keys,
                                        const BitVector& selection,
                                        bool ascending,
                                        sched::ThreadPool* pool) {
  return sort_impl(SpanKeys<std::int64_t>{keys}, selection, ascending, pool);
}

std::vector<std::uint32_t> sort_indices_double(std::span<const double> keys,
                                               const BitVector& selection,
                                               bool ascending,
                                               sched::ThreadPool* pool) {
  return sort_impl(SpanKeys<double>{keys}, selection, ascending, pool);
}

std::vector<std::uint32_t> sort_indices(const JoinKeys& keys,
                                        const BitVector& selection,
                                        bool ascending,
                                        sched::ThreadPool* pool) {
  return sort_impl(ViewKeys{keys}, selection, ascending, pool);
}

std::vector<std::uint32_t> top_n(std::span<const std::int64_t> keys,
                                 const BitVector& selection, std::size_t n,
                                 bool ascending, sched::ThreadPool* pool) {
  return top_n_impl(SpanKeys<std::int64_t>{keys}, selection, n, ascending,
                    pool);
}

std::vector<std::uint32_t> top_n(const JoinKeys& keys,
                                 const BitVector& selection, std::size_t n,
                                 bool ascending, sched::ThreadPool* pool) {
  return top_n_impl(ViewKeys{keys}, selection, n, ascending, pool);
}

std::vector<std::uint32_t> top_n_double(std::span<const double> keys,
                                        const BitVector& selection,
                                        std::size_t n, bool ascending,
                                        sched::ThreadPool* pool) {
  return top_n_impl(SpanKeys<double>{keys}, selection, n, ascending, pool);
}

std::vector<std::uint32_t> sort_permutation(std::span<const std::int64_t> keys,
                                            bool ascending,
                                            sched::ThreadPool* pool) {
  return permutation_impl(keys, 0, ascending, false, pool);
}

std::vector<std::uint32_t> sort_permutation_double(std::span<const double> keys,
                                                   bool ascending,
                                                   sched::ThreadPool* pool) {
  return permutation_impl(keys, 0, ascending, false, pool);
}

std::vector<std::uint32_t> top_n_permutation(
    std::span<const std::int64_t> keys, std::size_t n, bool ascending,
    sched::ThreadPool* pool) {
  return permutation_impl(keys, n, ascending, true, pool);
}

std::vector<std::uint32_t> top_n_permutation_double(
    std::span<const double> keys, std::size_t n, bool ascending,
    sched::ThreadPool* pool) {
  return permutation_impl(keys, n, ascending, true, pool);
}

}  // namespace eidb::exec
