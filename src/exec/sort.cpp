#include "exec/sort.hpp"

#include <algorithm>

namespace eidb::exec {

namespace {

/// Key accessor adapters: a span indexes directly; a JoinKeys view goes
/// through its typed at() (int32/int64/packed all compared as int64
/// values without materializing a widened copy).
template <typename T>
struct SpanKeys {
  std::span<const T> keys;
  T operator()(std::uint32_t i) const { return keys[i]; }
};
struct ViewKeys {
  const JoinKeys& keys;
  std::int64_t operator()(std::uint32_t i) const { return keys.at(i); }
};

template <typename KeyAt>
std::vector<std::uint32_t> sort_impl(const KeyAt& at,
                                     const BitVector& selection,
                                     bool ascending) {
  std::vector<std::uint32_t> idx = selection.to_indices();
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return ascending ? at(a) < at(b) : at(a) > at(b);
                   });
  return idx;
}

template <typename KeyAt>
std::vector<std::uint32_t> top_n_impl(const KeyAt& at,
                                      const BitVector& selection,
                                      std::size_t n, bool ascending) {
  std::vector<std::uint32_t> idx = selection.to_indices();
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    const auto ka = at(a), kb = at(b);
    if (ka != kb) return ascending ? ka < kb : ka > kb;
    return a < b;  // deterministic tie-break
  };
  if (n >= idx.size()) {
    std::sort(idx.begin(), idx.end(), cmp);
    return idx;
  }
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n),
                    idx.end(), cmp);
  idx.resize(n);
  return idx;
}

template <typename T>
std::vector<std::uint32_t> permutation_impl(std::span<const T> keys,
                                            std::size_t n, bool ascending,
                                            bool bounded) {
  std::vector<std::uint32_t> idx(keys.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::uint32_t>(i);
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    if (keys[a] != keys[b])
      return ascending ? keys[a] < keys[b] : keys[a] > keys[b];
    return a < b;
  };
  if (!bounded || n >= idx.size()) {
    std::sort(idx.begin(), idx.end(), cmp);
    return idx;
  }
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n),
                    idx.end(), cmp);
  idx.resize(n);
  return idx;
}

}  // namespace

std::vector<std::uint32_t> sort_indices(std::span<const std::int64_t> keys,
                                        const BitVector& selection,
                                        bool ascending) {
  return sort_impl(SpanKeys<std::int64_t>{keys}, selection, ascending);
}

std::vector<std::uint32_t> sort_indices_double(std::span<const double> keys,
                                               const BitVector& selection,
                                               bool ascending) {
  return sort_impl(SpanKeys<double>{keys}, selection, ascending);
}

std::vector<std::uint32_t> sort_indices(const JoinKeys& keys,
                                        const BitVector& selection,
                                        bool ascending) {
  return sort_impl(ViewKeys{keys}, selection, ascending);
}

std::vector<std::uint32_t> top_n(std::span<const std::int64_t> keys,
                                 const BitVector& selection, std::size_t n,
                                 bool ascending) {
  return top_n_impl(SpanKeys<std::int64_t>{keys}, selection, n, ascending);
}

std::vector<std::uint32_t> top_n(const JoinKeys& keys,
                                 const BitVector& selection, std::size_t n,
                                 bool ascending) {
  return top_n_impl(ViewKeys{keys}, selection, n, ascending);
}

std::vector<std::uint32_t> top_n_double(std::span<const double> keys,
                                        const BitVector& selection,
                                        std::size_t n, bool ascending) {
  return top_n_impl(SpanKeys<double>{keys}, selection, n, ascending);
}

std::vector<std::uint32_t> sort_permutation(std::span<const std::int64_t> keys,
                                            bool ascending) {
  return permutation_impl(keys, 0, ascending, false);
}

std::vector<std::uint32_t> sort_permutation_double(std::span<const double> keys,
                                                   bool ascending) {
  return permutation_impl(keys, 0, ascending, false);
}

std::vector<std::uint32_t> top_n_permutation(
    std::span<const std::int64_t> keys, std::size_t n, bool ascending) {
  return permutation_impl(keys, n, ascending, true);
}

std::vector<std::uint32_t> top_n_permutation_double(
    std::span<const double> keys, std::size_t n, bool ascending) {
  return permutation_impl(keys, n, ascending, true);
}

}  // namespace eidb::exec
