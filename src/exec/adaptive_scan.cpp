#include "exec/adaptive_scan.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace eidb::exec {

namespace {

/// Smoothing factor for the selectivity EMA: reactive enough to follow
/// clustered regions, damped enough to ignore single-chunk noise.
constexpr double kEmaAlpha = 0.5;

/// Runs one chunk with the requested kernel, writing into the word-aligned
/// window of `out` starting at `begin` (64-aligned). Returns matches.
std::size_t run_chunk(ScanVariant v, std::span<const std::int32_t> chunk,
                      std::int32_t lo, std::int32_t hi, BitVector& out,
                      std::size_t begin) {
  EIDB_ASSERT(begin % 64 == 0);
  BitVector local(chunk.size());
  switch (v) {
    case ScanVariant::kBranching: {
      std::vector<std::uint32_t> idx(chunk.size());
      const std::size_t k = scan_branching(chunk, lo, hi, idx.data());
      for (std::size_t j = 0; j < k; ++j) local.set(idx[j]);
      break;
    }
    case ScanVariant::kPredicated: {
      std::vector<std::uint32_t> idx(chunk.size());
      const std::size_t k = scan_predicated(chunk, lo, hi, idx.data());
      for (std::size_t j = 0; j < k; ++j) local.set(idx[j]);
      break;
    }
    case ScanVariant::kAvx2:
      scan_bitmap_avx2(chunk, lo, hi, local);
      break;
    case ScanVariant::kAvx512:
      scan_bitmap_avx512(chunk, lo, hi, local);
      break;
    case ScanVariant::kAuto:
      scan_bitmap_best(chunk, lo, hi, local);
      break;
  }
  std::copy(local.words(), local.words() + local.word_count(),
            out.words() + begin / 64);
  return local.count();
}

}  // namespace

void AdaptiveScan::scan(std::span<const std::int32_t> values, std::int32_t lo,
                        std::int32_t hi, BitVector& out,
                        AdaptiveScanStats& stats) {
  EIDB_EXPECTS(out.size() >= values.size());
  stats = AdaptiveScanStats{};
  ScanVariant current = model_.pick_scan_variant(estimate_);

  for (std::size_t begin = 0; begin < values.size(); begin += chunk_rows_) {
    const std::size_t end = std::min(begin + chunk_rows_, values.size());
    const auto chunk = values.subspan(begin, end - begin);
    const std::size_t matches = run_chunk(current, chunk, lo, hi, out, begin);
    ++stats.chunks;
    stats.variant_per_chunk.push_back(current);

    const double observed =
        static_cast<double>(matches) / static_cast<double>(chunk.size());
    estimate_ = kEmaAlpha * observed + (1 - kEmaAlpha) * estimate_;
    const ScanVariant next = model_.pick_scan_variant(estimate_);
    if (next != current) {
      ++stats.switches;
      current = next;
    }
  }
  stats.final_selectivity_estimate = estimate_;
}

}  // namespace eidb::exec
