#include "exec/fused.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace eidb::exec {

AggResult fused_filter_aggregate(std::span<const std::int64_t> keys,
                                 std::int64_t lo, std::int64_t hi,
                                 std::span<const std::int64_t> values) {
  EIDB_EXPECTS(keys.size() == values.size());
  AggResult r;
  r.min = std::numeric_limits<std::int64_t>::max();
  r.max = std::numeric_limits<std::int64_t>::min();
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(keys[i]) -
                                  static_cast<std::uint64_t>(lo);
    if (shifted <= width) {
      const std::int64_t v = values[i];
      ++r.count;
      r.sum += v;
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }
  if (r.count == 0) r.min = r.max = 0;
  return r;
}

AggResult fused_filter_aggregate_self(std::span<const std::int64_t> values,
                                      std::int64_t lo, std::int64_t hi) {
  return fused_filter_aggregate(values, lo, hi, values);
}

void scan_bitmap_masked64(std::span<const std::int64_t> values,
                          std::int64_t lo, std::int64_t hi,
                          BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked64_counted(values, lo, hi, selection, stats);
}

void scan_bitmap_masked64_counted(std::span<const std::int64_t> values,
                                  std::int64_t lo, std::int64_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats) {
  EIDB_EXPECTS(selection.size() >= values.size());
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  std::uint64_t* words = selection.words();
  const std::size_t n = values.size();
  stats = MaskedScanStats{};
  for (std::size_t w = 0; w * 64 < n; ++w) {
    ++stats.words_total;
    std::uint64_t live = words[w];
    if (live == 0) {
      ++stats.words_skipped;  // no candidates: 64 tuples untouched
      continue;
    }
    std::uint64_t keep = 0;
    // Evaluate only the live candidate bits.
    while (live != 0) {
      const auto j = static_cast<unsigned>(__builtin_ctzll(live));
      live &= live - 1;
      const std::size_t i = w * 64 + j;
      const std::uint64_t shifted = static_cast<std::uint64_t>(values[i]) -
                                    static_cast<std::uint64_t>(lo);
      keep |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] &= keep;
  }
}

}  // namespace eidb::exec
