#include "exec/fused.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "storage/bitpack.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

AggResult fused_filter_aggregate(std::span<const std::int64_t> keys,
                                 std::int64_t lo, std::int64_t hi,
                                 std::span<const std::int64_t> values) {
  EIDB_EXPECTS(keys.size() == values.size());
  AggResult r;
  r.min = std::numeric_limits<std::int64_t>::max();
  r.max = std::numeric_limits<std::int64_t>::min();
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(keys[i]) -
                                  static_cast<std::uint64_t>(lo);
    if (shifted <= width) {
      const std::int64_t v = values[i];
      ++r.count;
      r.sum += v;
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }
  if (r.count == 0) r.min = r.max = 0;
  return r;
}

AggResult fused_filter_aggregate_self(std::span<const std::int64_t> values,
                                      std::int64_t lo, std::int64_t hi) {
  return fused_filter_aggregate(values, lo, hi, values);
}

void scan_bitmap_masked64(std::span<const std::int64_t> values,
                          std::int64_t lo, std::int64_t hi,
                          BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked64_counted(values, lo, hi, selection, stats);
}

namespace {

/// Shared masked-scan core: `pred(i)` decides row i; dead 64-tuple words
/// are skipped without touching the data.
template <typename Pred>
void masked_scan_impl(std::size_t n, BitVector& selection,
                      MaskedScanStats& stats, Pred&& pred) {
  EIDB_EXPECTS(selection.size() >= n);
  std::uint64_t* words = selection.words();
  stats = MaskedScanStats{};
  for (std::size_t w = 0; w * 64 < n; ++w) {
    ++stats.words_total;
    std::uint64_t live = words[w];
    if (live == 0) {
      ++stats.words_skipped;  // no candidates: 64 tuples untouched
      continue;
    }
    std::uint64_t keep = 0;
    // Evaluate only the live candidate bits.
    while (live != 0) {
      const auto j = static_cast<unsigned>(__builtin_ctzll(live));
      live &= live - 1;
      keep |= static_cast<std::uint64_t>(pred(w * 64 + j)) << j;
    }
    words[w] &= keep;
  }
}

}  // namespace

void scan_bitmap_masked64_counted(std::span<const std::int64_t> values,
                                  std::int64_t lo, std::int64_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats) {
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  masked_scan_impl(values.size(), selection, stats, [&](std::size_t i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(values[i]) -
                                  static_cast<std::uint64_t>(lo);
    return shifted <= width;
  });
}

void scan_bitmap_masked32(std::span<const std::int32_t> values,
                          std::int32_t lo, std::int32_t hi,
                          BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked32_counted(values, lo, hi, selection, stats);
}

void scan_bitmap_masked32_counted(std::span<const std::int32_t> values,
                                  std::int32_t lo, std::int32_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats) {
  const std::uint32_t width =
      static_cast<std::uint32_t>(hi) - static_cast<std::uint32_t>(lo);
  masked_scan_impl(values.size(), selection, stats, [&](std::size_t i) {
    const std::uint32_t shifted = static_cast<std::uint32_t>(values[i]) -
                                  static_cast<std::uint32_t>(lo);
    return shifted <= width;
  });
}

void scan_bitmap_masked_double(std::span<const double> values, double lo,
                               double hi, BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked_double_counted(values, lo, hi, selection, stats);
}

void scan_bitmap_masked_double_counted(std::span<const double> values,
                                       double lo, double hi,
                                       BitVector& selection,
                                       MaskedScanStats& stats) {
  masked_scan_impl(values.size(), selection, stats, [&](std::size_t i) {
    return values[i] >= lo && values[i] <= hi;
  });
}

void scan_packed_bitmap_masked_counted(std::span<const std::uint64_t> packed,
                                       unsigned bits, std::size_t count,
                                       std::uint64_t lo, std::uint64_t hi,
                                       BitVector& selection,
                                       MaskedScanStats& stats) {
  EIDB_EXPECTS(selection.size() >= count);
  std::uint64_t* words = selection.words();
  stats = MaskedScanStats{};
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  if (lo > mask) {  // nothing representable can match
    for (std::size_t w = 0; w * 64 < count; ++w) {
      ++stats.words_total;
      words[w] = 0;
    }
    return;
  }
  hi = std::min(hi, mask);
  const std::uint64_t width = hi - lo;

  // Byte-aligned widths compare the packed image in place (the typed
  // loops autovectorize) — the masked counterpart of the fast paths in
  // scan_packed_bitmap_range, kept in sync with the cost model's
  // aligned-width pricing. Reinterpreting the packed words as narrow
  // element arrays matches the little-endian bitpack layout only on
  // little-endian hosts; others fall through to the endian-agnostic
  // block unpack below.
  constexpr bool kLittleEndian =
      std::endian::native == std::endian::little;
  const auto live_word_match = [&](auto* data, std::size_t base,
                                   std::size_t n) {
    std::uint64_t match = 0;
    for (std::size_t j = 0; j < n; ++j)
      match |= static_cast<std::uint64_t>(
                   (static_cast<std::uint64_t>(data[base + j]) - lo) <=
                   width)
               << j;
    return match;
  };

  alignas(64) std::uint64_t buf[64];
  for (std::size_t w = 0; w * 64 < count; ++w) {
    ++stats.words_total;
    const std::uint64_t live = words[w];
    if (live == 0) {
      ++stats.words_skipped;  // dead block: packed words never read
      continue;
    }
    const std::size_t base = w * 64;
    const std::size_t n = std::min<std::size_t>(64, count - base);
    std::uint64_t match = 0;
    if (kLittleEndian && bits == 8) {
      match = live_word_match(
          reinterpret_cast<const std::uint8_t*>(packed.data()), base, n);
    } else if (kLittleEndian && bits == 16) {
      match = live_word_match(
          reinterpret_cast<const std::uint16_t*>(packed.data()), base, n);
    } else if (kLittleEndian && bits == 32) {
      match = live_word_match(
          reinterpret_cast<const std::uint32_t*>(packed.data()), base, n);
    } else if (n == 64) {
      // Unpack the whole block (branch-light, autovectorizes) — cheaper
      // than per-bit random access once a few candidates survive.
      storage::bitunpack_block64(packed, bits, base, buf);
      for (unsigned j = 0; j < 64; ++j)
        match |= static_cast<std::uint64_t>((buf[j] - lo) <= width) << j;
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t v = storage::bitpacked_at(packed, bits, base + j);
        match |= static_cast<std::uint64_t>((v - lo) <= width) << j;
      }
    }
    words[w] = live & match;
  }
}

}  // namespace eidb::exec
