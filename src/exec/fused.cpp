#include "exec/fused.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace eidb::exec {

AggResult fused_filter_aggregate(std::span<const std::int64_t> keys,
                                 std::int64_t lo, std::int64_t hi,
                                 std::span<const std::int64_t> values) {
  EIDB_EXPECTS(keys.size() == values.size());
  AggResult r;
  r.min = std::numeric_limits<std::int64_t>::max();
  r.max = std::numeric_limits<std::int64_t>::min();
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(keys[i]) -
                                  static_cast<std::uint64_t>(lo);
    if (shifted <= width) {
      const std::int64_t v = values[i];
      ++r.count;
      r.sum += v;
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }
  if (r.count == 0) r.min = r.max = 0;
  return r;
}

AggResult fused_filter_aggregate_self(std::span<const std::int64_t> values,
                                      std::int64_t lo, std::int64_t hi) {
  return fused_filter_aggregate(values, lo, hi, values);
}

void scan_bitmap_masked64(std::span<const std::int64_t> values,
                          std::int64_t lo, std::int64_t hi,
                          BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked64_counted(values, lo, hi, selection, stats);
}

namespace {

/// Shared masked-scan core: `pred(i)` decides row i; dead 64-tuple words
/// are skipped without touching the data.
template <typename Pred>
void masked_scan_impl(std::size_t n, BitVector& selection,
                      MaskedScanStats& stats, Pred&& pred) {
  EIDB_EXPECTS(selection.size() >= n);
  std::uint64_t* words = selection.words();
  stats = MaskedScanStats{};
  for (std::size_t w = 0; w * 64 < n; ++w) {
    ++stats.words_total;
    std::uint64_t live = words[w];
    if (live == 0) {
      ++stats.words_skipped;  // no candidates: 64 tuples untouched
      continue;
    }
    std::uint64_t keep = 0;
    // Evaluate only the live candidate bits.
    while (live != 0) {
      const auto j = static_cast<unsigned>(__builtin_ctzll(live));
      live &= live - 1;
      keep |= static_cast<std::uint64_t>(pred(w * 64 + j)) << j;
    }
    words[w] &= keep;
  }
}

}  // namespace

void scan_bitmap_masked64_counted(std::span<const std::int64_t> values,
                                  std::int64_t lo, std::int64_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats) {
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  masked_scan_impl(values.size(), selection, stats, [&](std::size_t i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(values[i]) -
                                  static_cast<std::uint64_t>(lo);
    return shifted <= width;
  });
}

void scan_bitmap_masked32(std::span<const std::int32_t> values,
                          std::int32_t lo, std::int32_t hi,
                          BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked32_counted(values, lo, hi, selection, stats);
}

void scan_bitmap_masked32_counted(std::span<const std::int32_t> values,
                                  std::int32_t lo, std::int32_t hi,
                                  BitVector& selection,
                                  MaskedScanStats& stats) {
  const std::uint32_t width =
      static_cast<std::uint32_t>(hi) - static_cast<std::uint32_t>(lo);
  masked_scan_impl(values.size(), selection, stats, [&](std::size_t i) {
    const std::uint32_t shifted = static_cast<std::uint32_t>(values[i]) -
                                  static_cast<std::uint32_t>(lo);
    return shifted <= width;
  });
}

void scan_bitmap_masked_double(std::span<const double> values, double lo,
                               double hi, BitVector& selection) {
  MaskedScanStats stats;
  scan_bitmap_masked_double_counted(values, lo, hi, selection, stats);
}

void scan_bitmap_masked_double_counted(std::span<const double> values,
                                       double lo, double hi,
                                       BitVector& selection,
                                       MaskedScanStats& stats) {
  masked_scan_impl(values.size(), selection, stats, [&](std::size_t i) {
    return values[i] >= lo && values[i] <= hi;
  });
}

}  // namespace eidb::exec
