#include "exec/scan_kernels.hpp"

#include <immintrin.h>

#include "storage/bitpack.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

std::string variant_name(ScanVariant v) {
  switch (v) {
    case ScanVariant::kBranching:
      return "branching";
    case ScanVariant::kPredicated:
      return "predicated";
    case ScanVariant::kAvx2:
      return "avx2";
    case ScanVariant::kAvx512:
      return "avx512";
    case ScanVariant::kAuto:
      return "auto";
  }
  return "invalid";
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

// -- index kernels -------------------------------------------------------------

std::size_t scan_branching(std::span<const std::int32_t> values,
                           std::int32_t lo, std::int32_t hi,
                           std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] <= hi)
      out[k++] = static_cast<std::uint32_t>(i);
  }
  return k;
}

std::size_t scan_branching64(std::span<const std::int64_t> values,
                             std::int64_t lo, std::int64_t hi,
                             std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] <= hi)
      out[k++] = static_cast<std::uint32_t>(i);
  }
  return k;
}

std::size_t scan_predicated(std::span<const std::int32_t> values,
                            std::int32_t lo, std::int32_t hi,
                            std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[k] = static_cast<std::uint32_t>(i);
    // Unsigned trick: v - lo <= hi - lo iff lo <= v <= hi (no branches).
    const std::uint32_t shifted = static_cast<std::uint32_t>(values[i]) -
                                  static_cast<std::uint32_t>(lo);
    const std::uint32_t width = static_cast<std::uint32_t>(hi) -
                                static_cast<std::uint32_t>(lo);
    k += shifted <= width;
  }
  return k;
}

std::size_t scan_predicated64(std::span<const std::int64_t> values,
                              std::int64_t lo, std::int64_t hi,
                              std::uint32_t* out) {
  std::size_t k = 0;
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[k] = static_cast<std::uint32_t>(i);
    const std::uint64_t shifted = static_cast<std::uint64_t>(values[i]) -
                                  static_cast<std::uint64_t>(lo);
    k += shifted <= width;
  }
  return k;
}

// -- scalar bitmap ---------------------------------------------------------------

void scan_bitmap_scalar(std::span<const std::int32_t> values, std::int32_t lo,
                        std::int32_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  const std::uint32_t width = static_cast<std::uint32_t>(hi) -
                              static_cast<std::uint32_t>(lo);
  std::uint64_t* words = out.words();
  const std::size_t n = values.size();
  for (std::size_t w = 0; w * 64 < n; ++w) {
    std::uint64_t bits = 0;
    const std::size_t end = std::min<std::size_t>(64, n - w * 64);
    for (std::size_t j = 0; j < end; ++j) {
      const std::uint32_t shifted =
          static_cast<std::uint32_t>(values[w * 64 + j]) -
          static_cast<std::uint32_t>(lo);
      bits |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] = bits;
  }
}

void scan_bitmap_scalar64(std::span<const std::int64_t> values,
                          std::int64_t lo, std::int64_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  std::uint64_t* words = out.words();
  const std::size_t n = values.size();
  for (std::size_t w = 0; w * 64 < n; ++w) {
    std::uint64_t bits = 0;
    const std::size_t end = std::min<std::size_t>(64, n - w * 64);
    for (std::size_t j = 0; j < end; ++j) {
      const std::uint64_t shifted =
          static_cast<std::uint64_t>(values[w * 64 + j]) -
          static_cast<std::uint64_t>(lo);
      bits |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] = bits;
  }
}

// -- AVX2 -----------------------------------------------------------------------

#if defined(__AVX2__)
namespace {

// 8-lane int32 in-range mask as the low 8 bits.
inline std::uint32_t range_mask8(const std::int32_t* p, __m256i vlo,
                                 __m256i vhi) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i ge = _mm256_or_si256(_mm256_cmpgt_epi32(v, vlo),
                                     _mm256_cmpeq_epi32(v, vlo));
  const __m256i le = _mm256_or_si256(_mm256_cmpgt_epi32(vhi, v),
                                     _mm256_cmpeq_epi32(v, vhi));
  const __m256i in = _mm256_and_si256(ge, le);
  return static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(in)));
}

// 4-lane int64 in-range mask as the low 4 bits.
inline std::uint32_t range_mask4(const std::int64_t* p, __m256i vlo,
                                 __m256i vhi) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i ge = _mm256_or_si256(_mm256_cmpgt_epi64(v, vlo),
                                     _mm256_cmpeq_epi64(v, vlo));
  const __m256i le = _mm256_or_si256(_mm256_cmpgt_epi64(vhi, v),
                                     _mm256_cmpeq_epi64(v, vhi));
  const __m256i in = _mm256_and_si256(ge, le);
  return static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(in)));
}

}  // namespace

void scan_bitmap_avx2(std::span<const std::int32_t> values, std::int32_t lo,
                      std::int32_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  const __m256i vlo = _mm256_set1_epi32(lo);
  const __m256i vhi = _mm256_set1_epi32(hi);
  const std::size_t n = values.size();
  std::uint64_t* words = out.words();
  std::size_t w = 0;
  for (; (w + 1) * 64 <= n; ++w) {
    const std::int32_t* base = values.data() + w * 64;
    std::uint64_t bits = 0;
    for (unsigned g = 0; g < 8; ++g)
      bits |= static_cast<std::uint64_t>(range_mask8(base + g * 8, vlo, vhi))
              << (g * 8);
    words[w] = bits;
  }
  if (w * 64 < n) {
    const std::uint32_t width = static_cast<std::uint32_t>(hi) -
                                static_cast<std::uint32_t>(lo);
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < n; ++j) {
      const std::uint32_t shifted =
          static_cast<std::uint32_t>(values[w * 64 + j]) -
          static_cast<std::uint32_t>(lo);
      bits |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] = bits;
  }
}

void scan_bitmap_avx2_64(std::span<const std::int64_t> values, std::int64_t lo,
                         std::int64_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  const std::size_t n = values.size();
  std::uint64_t* words = out.words();
  std::size_t w = 0;
  for (; (w + 1) * 64 <= n; ++w) {
    const std::int64_t* base = values.data() + w * 64;
    std::uint64_t bits = 0;
    for (unsigned g = 0; g < 16; ++g)
      bits |= static_cast<std::uint64_t>(range_mask4(base + g * 4, vlo, vhi))
              << (g * 4);
    words[w] = bits;
  }
  if (w * 64 < n) {
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < n; ++j) {
      const std::uint64_t shifted =
          static_cast<std::uint64_t>(values[w * 64 + j]) -
          static_cast<std::uint64_t>(lo);
      bits |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] = bits;
  }
}
#else
void scan_bitmap_avx2(std::span<const std::int32_t> values, std::int32_t lo,
                      std::int32_t hi, BitVector& out) {
  scan_bitmap_scalar(values, lo, hi, out);
}
void scan_bitmap_avx2_64(std::span<const std::int64_t> values, std::int64_t lo,
                         std::int64_t hi, BitVector& out) {
  scan_bitmap_scalar64(values, lo, hi, out);
}
#endif  // __AVX2__

// -- AVX-512 ---------------------------------------------------------------------

#if defined(__AVX512F__)
void scan_bitmap_avx512(std::span<const std::int32_t> values, std::int32_t lo,
                        std::int32_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  const __m512i vlo = _mm512_set1_epi32(lo);
  const __m512i vhi = _mm512_set1_epi32(hi);
  const std::size_t n = values.size();
  std::uint64_t* words = out.words();
  std::size_t w = 0;
  for (; (w + 1) * 64 <= n; ++w) {
    const std::int32_t* base = values.data() + w * 64;
    std::uint64_t bits = 0;
    for (unsigned g = 0; g < 4; ++g) {
      const __m512i v = _mm512_loadu_si512(base + g * 16);
      const __mmask16 m = _mm512_cmple_epi32_mask(vlo, v) &
                          _mm512_cmple_epi32_mask(v, vhi);
      bits |= static_cast<std::uint64_t>(m) << (g * 16);
    }
    words[w] = bits;
  }
  if (w * 64 < n) {
    const std::uint32_t width = static_cast<std::uint32_t>(hi) -
                                static_cast<std::uint32_t>(lo);
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < n; ++j) {
      const std::uint32_t shifted =
          static_cast<std::uint32_t>(values[w * 64 + j]) -
          static_cast<std::uint32_t>(lo);
      bits |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] = bits;
  }
}

void scan_bitmap_avx512_64(std::span<const std::int64_t> values,
                           std::int64_t lo, std::int64_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  const std::size_t n = values.size();
  std::uint64_t* words = out.words();
  std::size_t w = 0;
  for (; (w + 1) * 64 <= n; ++w) {
    const std::int64_t* base = values.data() + w * 64;
    std::uint64_t bits = 0;
    for (unsigned g = 0; g < 8; ++g) {
      const __m512i v = _mm512_loadu_si512(base + g * 8);
      const __mmask8 m = _mm512_cmple_epi64_mask(vlo, v) &
                         _mm512_cmple_epi64_mask(v, vhi);
      bits |= static_cast<std::uint64_t>(m) << (g * 8);
    }
    words[w] = bits;
  }
  if (w * 64 < n) {
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < n; ++j) {
      const std::uint64_t shifted =
          static_cast<std::uint64_t>(values[w * 64 + j]) -
          static_cast<std::uint64_t>(lo);
      bits |= static_cast<std::uint64_t>(shifted <= width) << j;
    }
    words[w] = bits;
  }
}
#else
void scan_bitmap_avx512(std::span<const std::int32_t> values, std::int32_t lo,
                        std::int32_t hi, BitVector& out) {
  scan_bitmap_avx2(values, lo, hi, out);
}
void scan_bitmap_avx512_64(std::span<const std::int64_t> values,
                           std::int64_t lo, std::int64_t hi, BitVector& out) {
  scan_bitmap_avx2_64(values, lo, hi, out);
}
#endif  // __AVX512F__

void scan_bitmap_double(std::span<const double> values, double lo, double hi,
                        BitVector& out) {
  EIDB_EXPECTS(out.size() >= values.size());
  std::uint64_t* words = out.words();
  const std::size_t n = values.size();
  for (std::size_t w = 0; w * 64 < n; ++w) {
    std::uint64_t bits = 0;
    const std::size_t end = std::min<std::size_t>(64, n - w * 64);
    for (std::size_t j = 0; j < end; ++j) {
      const double v = values[w * 64 + j];
      bits |= static_cast<std::uint64_t>(v >= lo && v <= hi) << j;
    }
    words[w] = bits;
  }
}

// -- packed scan -----------------------------------------------------------------

namespace {

// Fast paths for byte-aligned widths: at 8/16/32 bits the packed image *is*
// a contiguous array of narrow unsigned integers, so the scan is a direct
// unsigned SIMD compare with no unpacking at all — the classic SIMD-scan
// result (and the reason E5's curve steps down at aligned widths).

#if defined(__AVX512BW__)
void scan_packed_u8(const std::uint8_t* data, std::size_t count,
                    std::uint8_t lo, std::uint8_t hi, std::uint64_t* words) {
  const __m512i vlo = _mm512_set1_epi8(static_cast<char>(lo));
  const __m512i vhi = _mm512_set1_epi8(static_cast<char>(hi));
  std::size_t w = 0;
  for (; (w + 1) * 64 <= count; ++w) {
    const __m512i v = _mm512_loadu_si512(data + w * 64);
    const __mmask64 m = _mm512_cmp_epu8_mask(vlo, v, _MM_CMPINT_LE) &
                        _mm512_cmp_epu8_mask(v, vhi, _MM_CMPINT_LE);
    words[w] = static_cast<std::uint64_t>(m);
  }
  if (w * 64 < count) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < count; ++j) {
      const std::uint8_t v = data[w * 64 + j];
      bits |= static_cast<std::uint64_t>(v >= lo && v <= hi) << j;
    }
    words[w] = bits;
  }
}

void scan_packed_u16(const std::uint16_t* data, std::size_t count,
                     std::uint16_t lo, std::uint16_t hi,
                     std::uint64_t* words) {
  const __m512i vlo = _mm512_set1_epi16(static_cast<short>(lo));
  const __m512i vhi = _mm512_set1_epi16(static_cast<short>(hi));
  std::size_t w = 0;
  for (; (w + 1) * 64 <= count; ++w) {
    std::uint64_t bits = 0;
    for (unsigned g = 0; g < 2; ++g) {
      const __m512i v = _mm512_loadu_si512(data + w * 64 + g * 32);
      const __mmask32 m = _mm512_cmp_epu16_mask(vlo, v, _MM_CMPINT_LE) &
                          _mm512_cmp_epu16_mask(v, vhi, _MM_CMPINT_LE);
      bits |= static_cast<std::uint64_t>(m) << (g * 32);
    }
    words[w] = bits;
  }
  if (w * 64 < count) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < count; ++j) {
      const std::uint16_t v = data[w * 64 + j];
      bits |= static_cast<std::uint64_t>(v >= lo && v <= hi) << j;
    }
    words[w] = bits;
  }
}
#endif  // __AVX512BW__

#if defined(__AVX512F__)
void scan_packed_u32(const std::uint32_t* data, std::size_t count,
                     std::uint32_t lo, std::uint32_t hi,
                     std::uint64_t* words) {
  const __m512i vlo = _mm512_set1_epi32(static_cast<int>(lo));
  const __m512i vhi = _mm512_set1_epi32(static_cast<int>(hi));
  std::size_t w = 0;
  for (; (w + 1) * 64 <= count; ++w) {
    std::uint64_t bits = 0;
    for (unsigned g = 0; g < 4; ++g) {
      const __m512i v = _mm512_loadu_si512(data + w * 64 + g * 16);
      const __mmask16 m = _mm512_cmp_epu32_mask(vlo, v, _MM_CMPINT_LE) &
                          _mm512_cmp_epu32_mask(v, vhi, _MM_CMPINT_LE);
      bits |= static_cast<std::uint64_t>(m) << (g * 16);
    }
    words[w] = bits;
  }
  if (w * 64 < count) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; w * 64 + j < count; ++j) {
      const std::uint32_t v = data[w * 64 + j];
      bits |= static_cast<std::uint64_t>(v >= lo && v <= hi) << j;
    }
    words[w] = bits;
  }
}
#endif  // __AVX512F__

}  // namespace

void scan_packed_bitmap_range(std::span<const std::uint64_t> packed,
                              unsigned bits, std::size_t value_begin,
                              std::size_t value_end, std::uint64_t lo,
                              std::uint64_t hi, BitVector& out) {
  EIDB_EXPECTS(out.size() >= value_end);
  EIDB_EXPECTS((value_begin & 63) == 0);
  std::uint64_t* words = out.words();
  if (value_begin >= value_end) return;
  // Only the ISA-guarded fast paths consume the range length directly.
  [[maybe_unused]] const std::size_t range = value_end - value_begin;

  // Clamp the predicate into the width's domain.
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  if (lo > mask) {
    // Nothing representable can match.
    for (std::size_t w = value_begin / 64; w * 64 < value_end; ++w)
      words[w] = 0;
    return;
  }
  hi = std::min(hi, mask);

  // Byte-aligned fast paths: direct unsigned SIMD compare on the packed
  // image (no unpack). The 64-aligned range start keeps the word/pointer
  // offsets exact for 8/16/32-bit elements.
#if defined(__AVX512BW__)
  if (bits == 8 && cpu_has_avx512()) {
    scan_packed_u8(
        reinterpret_cast<const std::uint8_t*>(packed.data()) + value_begin,
        range, static_cast<std::uint8_t>(lo), static_cast<std::uint8_t>(hi),
        words + value_begin / 64);
    return;
  }
  if (bits == 16 && cpu_has_avx512()) {
    scan_packed_u16(
        reinterpret_cast<const std::uint16_t*>(packed.data()) + value_begin,
        range, static_cast<std::uint16_t>(lo),
        static_cast<std::uint16_t>(hi), words + value_begin / 64);
    return;
  }
#endif
#if defined(__AVX512F__)
  if (bits == 32 && cpu_has_avx512()) {
    scan_packed_u32(
        reinterpret_cast<const std::uint32_t*>(packed.data()) + value_begin,
        range, static_cast<std::uint32_t>(lo),
        static_cast<std::uint32_t>(hi), words + value_begin / 64);
    return;
  }
#endif

  const std::uint64_t width = hi - lo;
  std::size_t block = value_begin;
  alignas(64) std::uint64_t buf[64];
  for (; block + 64 <= value_end; block += 64) {
    storage::bitunpack_block64(packed, bits, block, buf);
    std::uint64_t bv = 0;
    for (unsigned j = 0; j < 64; ++j)
      bv |= static_cast<std::uint64_t>((buf[j] - lo) <= width) << j;
    words[block / 64] = bv;
  }
  if (block < value_end) {
    std::uint64_t bv = 0;
    for (std::size_t j = 0; block + j < value_end; ++j) {
      const std::uint64_t v = storage::bitpacked_at(packed, bits, block + j);
      bv |= static_cast<std::uint64_t>((v - lo) <= width) << j;
    }
    words[block / 64] = bv;
  }
}

void scan_packed_bitmap(std::span<const std::uint64_t> packed, unsigned bits,
                        std::size_t count, std::uint64_t lo, std::uint64_t hi,
                        BitVector& out) {
  scan_packed_bitmap_range(packed, bits, 0, count, lo, hi, out);
}

// -- dispatch --------------------------------------------------------------------

void scan_bitmap_best(std::span<const std::int32_t> values, std::int32_t lo,
                      std::int32_t hi, BitVector& out) {
  if (cpu_has_avx512())
    scan_bitmap_avx512(values, lo, hi, out);
  else if (cpu_has_avx2())
    scan_bitmap_avx2(values, lo, hi, out);
  else
    scan_bitmap_scalar(values, lo, hi, out);
}

void scan_bitmap_best64(std::span<const std::int64_t> values, std::int64_t lo,
                        std::int64_t hi, BitVector& out) {
  if (cpu_has_avx512())
    scan_bitmap_avx512_64(values, lo, hi, out);
  else if (cpu_has_avx2())
    scan_bitmap_avx2_64(values, lo, hi, out);
  else
    scan_bitmap_scalar64(values, lo, hi, out);
}

ScanVariant choose_variant(double sel) {
  // SIMD always wins for bitmap production when available.
  if (cpu_has_avx512()) return ScanVariant::kAvx512;
  if (cpu_has_avx2()) return ScanVariant::kAvx2;
  // Scalar machines: branching is cheaper when the branch predicts well
  // (selectivity near the extremes; Ross's crossover).
  return (sel < 0.08 || sel > 0.92) ? ScanVariant::kBranching
                                    : ScanVariant::kPredicated;
}

}  // namespace eidb::exec
