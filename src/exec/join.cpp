#include "exec/join.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::exec {

namespace {

/// Inserts the selected rows into `table` in descending row order so the
/// LIFO chains replay ascending during probes: block output matches the
/// nested-loop oracle's (probe asc, build asc) order without a sort.
template <typename JoinTable>
void insert_descending(JoinTable& table, const JoinKeys& keys,
                       const BitVector& selection) {
  const std::uint64_t* words = selection.words();
  for (std::size_t w = selection.word_count(); w-- > 0;) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto j = static_cast<std::size_t>(63 - __builtin_clzll(bits));
      bits &= ~(std::uint64_t{1} << j);
      const std::size_t i = w * 64 + j;
      table.insert(keys.at(i), static_cast<std::uint32_t>(i));
    }
  }
}

}  // namespace

std::vector<JoinPair> hash_join(std::span<const std::int64_t> build_keys,
                                const BitVector& build_selection,
                                std::span<const std::int64_t> probe_keys,
                                const BitVector& probe_selection) {
  // Selections are per-row bitmaps over the key columns: a larger
  // selection would let for_each_set index past the key span.
  EIDB_EXPECTS(build_selection.size() == build_keys.size());
  EIDB_EXPECTS(probe_selection.size() == probe_keys.size());

  JoinHashTable table(build_selection.count());
  build_selection.for_each_set([&](std::size_t i) {
    table.insert(build_keys[i], static_cast<std::uint32_t>(i));
  });

  std::vector<JoinPair> out;
  probe_selection.for_each_set([&](std::size_t i) {
    table.probe(probe_keys[i], [&](std::uint32_t build_row) {
      out.push_back({build_row, static_cast<std::uint32_t>(i)});
    });
  });
  // Chain order is LIFO; normalize to ascending build row per probe row so
  // output order is deterministic and comparable with the oracle.
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  return out;
}

std::vector<JoinPair> nested_loop_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys,
    const BitVector& probe_selection) {
  EIDB_EXPECTS(build_selection.size() == build_keys.size());
  EIDB_EXPECTS(probe_selection.size() == probe_keys.size());
  std::vector<JoinPair> out;
  probe_selection.for_each_set([&](std::size_t p) {
    build_selection.for_each_set([&](std::size_t b) {
      if (build_keys[b] == probe_keys[p])
        out.push_back(
            {static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(p)});
    });
  });
  return out;
}

JoinHashTable build_join_table(const JoinKeys& keys,
                               const BitVector& selection) {
  EIDB_EXPECTS(selection.size() == keys.size());
  JoinHashTable table(selection.count());
  insert_descending(table, keys, selection);
  return table;
}

DenseJoinTable build_dense_join_table(const JoinKeys& keys,
                                      const BitVector& selection,
                                      std::int64_t min_key,
                                      std::int64_t domain) {
  EIDB_EXPECTS(selection.size() == keys.size());
  EIDB_EXPECTS(domain >= 1);
  DenseJoinTable table(min_key, domain);
  insert_descending(table, keys, selection);
  return table;
}

}  // namespace eidb::exec
