#include "exec/join.hpp"

#include <algorithm>

#include "exec/hash_table.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

std::vector<JoinPair> hash_join(std::span<const std::int64_t> build_keys,
                                const BitVector& build_selection,
                                std::span<const std::int64_t> probe_keys,
                                const BitVector& probe_selection) {
  EIDB_EXPECTS(build_selection.size() >= build_keys.size());
  EIDB_EXPECTS(probe_selection.size() >= probe_keys.size());

  JoinHashTable table(build_selection.count());
  build_selection.for_each_set([&](std::size_t i) {
    table.insert(build_keys[i], static_cast<std::uint32_t>(i));
  });

  std::vector<JoinPair> out;
  probe_selection.for_each_set([&](std::size_t i) {
    table.probe(probe_keys[i], [&](std::uint32_t build_row) {
      out.push_back({build_row, static_cast<std::uint32_t>(i)});
    });
  });
  // Chain order is LIFO; normalize to ascending build row per probe row so
  // output order is deterministic and comparable with the oracle.
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.probe_row != b.probe_row) return a.probe_row < b.probe_row;
    return a.build_row < b.build_row;
  });
  return out;
}

std::vector<JoinPair> nested_loop_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys,
    const BitVector& probe_selection) {
  std::vector<JoinPair> out;
  probe_selection.for_each_set([&](std::size_t p) {
    build_selection.for_each_set([&](std::size_t b) {
      if (build_keys[b] == probe_keys[p])
        out.push_back(
            {static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(p)});
    });
  });
  return out;
}

}  // namespace eidb::exec
