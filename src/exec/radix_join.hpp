// Radix-partitioned hash join.
//
// For builds larger than the cache, a single hash table thrashes; the
// classic fix partitions both inputs by key radix so each partition's
// table fits in cache, then joins partition pairs independently (which is
// also the natural parallel decomposition — each pair is a morsel). This
// implements a single-pass radix partition + per-partition join.
//
// Two entry points:
//  * `radix_partition` + `join_partition_blocks` — the composable
//    primitives the executor's vectorized join path drives: partitions
//    are built once per side, then each partition pair streams its
//    matches block-at-a-time into a sink (late materialization, no pair
//    vector), serially or as independent worker-pool tasks.
//  * `radix_hash_join` — the pair-materializing wrapper (kernel bench and
//    differential tests), built on the same primitives.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "exec/join.hpp"
#include "sched/thread_pool.hpp"

namespace eidb::exec {

/// One side of a radix-partitioned join: per partition, the (key, row)
/// pairs of the selected rows, in ascending row order. Partition index is
/// `hash_key(key) & (2^bits - 1)` — hashing balances skewed domains.
struct RadixPartitions {
  std::vector<std::vector<std::pair<std::int64_t, std::uint32_t>>> parts;
};

/// Partitions the selected rows of `keys` into 2^radix_bits partitions.
/// Preconditions: selection.size() == keys.size(), radix_bits in [1, 16].
[[nodiscard]] RadixPartitions radix_partition(const JoinKeys& keys,
                                              const BitVector& selection,
                                              unsigned radix_bits);

/// Joins one build/probe partition pair (same partition index from
/// radix_partition of both sides), streaming matches block-at-a-time into
/// `sink`. Within the partition, probe order is preserved and build rows
/// ascend per probe row. Returns the number of pairs emitted.
std::uint64_t join_partition_blocks(
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& build,
    const std::vector<std::pair<std::int64_t, std::uint32_t>>& probe,
    const JoinBlockSink& sink);

/// Inner equi-join, radix-partitioned into 2^bits partitions.
/// Results match hash_join up to ordering; output is normalized to
/// (probe_row, build_row) ascending like hash_join.
/// Precondition: each selection's size equals its key span's size.
[[nodiscard]] std::vector<JoinPair> radix_hash_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys, const BitVector& probe_selection,
    unsigned radix_bits = 6, sched::ThreadPool* pool = nullptr);

}  // namespace eidb::exec
