// Radix-partitioned hash join.
//
// For builds larger than the cache, a single hash table thrashes; the
// classic fix partitions both inputs by key radix so each partition's
// table fits in cache, then joins partition pairs independently (which is
// also the natural parallel decomposition — each pair is a morsel). This
// implements a single-pass radix partition + per-partition join, with an
// optional worker pool for partition-level parallelism.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/join.hpp"
#include "sched/thread_pool.hpp"

namespace eidb::exec {

/// Inner equi-join, radix-partitioned into 2^bits partitions.
/// Results match hash_join up to ordering; output is normalized to
/// (probe_row, build_row) ascending like hash_join.
[[nodiscard]] std::vector<JoinPair> radix_hash_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys, const BitVector& probe_selection,
    unsigned radix_bits = 6, sched::ThreadPool* pool = nullptr);

}  // namespace eidb::exec
