#include "exec/shared_scan.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "exec/scan_kernels.hpp"
#include "sched/thread_pool.hpp"
#include "util/assert.hpp"

namespace eidb::exec {

namespace {

/// Match mask of one 64-row word of a plain column: bit i set iff
/// lo <= v[base + i] <= hi. `n` < 64 on the table's tail word; bits past
/// `n` stay zero, preserving the BitVector tail invariant.
template <typename T, typename B>
std::uint64_t eval_word(const T* values, std::size_t base, std::size_t n,
                        B lo, B hi) {
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < n; ++i)
    m |= static_cast<std::uint64_t>(values[base + i] >= lo &&
                                    values[base + i] <= hi)
         << i;
  return m;
}

std::uint64_t conjunct_word(const SharedConjunct& c, std::size_t base,
                            std::size_t n) {
  switch (c.kind) {
    case SharedConjunct::Kind::kInt32: {
      const auto lo = static_cast<std::int32_t>(std::clamp<std::int64_t>(
          c.lo, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()));
      const auto hi = static_cast<std::int32_t>(std::clamp<std::int64_t>(
          c.hi, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()));
      return eval_word(c.i32.data(), base, n, lo, hi);
    }
    case SharedConjunct::Kind::kInt64:
      return eval_word(c.i64.data(), base, n, c.lo, c.hi);
    case SharedConjunct::Kind::kDouble:
      return eval_word(c.f64.data(), base, n, c.dlo, c.dhi);
    case SharedConjunct::Kind::kPacked:
      break;  // handled by the packed range kernel below
  }
  EIDB_EXPECTS(false);
  return 0;
}

/// Evaluates one member's conjuncts over the morsel [begin, end) of a
/// fused pass. The first conjunct overwrites the member's selection
/// words; later conjuncts AND in, skipping words the running selection
/// already killed (the fused form of the masked-conjunct optimization).
/// `scratch` (sized to the full row count) hosts packed later-conjunct
/// evaluations, since the packed kernel writes rather than ANDs.
std::uint64_t eval_member_morsel(const SharedQuery& q, std::size_t begin,
                                 std::size_t end, std::size_t rows,
                                 BitVector& scratch) {
  std::uint64_t* sel = q.selection->words();
  const std::size_t wb = begin / 64;
  const std::size_t we = (end + 63) / 64;
  std::uint64_t evaluated = 0;
  bool first = true;
  for (const SharedConjunct& c : q.conjuncts) {
    if (c.kind == SharedConjunct::Kind::kPacked) {
      if (first) {
        scan_packed_bitmap_range(c.packed, c.packed_bits, begin, end, c.ulo,
                                 c.uhi, *q.selection);
        evaluated += end - begin;
      } else {
        // Coalesce runs of live words so the range kernel's per-call
        // setup amortizes; dead words are skipped unevaluated.
        std::size_t w = wb;
        while (w < we) {
          if (sel[w] == 0) {
            ++w;
            continue;
          }
          const std::size_t run_b = w;
          while (w < we && sel[w] != 0) ++w;
          const std::size_t row_b = run_b * 64;
          const std::size_t row_e = std::min(w * 64, rows);
          if (scratch.size() < rows) scratch.resize(rows);
          scan_packed_bitmap_range(c.packed, c.packed_bits, row_b, row_e,
                                   c.ulo, c.uhi, scratch);
          const std::uint64_t* s = scratch.words();
          for (std::size_t k = run_b; k < w; ++k) sel[k] &= s[k];
          evaluated += row_e - row_b;
        }
      }
    } else {
      for (std::size_t w = wb; w < we; ++w) {
        if (!first && sel[w] == 0) continue;
        const std::size_t base = w * 64;
        const std::size_t n = std::min<std::size_t>(64, rows - base);
        const std::uint64_t m = conjunct_word(c, base, n);
        sel[w] = first ? m : (sel[w] & m);
        evaluated += n;
      }
    }
    first = false;
  }
  return evaluated;
}

}  // namespace

void shared_scan(std::size_t rows, std::span<SharedQuery> queries,
                 sched::ThreadPool* pool, std::size_t width,
                 SharedScanStats& stats, std::size_t morsel_rows) {
  stats.evaluated.assign(queries.size(), 0);
  stats.morsels = 0;
  if (rows == 0 || queries.empty()) return;
  for (const SharedQuery& q : queries) {
    EIDB_EXPECTS(q.selection != nullptr && q.selection->size() == rows);
    EIDB_EXPECTS(!q.conjuncts.empty());
  }
  morsel_rows = std::max<std::size_t>(64, morsel_rows / 64 * 64);
  const std::size_t morsels = (rows + morsel_rows - 1) / morsel_rows;
  stats.morsels = morsels;

  std::mutex fold_mu;
  const auto run_chunk = [&](std::size_t mb, std::size_t me) {
    BitVector scratch;  // lazily sized; packed later conjuncts only
    std::vector<std::uint64_t> evaluated(queries.size(), 0);
    for (std::size_t m = mb; m < me; ++m) {
      const std::size_t begin = m * morsel_rows;
      const std::size_t end = std::min(rows, begin + morsel_rows);
      for (std::size_t qi = 0; qi < queries.size(); ++qi)
        evaluated[qi] +=
            eval_member_morsel(queries[qi], begin, end, rows, scratch);
    }
    const std::lock_guard<std::mutex> lock(fold_mu);
    for (std::size_t qi = 0; qi < queries.size(); ++qi)
      stats.evaluated[qi] += evaluated[qi];
  };

  const std::size_t pool_width = pool != nullptr ? pool->thread_count() : 1;
  const std::size_t fan_out =
      width == 0 ? pool_width : std::min(width, pool_width);
  if (pool == nullptr || fan_out <= 1 || morsels <= 1) {
    run_chunk(0, morsels);
    return;
  }
  const std::size_t grain = (morsels + fan_out - 1) / fan_out;
  pool->parallel_for(morsels, grain, run_chunk);
}

}  // namespace eidb::exec
