// Range-predicate scan kernels: the reconfigurable operator of §IV.B.
//
// The paper (citing Ross [17]): "selectivity factors significantly impact
// the success of branch prediction forcing the operator to switch between
// different implementations". Four implementations of the same contract —
// select rows with lo <= v <= hi — are provided:
//
//  * kBranching   — `if (match) out[k++] = i`; fastest when the branch is
//                   predictable (selectivity near 0 or 1), collapses near 50%.
//  * kPredicated  — `out[k] = i; k += match`; branch-free, selectivity-
//                   independent cost.
//  * kAvx2        — 256-bit SIMD compare into a selection bitmap.
//  * kAvx512      — 512-bit SIMD compare; mask registers write the bitmap
//                   directly.
//
// The adaptive dispatcher (kAuto) is the "reconfigurable operator": it picks
// the variant the calibrated cost model predicts cheapest for the estimated
// selectivity and available ISA (experiment E3 measures the envelope).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/bitvector.hpp"

namespace eidb::exec {

enum class ScanVariant : std::uint8_t {
  kBranching,
  kPredicated,
  kAvx2,
  kAvx512,
  kAuto,
};

[[nodiscard]] std::string variant_name(ScanVariant v);

/// ISA support detected at runtime.
[[nodiscard]] bool cpu_has_avx2();
[[nodiscard]] bool cpu_has_avx512();

// -- Index-producing kernels (Ross-style selection) ---------------------------

/// Appends matching row indices to `out` (caller sizes it to values.size()).
/// Returns the number of matches.
std::size_t scan_branching(std::span<const std::int32_t> values,
                           std::int32_t lo, std::int32_t hi,
                           std::uint32_t* out);
std::size_t scan_branching64(std::span<const std::int64_t> values,
                             std::int64_t lo, std::int64_t hi,
                             std::uint32_t* out);

std::size_t scan_predicated(std::span<const std::int32_t> values,
                            std::int32_t lo, std::int32_t hi,
                            std::uint32_t* out);
std::size_t scan_predicated64(std::span<const std::int64_t> values,
                              std::int64_t lo, std::int64_t hi,
                              std::uint32_t* out);

// -- Bitmap-producing kernels --------------------------------------------------

/// Sets bit i of `out` iff lo <= values[i] <= hi. `out` must be sized to
/// values.size(). Scalar reference implementation.
void scan_bitmap_scalar(std::span<const std::int32_t> values, std::int32_t lo,
                        std::int32_t hi, BitVector& out);
void scan_bitmap_scalar64(std::span<const std::int64_t> values,
                          std::int64_t lo, std::int64_t hi, BitVector& out);

/// AVX2 variants; fall back to scalar when the ISA is unavailable.
void scan_bitmap_avx2(std::span<const std::int32_t> values, std::int32_t lo,
                      std::int32_t hi, BitVector& out);
void scan_bitmap_avx2_64(std::span<const std::int64_t> values, std::int64_t lo,
                         std::int64_t hi, BitVector& out);

/// AVX-512 variants; fall back to AVX2/scalar when unavailable.
void scan_bitmap_avx512(std::span<const std::int32_t> values, std::int32_t lo,
                        std::int32_t hi, BitVector& out);
void scan_bitmap_avx512_64(std::span<const std::int64_t> values,
                           std::int64_t lo, std::int64_t hi, BitVector& out);

/// Double-range scan (scalar + AVX2-class autovectorized).
void scan_bitmap_double(std::span<const double> values, double lo, double hi,
                        BitVector& out);

// -- Packed (compressed) scan --------------------------------------------------

/// Scans a bit-packed column (values packed at `bits`, `count` values,
/// FOR-shifted domain) for lo <= v <= hi without materializing the column.
/// Experiment E5: memory traffic shrinks with bits, so narrow widths scan
/// faster *and* cheaper than the 64-bit raw column once the scan is
/// memory-bound.
void scan_packed_bitmap(std::span<const std::uint64_t> packed, unsigned bits,
                        std::size_t count, std::uint64_t lo, std::uint64_t hi,
                        BitVector& out);

/// Range variant over values [value_begin, value_end): writes only the
/// selection words covering that range, so 64-aligned chunks can be
/// scanned by independent workers. `value_begin` must be a multiple of 64.
void scan_packed_bitmap_range(std::span<const std::uint64_t> packed,
                              unsigned bits, std::size_t value_begin,
                              std::size_t value_end, std::uint64_t lo,
                              std::uint64_t hi, BitVector& out);

// -- Dispatch ------------------------------------------------------------------

/// Best bitmap kernel for this host.
void scan_bitmap_best(std::span<const std::int32_t> values, std::int32_t lo,
                      std::int32_t hi, BitVector& out);
void scan_bitmap_best64(std::span<const std::int64_t> values, std::int64_t lo,
                        std::int64_t hi, BitVector& out);

/// The adaptive choice for an index-producing selection at estimated
/// selectivity `sel` (kAuto resolution). Exposed so the optimizer and tests
/// can inspect the decision.
[[nodiscard]] ScanVariant choose_variant(double sel);

}  // namespace eidb::exec
