// Single-pass vectorized aggregation kernels.
//
// The row-at-a-time aggregation path re-reads its inputs once per AggSpec
// (and rescans the key column for min/max on every group-by). These
// kernels instead consume the selection bitmap 64 rows at a word and
// compute *all* of a query's aggregates in ONE pass over the data:
//
//  * full selection words take a branch-free unrolled path (SIMD-friendly:
//    plain `for (j = 0..64)` loops the compiler autovectorizes);
//  * partial words extract the set bits into a tiny index block
//    (count-trailing-zeros), then accumulate column-at-a-time over the
//    block so each input column streams sequentially.
//
// Every input column is therefore touched exactly once per query — the
// DRAM-byte ledger (and the joules attributed from it) drops accordingly.
// Grouped variants share one per-group count across all inputs and accept
// the key range from the cached storage::ColumnStats, eliminating the
// per-call key min/max pass of group_aggregate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/aggregate.hpp"
#include "exec/hash_table.hpp"
#include "exec/parallel.hpp"
#include "storage/bitpack.hpp"
#include "util/bitvector.hpp"

namespace eidb::exec {

/// A typed view of one aggregate input column. int32 (and dictionary-code)
/// inputs are consumed directly — no widened int64 copy. kPacked inputs
/// are bit-packed column images (storage::PackedView): full selection
/// words unpack one 64-value block into registers/stack, so the DRAM
/// traffic of the pass is the packed bytes, not the plain width.
struct AggInput {
  enum class Kind : std::uint8_t { kInt32, kInt64, kDouble, kPacked };
  Kind kind = Kind::kInt64;
  std::span<const std::int32_t> i32;
  std::span<const std::int64_t> i64;
  std::span<const double> f64;
  storage::PackedView packed;

  static AggInput from(std::span<const std::int32_t> v) {
    AggInput in;
    in.kind = Kind::kInt32;
    in.i32 = v;
    return in;
  }
  static AggInput from(std::span<const std::int64_t> v) {
    AggInput in;
    in.kind = Kind::kInt64;
    in.i64 = v;
    return in;
  }
  static AggInput from(std::span<const double> v) {
    AggInput in;
    in.kind = Kind::kDouble;
    in.f64 = v;
    return in;
  }
  static AggInput from(storage::PackedView v) {
    AggInput in;
    in.kind = Kind::kPacked;
    in.packed = v;
    return in;
  }

  [[nodiscard]] bool is_double() const { return kind == Kind::kDouble; }
  [[nodiscard]] std::size_t size() const {
    switch (kind) {
      case Kind::kInt32:
        return i32.size();
      case Kind::kInt64:
        return i64.size();
      case Kind::kDouble:
        return f64.size();
      case Kind::kPacked:
        return packed.count;
    }
    return 0;
  }
};

/// Result of one input of a multi-aggregate pass: `i` for integer inputs,
/// `d` for double inputs (count/sum/min/max cover every AggOp incl. AVG).
struct AggOut {
  bool is_double = false;
  AggResult i;
  AggResultD d;
};

/// Aggregates ALL `inputs` in a single pass over the selection bitmap.
/// Empty selections return zeroed results (min/max = 0), matching
/// aggregate_selected.
[[nodiscard]] std::vector<AggOut> multi_aggregate(
    std::span<const AggInput> inputs, const BitVector& selection);

/// Morsel-parallel multi_aggregate: per-worker partials over 64-aligned
/// morsels, serial merge (the E4-partitioned scheme).
[[nodiscard]] std::vector<AggOut> parallel_multi_aggregate(
    sched::ThreadPool& pool, std::span<const AggInput> inputs,
    const BitVector& selection, std::size_t morsel_rows = kDefaultMorselRows);

/// Known key range (from storage::ColumnStats); `known == false` makes the
/// kernel derive it from the selected rows (one extra pass over the keys).
/// `distinct_hint` (0 = unknown) pre-sizes the hash table on the hash path.
struct KeyRange {
  bool known = false;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::uint64_t distinct_hint = 0;
};

/// Grouped multi-aggregate output. Groups are sorted by key; `counts` is
/// shared by every input (all aggregate the same selected rows). Per input
/// j exactly one of iout[j] / dout[j] is non-empty, aligned with `keys`.
struct GroupedAggs {
  std::vector<std::int64_t> keys;
  std::vector<std::uint64_t> counts;
  std::vector<std::vector<AggResult>> iout;
  std::vector<std::vector<AggResultD>> dout;

  [[nodiscard]] std::size_t group_count() const { return keys.size(); }
};

/// Grouped aggregation of ALL `inputs` in one pass: per selected row the
/// group slot is computed once and every input's accumulator is updated.
/// Dense-array strategy when the key domain is small, hash otherwise
/// (same policy as group_aggregate).
[[nodiscard]] GroupedAggs grouped_multi_aggregate(
    std::span<const std::int64_t> keys, std::span<const AggInput> inputs,
    const BitVector& selection, KeyRange range = {},
    GroupStrategy strategy = GroupStrategy::kAuto);

/// int32 / dictionary-code keys, consumed directly (no widened key copy).
[[nodiscard]] GroupedAggs grouped_multi_aggregate32(
    std::span<const std::int32_t> keys, std::span<const AggInput> inputs,
    const BitVector& selection, KeyRange range = {},
    GroupStrategy strategy = GroupStrategy::kAuto);

/// Morsel-parallel grouped multi-aggregate: per-worker dense accumulators
/// (small domains) or hash tables, merged serially by key.
[[nodiscard]] GroupedAggs parallel_grouped_multi_aggregate(
    sched::ThreadPool& pool, std::span<const std::int64_t> keys,
    std::span<const AggInput> inputs, const BitVector& selection,
    KeyRange range = {}, std::size_t morsel_rows = kDefaultMorselRows);

[[nodiscard]] GroupedAggs parallel_grouped_multi_aggregate32(
    sched::ThreadPool& pool, std::span<const std::int32_t> keys,
    std::span<const AggInput> inputs, const BitVector& selection,
    KeyRange range = {}, std::size_t morsel_rows = kDefaultMorselRows);

/// Bit-packed key column, decoded per selected row (reference + packed
/// value): the key column's DRAM traffic is its packed image. Output keys
/// are the decoded values, exactly as the plain-key overloads produce.
[[nodiscard]] GroupedAggs grouped_multi_aggregate_packed(
    const storage::PackedView& keys, std::span<const AggInput> inputs,
    const BitVector& selection, KeyRange range = {},
    GroupStrategy strategy = GroupStrategy::kAuto);

[[nodiscard]] GroupedAggs parallel_grouped_multi_aggregate_packed(
    sched::ThreadPool& pool, const storage::PackedView& keys,
    std::span<const AggInput> inputs, const BitVector& selection,
    KeyRange range = {}, std::size_t morsel_rows = kDefaultMorselRows);

/// Gather-based aggregation sink for the late-materialized join pipeline
/// (query::Executor's vectorized join path): matches arrive as blocks of
/// row-id tuples — one row id per joined *side* — and every value —
/// group-key parts and aggregate inputs alike — is gathered from its
/// column by row id, so no pair vector and no widened key copy is ever
/// materialized. Side 0 is the probe (FROM) table; sides 1..k are the
/// build tables of a (possibly multi-way) join chain in execution order.
/// Accumulation state and output shapes are shared with the bitmap
/// kernels: a grouped join produces exactly the GroupedAggs a base-table
/// GROUP BY would.
class JoinAggregator {
 public:
  /// One aggregate input, gathered by the row id of its side.
  struct Input {
    AggInput column;
    std::size_t side = 0;  ///< 0 = probe table, i = i-th build table.
  };
  /// One part of the (possibly composite) group key:
  /// key = Σ (column[row] - offset) * stride over the parts — the
  /// executor's stride-composite layout. Single keys use offset 0,
  /// stride 1 so the emitted key is the column value itself.
  struct KeyPart {
    AggInput column;  ///< int32 / int64 / packed (doubles cannot key).
    std::size_t side = 0;
    std::int64_t offset = 0;
    std::int64_t stride = 1;
  };

  /// Global aggregates: every match lands in one implicit group (key 0);
  /// finish() emits exactly one group even with zero matches.
  explicit JoinAggregator(std::vector<Input> inputs);
  /// Grouped aggregates: dense slot resolution when `range` is known and
  /// spans less than kDenseDomainLimit (the bitmap kernels' policy), hash
  /// resolution otherwise. finish() emits only non-empty groups.
  JoinAggregator(std::vector<Input> inputs, std::vector<KeyPart> key,
                 KeyRange range);

  /// Accumulates one block of single-join matches (any count; consumed in
  /// bounded sub-blocks internally). Side 0 = probe, side 1 = build.
  void add_block(const std::uint32_t* build_rows,
                 const std::uint32_t* probe_rows, std::size_t count);

  /// Multi-way variant: `rows[s][i]` is match i's row id on side s (the
  /// join chain's tuple layout; `rows` must cover every side an Input or
  /// KeyPart references).
  void add_block(const std::uint32_t* const* rows, std::size_t count);

  /// Folds a compatible (same-spec) aggregator's partial state into this
  /// one — the morsel-parallel probe merge.
  void merge_from(const JoinAggregator& other);

  [[nodiscard]] std::uint64_t pair_count() const { return pairs_; }

  /// Grouped output, sorted by key; shapes match the bitmap kernels'.
  [[nodiscard]] GroupedAggs finish() const;

 private:
  struct IntAcc {
    std::vector<std::int64_t> sum, mn, mx;
  };
  struct DblAcc {
    std::vector<double> sum, mn, mx;
  };
  void ensure(std::size_t slots);
  std::uint32_t resolve(std::int64_t key);

  std::vector<Input> inputs_;
  std::vector<KeyPart> key_;
  bool grouped_ = false;
  bool dense_ = false;
  std::int64_t dense_min_ = 0;
  HashTable<std::uint32_t> slots_;         // hash strategy only
  std::vector<std::int64_t> slot_keys_;    // hash strategy: key per slot
  std::uint32_t next_ = 0;
  std::vector<std::uint64_t> counts_;
  std::vector<IntAcc> iacc_;
  std::vector<DblAcc> dacc_;
  std::uint64_t pairs_ = 0;
};

}  // namespace eidb::exec
