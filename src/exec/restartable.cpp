#include "exec/restartable.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace eidb::exec {

namespace {

struct Partial {
  AggResult agg;
  std::uint64_t next_morsel = 0;

  Partial() {
    agg.min = std::numeric_limits<std::int64_t>::max();
    agg.max = std::numeric_limits<std::int64_t>::min();
  }

  void absorb(std::span<const std::int64_t> values,
              const BitVector& selection, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (!selection.test(i)) continue;
      const std::int64_t v = values[i];
      ++agg.count;
      agg.sum += v;
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
  }

  [[nodiscard]] AggResult finish() const {
    AggResult out = agg;
    if (out.count == 0) out.min = out.max = 0;
    return out;
  }
};

}  // namespace

AggResult RestartableAggregation::run(std::span<const std::int64_t> values,
                                      const BitVector& selection,
                                      const FaultInjector& fault,
                                      RestartStats& stats,
                                      std::uint64_t max_restarts) const {
  EIDB_EXPECTS(morsel_rows_ >= 1);
  EIDB_EXPECTS(checkpoint_every_ >= 1);
  const std::uint64_t morsels =
      (values.size() + morsel_rows_ - 1) / morsel_rows_;
  stats.morsels_total = morsels;

  Partial live;
  Partial checkpoint;  // last durable snapshot
  std::uint64_t restarts = 0;

  while (live.next_morsel < morsels) {
    const std::uint64_t m = live.next_morsel;
    if (fault && fault(m)) {
      // Crash: lose everything since the checkpoint.
      if (++restarts > max_restarts)
        throw Error("restartable aggregation exceeded max restarts");
      ++stats.restarts;
      stats.morsels_reprocessed += live.next_morsel - checkpoint.next_morsel;
      live = checkpoint;
      continue;
    }
    const std::size_t begin = static_cast<std::size_t>(m) * morsel_rows_;
    const std::size_t end = std::min(begin + morsel_rows_, values.size());
    live.absorb(values, selection, begin, end);
    ++live.next_morsel;
    ++stats.morsels_processed;
    if (live.next_morsel % checkpoint_every_ == 0) {
      checkpoint = live;
      ++stats.checkpoints_taken;
    }
  }
  return live.finish();
}

AggResult RestartableAggregation::run_from_scratch(
    std::span<const std::int64_t> values, const BitVector& selection,
    const FaultInjector& fault, RestartStats& stats,
    std::uint64_t max_restarts) const {
  EIDB_EXPECTS(morsel_rows_ >= 1);
  const std::uint64_t morsels =
      (values.size() + morsel_rows_ - 1) / morsel_rows_;
  stats.morsels_total = morsels;

  std::uint64_t restarts = 0;
restart:
  Partial live;
  while (live.next_morsel < morsels) {
    if (fault && fault(live.next_morsel)) {
      if (++restarts > max_restarts)
        throw Error("aggregation exceeded max restarts");
      ++stats.restarts;
      stats.morsels_reprocessed += live.next_morsel;
      goto restart;
    }
    const std::size_t begin =
        static_cast<std::size_t>(live.next_morsel) * morsel_rows_;
    const std::size_t end = std::min(begin + morsel_rows_, values.size());
    live.absorb(values, selection, begin, end);
    ++live.next_morsel;
    ++stats.morsels_processed;
  }
  return live.finish();
}

}  // namespace eidb::exec
