// Open-addressing linear-probe hash table, int64 keys.
//
// Purpose-built for group-by and hash joins: power-of-two capacity, Fibonacci
// hashing, tombstone-free (build once, probe many — tables are immutable
// during the probe phase, matching the operators' bulk execution model).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace eidb::exec {

[[nodiscard]] inline std::uint64_t hash_key(std::int64_t key) {
  // Fibonacci (golden-ratio) multiplicative hashing with an xor fold.
  auto x = static_cast<std::uint64_t>(key);
  x ^= x >> 33;
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  return x;
}

/// Hash map keyed by int64 with value payload V.
template <typename V>
class HashTable {
 public:
  /// `expected` entries; the table never rehashes below 70% load.
  explicit HashTable(std::size_t expected = 16) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    slots_.resize(cap);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Returns the value for `key`, inserting a default-constructed one (then
  /// calling `on_insert(value)`) if absent.
  template <typename OnInsert>
  V& get_or_insert(std::int64_t key, OnInsert&& on_insert) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_key(key) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = V{};
        on_insert(s.value);
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
      i = (i + 1) & mask;
    }
  }

  V& get_or_insert(std::int64_t key) {
    return get_or_insert(key, [](V&) {});
  }

  /// Pointer to the value for `key`, or nullptr.
  [[nodiscard]] V* find(std::int64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_key(key) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask;
    }
  }
  [[nodiscard]] const V* find(std::int64_t key) const {
    return const_cast<HashTable*>(this)->find(key);
  }

  /// Visits every (key, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.used) fn(s.key, s.value);
  }

 private:
  struct Slot {
    std::int64_t key = 0;
    V value{};
    bool used = false;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = hash_key(s.key) & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// Multimap variant for hash joins: each key maps to a chain of uint32 row
/// ids stored in a shared arena (cache-friendly, no per-node allocation).
class JoinHashTable {
 public:
  explicit JoinHashTable(std::size_t expected_rows = 16)
      : heads_(expected_rows) {
    chain_.reserve(expected_rows);
  }

  /// Inserts (key -> row).
  void insert(std::int64_t key, std::uint32_t row) {
    auto& head = heads_.get_or_insert(key, [](std::uint32_t& h) {
      h = kEnd;
    });
    chain_.push_back({row, head});
    head = static_cast<std::uint32_t>(chain_.size() - 1);
  }

  /// Calls fn(row) for every row with this key.
  template <typename Fn>
  void probe(std::int64_t key, Fn&& fn) const {
    const std::uint32_t* head = heads_.find(key);
    if (head == nullptr) return;
    for (std::uint32_t at = *head; at != kEnd; at = chain_[at].next)
      fn(chain_[at].row);
  }

  [[nodiscard]] std::size_t key_count() const { return heads_.size(); }
  [[nodiscard]] std::size_t row_count() const { return chain_.size(); }

 private:
  static constexpr std::uint32_t kEnd = 0xffffffffu;
  struct Link {
    std::uint32_t row;
    std::uint32_t next;
  };
  HashTable<std::uint32_t> heads_;
  std::vector<Link> chain_;
};

}  // namespace eidb::exec
