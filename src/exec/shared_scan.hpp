// Fused multi-query scan: one chunked pass over a table's predicate
// columns feeds many concurrent queries' selection bitmaps.
//
// Under heavy concurrent traffic the scan — not the query — is the unit
// to amortize (Perach et al.'s bulk-bitwise PIM work and Mutlu's
// "Memory-Centric Computing", PAPERS.md): N compatible queries over the
// same fact table should pay the table's DRAM bytes once. The driver
// walks the table in 64-aligned morsels; within a morsel every member
// query's conjuncts are evaluated while the column chunk is cache-
// resident, so the first member's touch is the DRAM read and members
// 2..N re-read from cache. Morsels fan out over the engine-shared
// sched::ThreadPool; morsel boundaries are 64-aligned, so no selection
// word is ever shared between workers.
//
// The driver is purely mechanical: callers (query/shared_scan) bind
// predicates to column representations, decide what is scanned, and own
// all ledger accounting — the charge-once rule and the fair attribution
// of the single DRAM pass live in the query layer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvector.hpp"

namespace eidb::sched {
class ThreadPool;
}  // namespace eidb::sched

namespace eidb::exec {

/// One conjunct of one member query, bound to the representation the
/// fused pass streams. Exactly one span is active, per `kind`; bounds are
/// inclusive in that representation's domain (packed bounds are already
/// reference-shifted into the image's unsigned domain).
struct SharedConjunct {
  enum class Kind : std::uint8_t { kInt32, kInt64, kDouble, kPacked };
  Kind kind = Kind::kInt32;
  std::span<const std::int32_t> i32;
  std::span<const std::int64_t> i64;
  std::span<const double> f64;
  std::span<const std::uint64_t> packed;  ///< Bit-packed image words.
  unsigned packed_bits = 0;
  std::int64_t lo = 0;   ///< Integer bounds (kInt32 values are clamped).
  std::int64_t hi = 0;
  std::uint64_t ulo = 0; ///< Packed-domain bounds (kPacked only).
  std::uint64_t uhi = 0;
  double dlo = 0;        ///< Double bounds (kDouble only).
  double dhi = 0;
};

/// One member query of a fused pass: its unpruned conjuncts and the
/// selection bitmap it owns. `selection` must be sized to the table's row
/// count; its content is overwritten (a member with no conjuncts is the
/// caller's business — do not pass it here).
struct SharedQuery {
  std::vector<SharedConjunct> conjuncts;
  BitVector* selection = nullptr;
};

struct SharedScanStats {
  std::uint64_t morsels = 0;
  /// Rows each member actually evaluated, aligned with the query vector:
  /// the first conjunct visits every row; later conjuncts skip 64-row
  /// words the running selection already killed. Feeds per-member cycle
  /// accounting in the query layer.
  std::vector<std::uint64_t> evaluated;
};

/// Runs the fused pass over `rows` rows for every member of `queries`.
/// `width` caps the morsel fan-out (0 = the pool's width); pool == nullptr
/// runs serially. Bit-for-bit: each member's selection equals the AND of
/// its conjuncts' exact range matches — identical to what the scan-filter
/// operator's kernels produce for the same bounds.
void shared_scan(std::size_t rows, std::span<SharedQuery> queries,
                 sched::ThreadPool* pool, std::size_t width,
                 SharedScanStats& stats,
                 std::size_t morsel_rows = 32 * 1024);

}  // namespace eidb::exec
