// Hash equi-join over integer key columns.
//
// Two generations of API live here:
//
//  * The pair-materializing functions (`hash_join`, `nested_loop_join`)
//    return every match as a `JoinPair` vector. `nested_loop_join` is the
//    test oracle; `hash_join` remains as the legacy executor arm and a
//    kernel benchmark baseline.
//  * The block-at-a-time pipeline (`JoinKeys`, `build_join_table`,
//    `probe_join_blocks`) never materializes the pair set: matches are
//    streamed to a sink in bounded blocks (late materialization), keys are
//    consumed through a typed view that reads int32/int64/dictionary-code
//    spans or bit-packed column images in place — no widened int64 copy —
//    and the probe range is addressable in 64-row selection words so the
//    executor can drive it morsel-parallel.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "exec/hash_table.hpp"
#include "storage/bitpack.hpp"
#include "util/assert.hpp"
#include "util/bitvector.hpp"

namespace eidb::exec {

/// One matched pair: row index on the build side, row index on the probe
/// side.
struct JoinPair {
  std::uint32_t build_row;
  std::uint32_t probe_row;
};

/// Inner hash join: builds on `build_keys` rows selected by
/// `build_selection`, probes with `probe_keys` rows selected by
/// `probe_selection`. Pairs are emitted in probe order.
/// Precondition: each selection's size equals its key span's size.
[[nodiscard]] std::vector<JoinPair> hash_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys, const BitVector& probe_selection);

/// Reference nested-loop join (test oracle; O(n*m)).
/// Precondition: each selection's size equals its key span's size.
[[nodiscard]] std::vector<JoinPair> nested_loop_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys, const BitVector& probe_selection);

// ---------------------------------------------------------------------------
// Block-at-a-time join pipeline.
// ---------------------------------------------------------------------------

/// Typed, possibly bit-packed view of an integer join-key column. The
/// executor hands both sides to the kernels through this view, so packed
/// key columns (storage::EncodedSegment images) are decoded per accessed
/// row — the column's DRAM traffic is its packed image, and the widened
/// int64 copy of the pre-vectorized join path is gone.
class JoinKeys {
 public:
  static JoinKeys from(std::span<const std::int32_t> v) {
    JoinKeys k;
    k.kind_ = Kind::kInt32;
    k.i32_ = v;
    return k;
  }
  static JoinKeys from(std::span<const std::int64_t> v) {
    JoinKeys k;
    k.kind_ = Kind::kInt64;
    k.i64_ = v;
    return k;
  }
  static JoinKeys from(storage::PackedView v) {
    JoinKeys k;
    k.kind_ = Kind::kPacked;
    k.packed_ = v;
    return k;
  }
  /// Dictionary codes viewed through a cross-dictionary translation:
  /// at(i) == remap[codes[i]]. This is how a build side whose strings (or
  /// doubles) were encoded against a different dictionary joins in the
  /// probe side's code domain — codes the probe dictionary lacks remap to
  /// -1, which no probe code (always >= 0) ever equals, so missing keys
  /// fall out of every arm without a special case. `remap` must outlive
  /// the view and cover [0, max(codes)].
  static JoinKeys remapped(std::span<const std::int32_t> codes,
                           std::span<const std::int32_t> remap) {
    JoinKeys k;
    k.kind_ = Kind::kRemapped;
    k.i32_ = codes;
    k.remap_ = remap;
    return k;
  }

  [[nodiscard]] std::int64_t at(std::size_t i) const {
    switch (kind_) {
      case Kind::kInt32:
        return i32_[i];
      case Kind::kInt64:
        return i64_[i];
      case Kind::kPacked:
        return packed_.value_at(i);
      case Kind::kRemapped:
        return remap_[static_cast<std::size_t>(i32_[i])];
    }
    return 0;
  }
  [[nodiscard]] std::size_t size() const {
    switch (kind_) {
      case Kind::kInt32:
      case Kind::kRemapped:
        return i32_.size();
      case Kind::kInt64:
        return i64_.size();
      case Kind::kPacked:
        return packed_.count;
    }
    return 0;
  }

 private:
  enum class Kind : std::uint8_t { kInt32, kInt64, kPacked, kRemapped };
  Kind kind_ = Kind::kInt64;
  std::span<const std::int32_t> i32_;
  std::span<const std::int64_t> i64_;
  std::span<const std::int32_t> remap_;
  storage::PackedView packed_;
};

/// Block size of the late-materialized pipeline: big enough to amortize
/// the sink call, small enough that the match buffers stay in L1.
inline constexpr std::size_t kJoinBlockRows = 1024;

/// Sink for one block of matches: `build_rows[i]` joined `probe_rows[i]`
/// for i < count (count <= kJoinBlockRows).
using JoinBlockSink = std::function<void(
    const std::uint32_t* build_rows, const std::uint32_t* probe_rows,
    std::size_t count)>;

/// Builds the probe-side hash table over the selected build rows. Rows are
/// inserted in descending order so the LIFO chains replay ascending during
/// probes: block output matches the nested-loop oracle's
/// (probe asc, build asc) order without a sort.
/// Precondition: selection.size() == keys.size().
[[nodiscard]] JoinHashTable build_join_table(const JoinKeys& keys,
                                             const BitVector& selection);

/// Direct-address join table for dense build-key domains (dimension
/// tables with contiguous surrogate keys, the star-schema norm): the
/// chain heads are an array indexed by key - min, so a probe is one
/// bounds check and one load — no hashing, no collision chains. Memory
/// is 4 bytes per domain value; the cost model gates how sparse a domain
/// may be before this arm is dropped for hashing.
class DenseJoinTable {
 public:
  /// Table over the inclusive key domain [min_key, min_key + domain).
  DenseJoinTable(std::int64_t min_key, std::int64_t domain)
      : min_(min_key), heads_(static_cast<std::size_t>(domain), kEnd) {}

  /// Inserts (key -> row). Precondition: key inside the domain.
  void insert(std::int64_t key, std::uint32_t row) {
    const auto slot = static_cast<std::size_t>(offset_of(key));
    chain_.push_back({row, heads_[slot]});
    heads_[slot] = static_cast<std::uint32_t>(chain_.size() - 1);
  }

  /// Calls fn(row) for every row with this key; out-of-domain keys
  /// simply match nothing.
  template <typename Fn>
  void probe(std::int64_t key, Fn&& fn) const {
    const std::uint64_t slot = offset_of(key);
    if (slot >= heads_.size()) return;
    for (std::uint32_t at = heads_[slot]; at != kEnd; at = chain_[at].next)
      fn(chain_[at].row);
  }

  [[nodiscard]] std::size_t row_count() const { return chain_.size(); }

 private:
  static constexpr std::uint32_t kEnd = 0xffffffffu;
  struct Link {
    std::uint32_t row;
    std::uint32_t next;
  };
  /// key - min in unsigned arithmetic: exact modular wraparound, so a
  /// probe key arbitrarily far outside the domain rejects via the bounds
  /// check instead of overflowing signed subtraction (UB).
  [[nodiscard]] std::uint64_t offset_of(std::int64_t key) const {
    return static_cast<std::uint64_t>(key) - static_cast<std::uint64_t>(min_);
  }

  std::int64_t min_;
  std::vector<std::uint32_t> heads_;
  std::vector<Link> chain_;
};

/// Dense counterpart of build_join_table: same descending insertion so
/// probes replay build rows ascending.
/// Preconditions: selection.size() == keys.size(); every selected key in
/// [min_key, min_key + domain).
[[nodiscard]] DenseJoinTable build_dense_join_table(const JoinKeys& keys,
                                                    const BitVector& selection,
                                                    std::int64_t min_key,
                                                    std::int64_t domain);

/// Probes selection words [word_begin, word_end) against `table` (a
/// JoinHashTable or DenseJoinTable), streaming matches into `sink`
/// block-at-a-time. `limit_pairs` (0 = unlimited) stops after that many
/// matches — the LIMIT early-exit for projections. Returns the number of
/// pairs emitted. Thread-safe for concurrent calls over disjoint word
/// ranges (the executor's morsel-parallel probe).
/// Precondition: probe_selection.size() == probe_keys.size().
template <typename JoinTable>
std::uint64_t probe_join_blocks(const JoinTable& table,
                                const JoinKeys& probe_keys,
                                const BitVector& probe_selection,
                                std::size_t word_begin, std::size_t word_end,
                                const JoinBlockSink& sink,
                                std::uint64_t limit_pairs = 0) {
  EIDB_EXPECTS(probe_selection.size() == probe_keys.size());
  std::uint32_t bld[kJoinBlockRows];
  std::uint32_t prb[kJoinBlockRows];
  std::size_t k = 0;
  std::uint64_t pairs = 0;
  const auto flush = [&] {
    if (k != 0) {
      sink(bld, prb, k);
      k = 0;
    }
  };
  const std::uint64_t* words = probe_selection.words();
  const std::size_t end = std::min(word_end, probe_selection.word_count());
  for (std::size_t w = word_begin; w < end; ++w) {
    std::uint64_t bits = words[w];
    if (bits == 0) continue;
    const std::size_t base = w * 64;
    while (bits != 0) {
      const auto j = static_cast<std::size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const std::size_t i = base + j;
      table.probe(probe_keys.at(i), [&](std::uint32_t build_row) {
        if (limit_pairs != 0 && pairs >= limit_pairs) return;
        bld[k] = build_row;
        prb[k] = static_cast<std::uint32_t>(i);
        ++pairs;
        if (++k == kJoinBlockRows) flush();
      });
      if (limit_pairs != 0 && pairs >= limit_pairs) {
        flush();
        return pairs;
      }
    }
  }
  flush();
  return pairs;
}

}  // namespace eidb::exec
