// Hash equi-join over int64 key columns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvector.hpp"

namespace eidb::exec {

/// One matched pair: row index on the build side, row index on the probe
/// side.
struct JoinPair {
  std::uint32_t build_row;
  std::uint32_t probe_row;
};

/// Inner hash join: builds on `build_keys` rows selected by
/// `build_selection`, probes with `probe_keys` rows selected by
/// `probe_selection`. Pairs are emitted in probe order.
[[nodiscard]] std::vector<JoinPair> hash_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys, const BitVector& probe_selection);

/// Reference nested-loop join (test oracle; O(n*m)).
[[nodiscard]] std::vector<JoinPair> nested_loop_join(
    std::span<const std::int64_t> build_keys, const BitVector& build_selection,
    std::span<const std::int64_t> probe_keys, const BitVector& probe_selection);

}  // namespace eidb::exec
