// Vectorized arithmetic expressions over columns.
//
// Supports the aggregate-input arithmetic analytics needs (e.g. SSB's
// `SUM(revenue * (1 - discount))`): +, -, *, / over column references and
// numeric literals, evaluated column-at-a-time into a double buffer.
// Integer columns are widened to double at the leaves; strings are
// rejected at bind time.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/table.hpp"

namespace eidb::exec {

enum class ExprKind : std::uint8_t { kColumn, kLiteral, kBinary };
enum class ExprOp : std::uint8_t { kAdd, kSub, kMul, kDiv };

/// Immutable expression tree node (shared_ptr-linked, cheap to copy).
class Expr {
 public:
  /// Leaf: column reference by name.
  [[nodiscard]] static std::shared_ptr<const Expr> column(std::string name);
  /// Leaf: numeric literal.
  [[nodiscard]] static std::shared_ptr<const Expr> literal(double value);
  /// Interior: binary arithmetic.
  [[nodiscard]] static std::shared_ptr<const Expr> binary(
      ExprOp op, std::shared_ptr<const Expr> lhs,
      std::shared_ptr<const Expr> rhs);

  [[nodiscard]] ExprKind kind() const { return kind_; }
  [[nodiscard]] const std::string& column_name() const { return name_; }
  [[nodiscard]] double literal_value() const { return value_; }
  [[nodiscard]] ExprOp op() const { return op_; }
  [[nodiscard]] const Expr& lhs() const { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const { return *rhs_; }

  /// Column names referenced anywhere in the tree.
  void collect_columns(std::vector<std::string>& out) const;

  /// Human-readable rendering, fully parenthesized.
  [[nodiscard]] std::string to_string() const;

 private:
  Expr() = default;
  ExprKind kind_ = ExprKind::kLiteral;
  std::string name_;
  double value_ = 0;
  ExprOp op_ = ExprOp::kAdd;
  std::shared_ptr<const Expr> lhs_;
  std::shared_ptr<const Expr> rhs_;
};

/// Evaluates `expr` over every row of `table` into `out` (resized to the
/// row count). Throws eidb::Error for unknown or string columns.
/// Division by zero follows IEEE (inf/nan), as analytics engines do.
void evaluate_expression(const Expr& expr, const storage::Table& table,
                         std::vector<double>& out);

}  // namespace eidb::exec
