#include "txn/conversation.hpp"

#include "util/assert.hpp"

namespace eidb::txn {

Conversation::~Conversation() {
  if (pin_.state == TxnState::kActive) base_.abort(pin_);
}

std::optional<std::int64_t> Conversation::read(std::int64_t key) const {
  // 1. Own overlay.
  if (const auto it = overlay_.find(key); it != overlay_.end())
    return it->second;
  // 2. Attached overlays, in attach order.
  for (const auto& other : attachments_) {
    if (const auto it = other->overlay_.find(key); it != other->overlay_.end())
      return it->second;
  }
  // 3. Base snapshot at this conversation's birth (the pin transaction).
  return base_.read(pin_, key);
}

void Conversation::write(std::int64_t key, std::int64_t value) {
  overlay_[key] = value;
}

void Conversation::attach(const std::shared_ptr<const Conversation>& other) {
  EIDB_EXPECTS(other != nullptr);
  if (!other->published())
    throw Error("conversation '" + other->name() + "' is not published");
  attachments_.push_back(other);
}

bool Conversation::merge_into_base() {
  if (overlay_.empty()) return true;
  // Validate against this conversation's snapshot: base commits to our
  // write set since the conversation opened must fail the merge.
  Transaction txn = base_.begin_at(pin_.read_ts);
  for (const auto& [key, value] : overlay_) {
    if (!base_.write(txn, key, value)) {
      base_.abort(txn);
      return false;  // foreign intent; caller may retry
    }
  }
  if (!base_.commit(txn).has_value()) return false;
  overlay_.clear();
  // Rebase the snapshot pin so subsequent reads see the merged state
  // (otherwise cleared overlay keys would read stale base versions).
  base_.abort(pin_);
  pin_ = base_.begin();
  return true;
}

std::shared_ptr<Conversation> ConversationManager::open(
    const std::string& name) {
  if (conversations_.contains(name))
    throw Error("conversation exists: " + name);
  auto conv = std::shared_ptr<Conversation>(new Conversation(name, base_));
  conversations_[name] = conv;
  return conv;
}

std::shared_ptr<const Conversation> ConversationManager::find(
    const std::string& name) const {
  const auto it = conversations_.find(name);
  if (it == conversations_.end() || !it->second->published()) return nullptr;
  return it->second;
}

}  // namespace eidb::txn
