// Synchronization primitives: the baselines of experiment E4.
//
// §III of the paper: "many of the internal data structures are based on
// traditional synchronization methods like locks and latches ... Even
// read-only synchronization already shows a significant serial part" [6].
// These are the real primitives; their measured critical-section costs
// calibrate the contention simulator (hw::sync_sim).
#pragma once

#include <atomic>
#include <cstdint>

namespace eidb::txn {

/// Test-and-test-and-set spinlock (cache-friendly spin on load).
class Spinlock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// FIFO ticket lock — fair under contention, models latch queues.
class TicketLock {
 public:
  void lock() noexcept {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    while (serving_.load(std::memory_order_acquire) != my) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() noexcept {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

/// Reader-writer spin latch (writer-preferring, for index-page semantics).
class RwLatch {
 public:
  void lock_shared() noexcept {
    for (;;) {
      std::int32_t cur = state_.load(std::memory_order_relaxed);
      if (cur >= 0 &&
          state_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire))
        return;
    }
  }
  void unlock_shared() noexcept {
    state_.fetch_sub(1, std::memory_order_release);
  }
  void lock() noexcept {
    for (;;) {
      std::int32_t expected = 0;
      if (state_.compare_exchange_weak(expected, -1,
                                       std::memory_order_acquire))
        return;
    }
  }
  void unlock() noexcept { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::int32_t> state_{0};  // -1 writer, >=0 reader count
};

}  // namespace eidb::txn
