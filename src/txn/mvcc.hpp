// Multi-version concurrency control for main-memory data.
//
// §IV.B of the paper cites Larson et al. [18]: "novel concurrency schemes
// are heavily relying on direct access to the database objects without any
// significant performance penalty". This store implements the optimistic
// multi-version scheme from that line of work, reduced to its essentials:
//
//  * every write creates a new version stamped [begin, end) with commit
//    timestamps;
//  * readers run against a snapshot timestamp and never block;
//  * writers declare intent with an uncommitted version; first-committer-
//    wins resolves write-write conflicts at commit (validation);
//  * committed-version chains are pruned by a watermark GC.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace eidb::txn {

using Timestamp = std::uint64_t;
using TxnId = std::uint64_t;

inline constexpr Timestamp kInfinity =
    std::numeric_limits<Timestamp>::max();

enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

/// Handle for one transaction.
struct Transaction {
  TxnId id = 0;
  Timestamp read_ts = 0;
  TxnState state = TxnState::kActive;
  std::vector<std::int64_t> write_set;  // keys written (for validation/GC)
};

/// Versioned int64 -> int64 store with snapshot reads and optimistic
/// writes. Thread-safe (single global latch; the scalability *curves* for
/// synchronization schemes come from hw::sync_sim — this class is the
/// correctness substrate).
class MvccStore {
 public:
  /// Starts a transaction reading the latest committed snapshot.
  [[nodiscard]] Transaction begin();

  /// Starts a transaction pinned to an *older* snapshot (read_ts must not
  /// exceed the current clock). Used by conversations to merge with
  /// first-committer-wins semantics relative to their birth snapshot.
  [[nodiscard]] Transaction begin_at(Timestamp read_ts);

  /// Snapshot read: the newest version visible at txn.read_ts, or the
  /// transaction's own uncommitted write. nullopt when the key has no
  /// visible version.
  [[nodiscard]] std::optional<std::int64_t> read(const Transaction& txn,
                                                 std::int64_t key);

  /// Declares a write. Fails (returns false) immediately when another
  /// in-flight transaction already has an uncommitted version of the key
  /// (write-write conflict, first-writer-wins on intent).
  [[nodiscard]] bool write(Transaction& txn, std::int64_t key,
                           std::int64_t value);

  /// Validates and commits; returns the commit timestamp, or nullopt when
  /// validation fails (a conflicting commit slipped in) — the transaction
  /// is then aborted and its intents removed.
  std::optional<Timestamp> commit(Transaction& txn);

  /// Aborts, removing uncommitted versions.
  void abort(Transaction& txn);

  /// Number of live (committed, unsuperseded) keys.
  [[nodiscard]] std::size_t key_count() const;
  /// Total stored versions (diagnostic; shrinks after gc()).
  [[nodiscard]] std::size_t version_count() const;

  /// Drops versions whose end timestamp is older than every active
  /// transaction. Returns versions reclaimed.
  std::size_t gc();

 private:
  struct Version {
    std::int64_t value = 0;
    Timestamp begin_ts = 0;
    Timestamp end_ts = kInfinity;
    TxnId writer = 0;  ///< Non-zero while uncommitted.
  };

  [[nodiscard]] Timestamp oldest_active_locked() const;

  mutable std::mutex mu_;
  std::unordered_map<std::int64_t, std::vector<Version>> chains_;
  std::unordered_map<TxnId, Timestamp> active_;  // txn -> read_ts
  Timestamp clock_ = 1;
  TxnId next_txn_ = 1;
};

}  // namespace eidb::txn
