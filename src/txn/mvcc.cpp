#include "txn/mvcc.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace eidb::txn {

Transaction MvccStore::begin() {
  std::scoped_lock lock(mu_);
  Transaction txn;
  txn.id = next_txn_++;
  txn.read_ts = clock_;  // sees everything committed strictly before now+1
  active_[txn.id] = txn.read_ts;
  return txn;
}

Transaction MvccStore::begin_at(Timestamp read_ts) {
  std::scoped_lock lock(mu_);
  EIDB_EXPECTS(read_ts <= clock_);
  Transaction txn;
  txn.id = next_txn_++;
  txn.read_ts = read_ts;
  active_[txn.id] = txn.read_ts;
  return txn;
}

std::optional<std::int64_t> MvccStore::read(const Transaction& txn,
                                            std::int64_t key) {
  EIDB_EXPECTS(txn.state == TxnState::kActive);
  std::scoped_lock lock(mu_);
  const auto it = chains_.find(key);
  if (it == chains_.end()) return std::nullopt;
  // Own uncommitted write wins.
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit)
    if (rit->writer == txn.id) return rit->value;
  // Otherwise: newest committed version visible at read_ts.
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    const Version& v = *rit;
    if (v.writer != 0) continue;  // someone else's intent
    if (v.begin_ts <= txn.read_ts && txn.read_ts < v.end_ts) return v.value;
  }
  return std::nullopt;
}

bool MvccStore::write(Transaction& txn, std::int64_t key, std::int64_t value) {
  EIDB_EXPECTS(txn.state == TxnState::kActive);
  std::scoped_lock lock(mu_);
  auto& chain = chains_[key];
  for (Version& v : chain) {
    if (v.writer == txn.id) {
      v.value = value;  // overwrite own intent
      return true;
    }
    if (v.writer != 0) return false;  // foreign intent: ww conflict
  }
  Version intent;
  intent.value = value;
  intent.writer = txn.id;
  chain.push_back(intent);
  txn.write_set.push_back(key);
  return true;
}

std::optional<Timestamp> MvccStore::commit(Transaction& txn) {
  EIDB_EXPECTS(txn.state == TxnState::kActive);
  std::scoped_lock lock(mu_);
  // Validation (first-committer-wins): no key in the write set may have
  // gained a committed version newer than our snapshot.
  for (const std::int64_t key : txn.write_set) {
    const auto it = chains_.find(key);
    EIDB_ASSERT(it != chains_.end());
    for (const Version& v : it->second) {
      if (v.writer == 0 && v.begin_ts > txn.read_ts) {
        // Conflict: roll back intents.
        for (const std::int64_t k : txn.write_set) {
          auto& chain = chains_[k];
          std::erase_if(chain,
                        [&](const Version& x) { return x.writer == txn.id; });
        }
        txn.state = TxnState::kAborted;
        active_.erase(txn.id);
        return std::nullopt;
      }
    }
  }
  const Timestamp commit_ts = ++clock_;
  for (const std::int64_t key : txn.write_set) {
    auto& chain = chains_[key];
    // Close the previously live committed version.
    for (Version& v : chain)
      if (v.writer == 0 && v.end_ts == kInfinity) v.end_ts = commit_ts;
    for (Version& v : chain) {
      if (v.writer == txn.id) {
        v.writer = 0;
        v.begin_ts = commit_ts;
        v.end_ts = kInfinity;
      }
    }
  }
  txn.state = TxnState::kCommitted;
  active_.erase(txn.id);
  return commit_ts;
}

void MvccStore::abort(Transaction& txn) {
  EIDB_EXPECTS(txn.state == TxnState::kActive);
  std::scoped_lock lock(mu_);
  for (const std::int64_t key : txn.write_set) {
    auto& chain = chains_[key];
    std::erase_if(chain,
                  [&](const Version& x) { return x.writer == txn.id; });
  }
  txn.state = TxnState::kAborted;
  active_.erase(txn.id);
}

std::size_t MvccStore::key_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [_, chain] : chains_)
    for (const Version& v : chain)
      if (v.writer == 0 && v.end_ts == kInfinity) {
        ++n;
        break;
      }
  return n;
}

std::size_t MvccStore::version_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [_, chain] : chains_) n += chain.size();
  return n;
}

Timestamp MvccStore::oldest_active_locked() const {
  Timestamp oldest = clock_ + 1;
  for (const auto& [_, ts] : active_) oldest = std::min(oldest, ts);
  return oldest;
}

std::size_t MvccStore::gc() {
  std::scoped_lock lock(mu_);
  const Timestamp watermark = oldest_active_locked();
  std::size_t reclaimed = 0;
  for (auto& [_, chain] : chains_) {
    const std::size_t before = chain.size();
    std::erase_if(chain, [&](const Version& v) {
      return v.writer == 0 && v.end_ts != kInfinity && v.end_ts <= watermark;
    });
    reclaimed += before - chain.size();
  }
  return reclaimed;
}

}  // namespace eidb::txn
