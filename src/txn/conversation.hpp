// Database conversations (paper §IV.A).
//
// "database conversations may help to free the database system from
// managing and maintaining the single point of truth. The concept ...
// creates application specific views on top of the underlying database
// which are materialized (i.e., exist beyond the scope of a single
// application transactions) and can be shared with others. The 'community'
// of applications are creating potentially different domain-specific
// versions of the original database in a step-by-step manner."
//
// A Conversation is a named, long-lived overlay on an MvccStore snapshot:
//  * reads see: own overlay -> attached (shared) overlays -> base snapshot;
//  * writes go to the overlay only — the base is never locked or touched;
//  * `publish()` marks the overlay shareable; peers `attach()` it;
//  * `merge_into_base()` folds the overlay back through a regular
//    optimistic transaction — first-committer-wins applies, so conversing
//    applications reconcile with the single point of truth only when (and
//    if) they choose to.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "txn/mvcc.hpp"

namespace eidb::txn {

class ConversationManager;

class Conversation {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Overlay-aware snapshot read.
  [[nodiscard]] std::optional<std::int64_t> read(std::int64_t key) const;

  /// Writes to the overlay (never the base).
  void write(std::int64_t key, std::int64_t value);

  /// Makes this conversation's overlay visible to `attach()` callers.
  void publish() { published_ = true; }
  [[nodiscard]] bool published() const { return published_; }

  /// Reads through `other`'s published overlay after our own (layering
  /// order: own overlay, attachments in attach order, base snapshot).
  void attach(const std::shared_ptr<const Conversation>& other);

  /// Folds the overlay into the base store via one optimistic transaction.
  /// Returns false when validation fails (a conflicting base commit won) —
  /// the overlay is kept, so the application can rebase and retry.
  [[nodiscard]] bool merge_into_base();

  [[nodiscard]] std::size_t overlay_size() const { return overlay_.size(); }

  /// Conversations pin their base snapshot with a long-lived read-only
  /// transaction (released on destruction) so version GC cannot prune the
  /// history they read — the standard price of long-running snapshots in
  /// multi-version systems.
  ~Conversation();
  Conversation(const Conversation&) = delete;
  Conversation& operator=(const Conversation&) = delete;

 private:
  friend class ConversationManager;
  Conversation(std::string name, MvccStore& base)
      : name_(std::move(name)), base_(base), pin_(base.begin()) {}

  std::string name_;
  MvccStore& base_;
  Transaction pin_;  ///< Read-only snapshot anchor.
  std::map<std::int64_t, std::int64_t> overlay_;
  std::vector<std::shared_ptr<const Conversation>> attachments_;
  bool published_ = false;
};

/// Creates and tracks conversations over one base store.
class ConversationManager {
 public:
  explicit ConversationManager(MvccStore& base) : base_(base) {}

  /// Opens a conversation on the current committed snapshot.
  [[nodiscard]] std::shared_ptr<Conversation> open(const std::string& name);

  /// Published conversation by name, or nullptr.
  [[nodiscard]] std::shared_ptr<const Conversation> find(
      const std::string& name) const;

 private:
  MvccStore& base_;
  std::map<std::string, std::shared_ptr<Conversation>> conversations_;
};

}  // namespace eidb::txn
