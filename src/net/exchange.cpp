#include "net/exchange.hpp"

#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::net {

namespace {

ExchangeResult wire_part(double raw_bytes, double wire_bytes,
                         storage::CodecKind codec, const hw::LinkSpec& link) {
  ExchangeResult r;
  r.codec = codec;
  r.raw_bytes = raw_bytes;
  r.wire_bytes = wire_bytes;
  r.wire_s = link.transfer_time_s(wire_bytes);
  r.wire_energy_j = link.transfer_energy_j(wire_bytes);
  return r;
}

double cpu_energy(const hw::MachineSpec& machine, const hw::DvfsState& state,
                  double busy_s, double dram_bytes) {
  // One core busy; bill incremental (above-idle) power plus DRAM traffic —
  // the package is on regardless of whether we compress.
  return (state.active_power_w - machine.core_idle_power_w) * busy_s +
         dram_bytes * machine.dram_energy_nj_per_byte * 1e-9;
}

}  // namespace

ExchangeResult evaluate_exchange_modeled(std::span<const std::int64_t> payload,
                                         storage::CodecKind codec,
                                         const hw::LinkSpec& link,
                                         const hw::MachineSpec& machine,
                                         const hw::DvfsState& state) {
  const auto impl = storage::make_codec(codec);
  const std::vector<std::byte> encoded = impl->encode(payload);
  ExchangeResult r = wire_part(static_cast<double>(payload.size_bytes()),
                               static_cast<double>(encoded.size()), codec,
                               link);
  const double n = static_cast<double>(payload.size());
  const double cycles = impl->nominal_cycles_per_value() * n;
  // Encode and decode are charged symmetrically from the nominal combined
  // cost; DRAM traffic: read raw + write compressed (and mirrored on decode).
  const double each_s = (cycles / 2.0) / (state.freq_ghz * 1e9);
  r.encode_s = each_s;
  r.decode_s = each_s;
  const double dram_bytes = r.raw_bytes + r.wire_bytes;
  r.cpu_energy_j = cpu_energy(machine, state, r.encode_s + r.decode_s,
                              2 * dram_bytes);
  return r;
}

ExchangeResult evaluate_exchange_measured(
    std::span<const std::int64_t> payload, storage::CodecKind codec,
    const hw::LinkSpec& link, const hw::MachineSpec& machine,
    const hw::DvfsState& state) {
  const auto impl = storage::make_codec(codec);
  Stopwatch sw;
  const std::vector<std::byte> encoded = impl->encode(payload);
  const double encode_s = sw.elapsed_seconds();
  sw.restart();
  const std::vector<std::int64_t> decoded = impl->decode(encoded);
  const double decode_s = sw.elapsed_seconds();
  EIDB_ASSERT(decoded.size() == payload.size());

  ExchangeResult r = wire_part(static_cast<double>(payload.size_bytes()),
                               static_cast<double>(encoded.size()), codec,
                               link);
  r.encode_s = encode_s;
  r.decode_s = decode_s;
  const double dram_bytes = r.raw_bytes + r.wire_bytes;
  r.cpu_energy_j =
      cpu_energy(machine, state, encode_s + decode_s, 2 * dram_bytes);
  return r;
}

std::vector<std::int64_t> exchange_payload(std::span<const std::int64_t> payload,
                                           storage::CodecKind codec,
                                           const hw::LinkSpec& link,
                                           const hw::MachineSpec& machine,
                                           const hw::DvfsState& state,
                                           ExchangeResult& result) {
  const auto impl = storage::make_codec(codec);
  Stopwatch sw;
  const std::vector<std::byte> encoded = impl->encode(payload);
  const double encode_s = sw.elapsed_seconds();
  sw.restart();
  std::vector<std::int64_t> decoded = impl->decode(encoded);
  const double decode_s = sw.elapsed_seconds();
  if (decoded.size() != payload.size())
    throw Error("exchange round-trip size mismatch");

  result = wire_part(static_cast<double>(payload.size_bytes()),
                     static_cast<double>(encoded.size()), codec, link);
  result.encode_s = encode_s;
  result.decode_s = decode_s;
  const double dram_bytes = result.raw_bytes + result.wire_bytes;
  result.cpu_energy_j =
      cpu_energy(machine, state, encode_s + decode_s, 2 * dram_bytes);
  return decoded;
}

}  // namespace eidb::net
