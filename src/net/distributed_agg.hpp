// Scatter-gather distributed grouped aggregation (paper §II "scaling to
// multiple billion record databases ... exploiting massive parallelism"
// meets §IV's compressed-intermediate decision).
//
// Each node holds a horizontal partition; the coordinator (node 0):
//   1. lets every node aggregate its partition locally (real kernels),
//   2. receives each node's partial group rows over its link — serialized
//      as a (key, count, sum) net::WireTable (the generic exchange wire
//      format) and shipped with the codec the compression advisor picks
//      for that link,
//   3. merges partials into the final grouping.
// Local compute is measured on the host; wires are modeled (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/aggregate.hpp"
#include "net/cluster.hpp"
#include "opt/compression_advisor.hpp"

namespace eidb::net {

struct DistributedAggReport {
  double local_compute_s = 0;    ///< Max over nodes (they run in parallel).
  double exchange_s = 0;         ///< Sum of partial-shipping times.
  double wire_bytes = 0;
  double wire_energy_j = 0;
  double cpu_energy_j = 0;       ///< Codec CPU energy (modeled).
  std::vector<storage::CodecKind> codec_per_node;  ///< index 1..n-1.
};

/// Grouped count+sum over partitions resident on the cluster's nodes.
/// `objective` drives the per-link codec decision. Partition i lives on
/// node i; node 0 is the coordinator (its partition is merged locally).
[[nodiscard]] std::vector<exec::GroupRow> distributed_group_aggregate(
    Cluster& cluster,
    const std::vector<std::span<const std::int64_t>>& partition_keys,
    const std::vector<std::span<const std::int64_t>>& partition_values,
    opt::Objective objective, DistributedAggReport& report);

}  // namespace eidb::net
