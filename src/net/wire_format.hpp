// The one wire serialization every exchange uses.
//
// A WireTable is a set of equal-length typed columns (int64 / double /
// string) encoded into a single int64 stream, so every message — shard
// aggregation partials, gathered row-id sets, (key, count, sum) triples —
// rides the same exchange path: storage::int_codec compresses the stream,
// opt::CompressionAdvisor picks the codec per link, net::exchange_payload
// ships and accounts it. Doubles travel as bit patterns (exact round
// trip); strings as lengths plus 8-chars-per-word packed bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace eidb::net {

/// One typed column of a wire message.
struct WireColumn {
  enum class Kind : std::uint8_t { kInt64, kDouble, kString };
  Kind kind = Kind::kInt64;
  std::vector<std::int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  static WireColumn of_int64(std::vector<std::int64_t> v);
  static WireColumn of_double(std::vector<double> v);
  static WireColumn of_strings(std::vector<std::string> v);

  [[nodiscard]] std::size_t size() const;
};

/// A wire message: zero or more equal-length typed columns.
struct WireTable {
  std::vector<WireColumn> columns;

  /// Rows of the message (0 when there are no columns).
  [[nodiscard]] std::size_t row_count() const {
    return columns.empty() ? 0 : columns.front().size();
  }
};

/// Encodes `t` into one int64 stream (the codec-compatible payload).
/// Throws Error when column lengths disagree.
[[nodiscard]] std::vector<std::int64_t> encode_wire(const WireTable& t);

/// Inverse of encode_wire. Throws Error on malformed streams.
[[nodiscard]] WireTable decode_wire(std::span<const std::int64_t> payload);

}  // namespace eidb::net
