#include "net/cluster.hpp"

#include "util/assert.hpp"

namespace eidb::net {

Cluster::Cluster(std::size_t nodes, hw::MachineSpec machine,
                 hw::LinkSpec link) {
  EIDB_EXPECTS(nodes >= 1);
  machines_.assign(nodes, machine);
  links_.assign(nodes * nodes, link);
  stats_.assign(nodes * nodes, LinkStats{});
}

const hw::MachineSpec& Cluster::machine(std::size_t node) const {
  EIDB_EXPECTS(node < machines_.size());
  return machines_[node];
}

std::size_t Cluster::index(std::size_t from, std::size_t to) const {
  EIDB_EXPECTS(from < machines_.size() && to < machines_.size());
  return from * machines_.size() + to;
}

const hw::LinkSpec& Cluster::link(std::size_t from, std::size_t to) const {
  EIDB_EXPECTS(from != to);
  return links_[index(from, to)];
}

void Cluster::set_link(std::size_t from, std::size_t to, hw::LinkSpec link) {
  EIDB_EXPECTS(from != to);
  links_[index(from, to)] = std::move(link);
}

Cluster::Transfer Cluster::send(std::size_t from, std::size_t to,
                                double bytes) {
  EIDB_EXPECTS(from != to);
  EIDB_EXPECTS(bytes >= 0);
  const std::size_t i = index(from, to);
  const hw::LinkSpec& l = links_[i];
  const Transfer t{l.transfer_time_s(bytes), l.transfer_energy_j(bytes)};
  LinkStats& s = stats_[i];
  ++s.messages;
  s.bytes += bytes;
  s.busy_s += t.time_s;
  s.energy_j += t.energy_j;
  return t;
}

const LinkStats& Cluster::stats(std::size_t from, std::size_t to) const {
  return stats_[index(from, to)];
}

double Cluster::total_wire_energy_j() const {
  double total = 0;
  for (const LinkStats& s : stats_) total += s.energy_j;
  return total;
}

}  // namespace eidb::net
