#include "net/distributed_agg.hpp"

#include <algorithm>
#include <map>

#include "net/exchange.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::net {

namespace {

/// Serializes group rows as (key, count, sum) triples.
std::vector<std::int64_t> serialize_groups(
    const std::vector<exec::GroupRow>& rows) {
  std::vector<std::int64_t> out;
  out.reserve(rows.size() * 3);
  for (const exec::GroupRow& r : rows) {
    out.push_back(r.key);
    out.push_back(static_cast<std::int64_t>(r.agg.count));
    out.push_back(r.agg.sum);
  }
  return out;
}

void merge_triples(std::map<std::int64_t, exec::AggResult>& merged,
                   std::span<const std::int64_t> triples) {
  EIDB_EXPECTS(triples.size() % 3 == 0);
  for (std::size_t i = 0; i < triples.size(); i += 3) {
    exec::AggResult& a = merged[triples[i]];
    a.count += static_cast<std::uint64_t>(triples[i + 1]);
    a.sum += triples[i + 2];
  }
}

}  // namespace

std::vector<exec::GroupRow> distributed_group_aggregate(
    Cluster& cluster,
    const std::vector<std::span<const std::int64_t>>& partition_keys,
    const std::vector<std::span<const std::int64_t>>& partition_values,
    opt::Objective objective, DistributedAggReport& report) {
  EIDB_EXPECTS(partition_keys.size() == partition_values.size());
  EIDB_EXPECTS(partition_keys.size() == cluster.node_count());
  const std::size_t nodes = cluster.node_count();
  const opt::CompressionAdvisor advisor(cluster.machine(0));
  const hw::DvfsState& state = cluster.machine(0).dvfs.fastest();

  std::map<std::int64_t, exec::AggResult> merged;
  report = DistributedAggReport{};
  report.codec_per_node.assign(nodes, storage::CodecKind::kPlain);

  // Local aggregation on every node (real kernels; the slowest node gates
  // the phase since they run concurrently in the real system).
  std::vector<std::vector<exec::GroupRow>> partials(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    BitVector all(partition_keys[n].size());
    all.set_all();
    Stopwatch sw;
    partials[n] =
        exec::group_aggregate(partition_keys[n], partition_values[n], all);
    report.local_compute_s = std::max(report.local_compute_s,
                                      sw.elapsed_seconds());
  }

  // Coordinator's own partition merges for free.
  merge_triples(merged, serialize_groups(partials[0]));

  // Remote partials ship with a per-link codec decision.
  for (std::size_t n = 1; n < nodes; ++n) {
    const std::vector<std::int64_t> payload = serialize_groups(partials[n]);
    const hw::LinkSpec& link = cluster.link(n, 0);
    const auto advice =
        advisor.advise(payload, payload.size(), link, state, objective);
    report.codec_per_node[n] = advice.kind;

    ExchangeResult xr;
    const std::vector<std::int64_t> received = exchange_payload(
        payload, advice.kind, link, cluster.machine(n), state, xr);
    (void)cluster.send(n, 0, xr.wire_bytes);
    report.exchange_s += xr.total_time_s();
    report.wire_bytes += xr.wire_bytes;
    report.wire_energy_j += xr.wire_energy_j;
    report.cpu_energy_j += xr.cpu_energy_j;

    merge_triples(merged, received);
  }

  std::vector<exec::GroupRow> rows;
  rows.reserve(merged.size());
  for (const auto& [key, agg] : merged) {
    exec::GroupRow r;
    r.key = key;
    r.agg = agg;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace eidb::net
