#include "net/distributed_agg.hpp"

#include <algorithm>
#include <map>

#include "net/exchange.hpp"
#include "net/wire_format.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::net {

namespace {

/// Serializes group rows as a three-column WireTable (key, count, sum) —
/// the generic exchange wire format, not a bespoke triple layout.
std::vector<std::int64_t> serialize_groups(
    const std::vector<exec::GroupRow>& rows) {
  std::vector<std::int64_t> keys, counts, sums;
  keys.reserve(rows.size());
  counts.reserve(rows.size());
  sums.reserve(rows.size());
  for (const exec::GroupRow& r : rows) {
    keys.push_back(r.key);
    counts.push_back(static_cast<std::int64_t>(r.agg.count));
    sums.push_back(r.agg.sum);
  }
  WireTable t;
  t.columns.push_back(WireColumn::of_int64(std::move(keys)));
  t.columns.push_back(WireColumn::of_int64(std::move(counts)));
  t.columns.push_back(WireColumn::of_int64(std::move(sums)));
  return encode_wire(t);
}

void merge_groups(std::map<std::int64_t, exec::AggResult>& merged,
                  std::span<const std::int64_t> payload) {
  const WireTable t = decode_wire(payload);
  EIDB_EXPECTS(t.columns.size() == 3);
  const std::vector<std::int64_t>& keys = t.columns[0].i64;
  const std::vector<std::int64_t>& counts = t.columns[1].i64;
  const std::vector<std::int64_t>& sums = t.columns[2].i64;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    exec::AggResult& a = merged[keys[i]];
    a.count += static_cast<std::uint64_t>(counts[i]);
    a.sum += sums[i];
  }
}

}  // namespace

std::vector<exec::GroupRow> distributed_group_aggregate(
    Cluster& cluster,
    const std::vector<std::span<const std::int64_t>>& partition_keys,
    const std::vector<std::span<const std::int64_t>>& partition_values,
    opt::Objective objective, DistributedAggReport& report) {
  EIDB_EXPECTS(partition_keys.size() == partition_values.size());
  EIDB_EXPECTS(partition_keys.size() == cluster.node_count());
  const std::size_t nodes = cluster.node_count();
  const opt::CompressionAdvisor advisor(cluster.machine(0));
  const hw::DvfsState& state = cluster.machine(0).dvfs.fastest();

  std::map<std::int64_t, exec::AggResult> merged;
  report = DistributedAggReport{};
  report.codec_per_node.assign(nodes, storage::CodecKind::kPlain);

  // Local aggregation on every node (real kernels; the slowest node gates
  // the phase since they run concurrently in the real system).
  std::vector<std::vector<exec::GroupRow>> partials(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    BitVector all(partition_keys[n].size());
    all.set_all();
    Stopwatch sw;
    partials[n] =
        exec::group_aggregate(partition_keys[n], partition_values[n], all);
    report.local_compute_s = std::max(report.local_compute_s,
                                      sw.elapsed_seconds());
  }

  // Coordinator's own partition merges for free.
  merge_groups(merged, serialize_groups(partials[0]));

  // Remote partials ship with a per-link codec decision.
  for (std::size_t n = 1; n < nodes; ++n) {
    const std::vector<std::int64_t> payload = serialize_groups(partials[n]);
    const hw::LinkSpec& link = cluster.link(n, 0);
    const auto advice =
        advisor.advise(payload, payload.size(), link, state, objective);
    report.codec_per_node[n] = advice.kind;

    ExchangeResult xr;
    const std::vector<std::int64_t> received = exchange_payload(
        payload, advice.kind, link, cluster.machine(n), state, xr);
    (void)cluster.send(n, 0, xr.wire_bytes);
    report.exchange_s += xr.total_time_s();
    report.wire_bytes += xr.wire_bytes;
    report.wire_energy_j += xr.wire_energy_j;
    report.cpu_energy_j += xr.cpu_energy_j;

    merge_groups(merged, received);
  }

  std::vector<exec::GroupRow> rows;
  rows.reserve(merged.size());
  for (const auto& [key, agg] : merged) {
    exec::GroupRow r;
    r.key = key;
    r.agg = agg;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace eidb::net
