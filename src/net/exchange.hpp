// Intermediate-result exchange with per-link codec choice (experiment E2).
//
// Cost of shipping a column of int64 intermediates from node A to node B:
//   time   = encode(A) + wire(compressed bytes) + decode(B)
//   energy = cpu_energy(encode+decode) + wire_energy(compressed bytes)
// versus the `plain` arm which pays memcpy-only CPU but full wire bytes.
// The two cost factors are independent (the paper's phrasing) so the
// decision depends on link bandwidth/energy and data compressibility.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/interconnect.hpp"
#include "hw/machine.hpp"
#include "storage/int_codec.hpp"

namespace eidb::net {

/// Fully accounted cost of one exchange.
struct ExchangeResult {
  storage::CodecKind codec = storage::CodecKind::kPlain;
  double raw_bytes = 0;
  double wire_bytes = 0;
  double encode_s = 0;
  double decode_s = 0;
  double wire_s = 0;
  double cpu_energy_j = 0;
  double wire_energy_j = 0;

  [[nodiscard]] double total_time_s() const {
    return encode_s + wire_s + decode_s;
  }
  [[nodiscard]] double total_energy_j() const {
    return cpu_energy_j + wire_energy_j;
  }
  [[nodiscard]] double compression_ratio() const {
    return wire_bytes > 0 ? raw_bytes / wire_bytes : 0;
  }
};

/// Deterministic, model-based evaluation: codec CPU cost from
/// `nominal_cycles_per_value` (refined by the optimizer's calibrator at
/// runtime), wire cost from the link model, compressed size from actually
/// encoding `payload` (sizes are real; only time/energy are modeled).
[[nodiscard]] ExchangeResult evaluate_exchange_modeled(
    std::span<const std::int64_t> payload, storage::CodecKind codec,
    const hw::LinkSpec& link, const hw::MachineSpec& machine,
    const hw::DvfsState& state);

/// Measured evaluation: encode/decode run for real under a wall clock; the
/// wire remains modeled. Used by the E2 bench for the CPU-side numbers.
[[nodiscard]] ExchangeResult evaluate_exchange_measured(
    std::span<const std::int64_t> payload, storage::CodecKind codec,
    const hw::LinkSpec& link, const hw::MachineSpec& machine,
    const hw::DvfsState& state);

/// Performs the exchange end-to-end (encode, verify round-trip, account):
/// returns the decoded payload, writing the accounting into `result`.
[[nodiscard]] std::vector<std::int64_t> exchange_payload(
    std::span<const std::int64_t> payload, storage::CodecKind codec,
    const hw::LinkSpec& link, const hw::MachineSpec& machine,
    const hw::DvfsState& state, ExchangeResult& result);

}  // namespace eidb::net
