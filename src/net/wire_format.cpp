#include "net/wire_format.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace eidb::net {

WireColumn WireColumn::of_int64(std::vector<std::int64_t> v) {
  WireColumn c;
  c.kind = Kind::kInt64;
  c.i64 = std::move(v);
  return c;
}

WireColumn WireColumn::of_double(std::vector<double> v) {
  WireColumn c;
  c.kind = Kind::kDouble;
  c.f64 = std::move(v);
  return c;
}

WireColumn WireColumn::of_strings(std::vector<std::string> v) {
  WireColumn c;
  c.kind = Kind::kString;
  c.str = std::move(v);
  return c;
}

std::size_t WireColumn::size() const {
  switch (kind) {
    case Kind::kInt64:
      return i64.size();
    case Kind::kDouble:
      return f64.size();
    case Kind::kString:
      return str.size();
  }
  return 0;
}

std::vector<std::int64_t> encode_wire(const WireTable& t) {
  const std::size_t rows = t.row_count();
  for (const WireColumn& c : t.columns)
    if (c.size() != rows) throw Error("wire format: ragged columns");

  std::vector<std::int64_t> out;
  out.push_back(static_cast<std::int64_t>(t.columns.size()));
  out.push_back(static_cast<std::int64_t>(rows));
  for (const WireColumn& c : t.columns) {
    out.push_back(static_cast<std::int64_t>(c.kind));
    switch (c.kind) {
      case WireColumn::Kind::kInt64:
        out.insert(out.end(), c.i64.begin(), c.i64.end());
        break;
      case WireColumn::Kind::kDouble:
        for (const double v : c.f64)
          out.push_back(std::bit_cast<std::int64_t>(v));
        break;
      case WireColumn::Kind::kString: {
        // Lengths, then all bytes packed 8 chars per word.
        std::size_t total = 0;
        for (const std::string& s : c.str) {
          out.push_back(static_cast<std::int64_t>(s.size()));
          total += s.size();
        }
        std::string bytes;
        bytes.reserve(total);
        for (const std::string& s : c.str) bytes += s;
        const std::size_t words = (total + 7) / 8;
        const std::size_t base = out.size();
        out.resize(base + words, 0);
        if (total > 0) std::memcpy(&out[base], bytes.data(), total);
        break;
      }
    }
  }
  return out;
}

namespace {

/// Bounds-checked sequential reader over the encoded stream.
struct Reader {
  std::span<const std::int64_t> in;
  std::size_t pos = 0;

  std::int64_t next() {
    if (pos >= in.size()) throw Error("wire format: truncated stream");
    return in[pos++];
  }
  std::span<const std::int64_t> take(std::size_t n) {
    if (pos + n > in.size()) throw Error("wire format: truncated stream");
    const auto out = in.subspan(pos, n);
    pos += n;
    return out;
  }
};

}  // namespace

WireTable decode_wire(std::span<const std::int64_t> payload) {
  Reader r{payload};
  const std::int64_t cols = r.next();
  const std::int64_t rows = r.next();
  if (cols < 0 || rows < 0) throw Error("wire format: negative header");
  // A valid stream has >= 1 word per column (its kind) and, when any
  // column exists, >= `rows` words per column — so counts beyond the
  // stream length are malformed. Rejecting them HERE keeps a corrupt
  // header from driving a multi-gigabyte reserve before the bounds-checked
  // reads would catch it.
  if (static_cast<std::uint64_t>(cols) > payload.size() ||
      static_cast<std::uint64_t>(rows) > payload.size())
    throw Error("wire format: implausible header");
  WireTable t;
  t.columns.reserve(static_cast<std::size_t>(cols));
  for (std::int64_t c = 0; c < cols; ++c) {
    const std::int64_t kind = r.next();
    WireColumn col;
    const auto n = static_cast<std::size_t>(rows);
    switch (kind) {
      case static_cast<std::int64_t>(WireColumn::Kind::kInt64): {
        const auto data = r.take(n);
        col = WireColumn::of_int64({data.begin(), data.end()});
        break;
      }
      case static_cast<std::int64_t>(WireColumn::Kind::kDouble): {
        const auto data = r.take(n);
        std::vector<double> v;
        v.reserve(n);
        for (const std::int64_t w : data)
          v.push_back(std::bit_cast<double>(w));
        col = WireColumn::of_double(std::move(v));
        break;
      }
      case static_cast<std::int64_t>(WireColumn::Kind::kString): {
        const auto lengths = r.take(n);
        std::size_t total = 0;
        for (const std::int64_t len : lengths) {
          if (len < 0) throw Error("wire format: negative string length");
          total += static_cast<std::size_t>(len);
          // Same up-front bound as the header: the packed bytes cannot
          // exceed the remaining words' capacity.
          if (total > payload.size() * 8)
            throw Error("wire format: implausible string lengths");
        }
        const auto words = r.take((total + 7) / 8);
        std::string bytes(total, '\0');
        if (total > 0) std::memcpy(bytes.data(), words.data(), total);
        std::vector<std::string> v;
        v.reserve(n);
        std::size_t off = 0;
        for (const std::int64_t len : lengths) {
          v.push_back(bytes.substr(off, static_cast<std::size_t>(len)));
          off += static_cast<std::size_t>(len);
        }
        col = WireColumn::of_strings(std::move(v));
        break;
      }
      default:
        throw Error("wire format: unknown column kind");
    }
    t.columns.push_back(std::move(col));
  }
  return t;
}

}  // namespace eidb::net
