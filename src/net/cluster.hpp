// Simulated cluster: nodes with machine models joined by links.
//
// Substitution note (DESIGN.md §5): the paper's distributed setting (nodes,
// sockets, HAEC-style optical/wireless boards) is modeled — codecs run for
// real on real buffers; only the wire is simulated via hw::LinkSpec.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/interconnect.hpp"
#include "hw/machine.hpp"

namespace eidb::net {

/// Accumulated traffic statistics for one directed link.
struct LinkStats {
  std::uint64_t messages = 0;
  double bytes = 0;
  double busy_s = 0;
  double energy_j = 0;
};

class Cluster {
 public:
  /// `nodes` identical machines, fully connected by copies of `link`.
  Cluster(std::size_t nodes, hw::MachineSpec machine, hw::LinkSpec link);

  [[nodiscard]] std::size_t node_count() const { return machines_.size(); }
  [[nodiscard]] const hw::MachineSpec& machine(std::size_t node) const;
  /// Link between two distinct nodes. Precondition: from != to (there is
  /// no self-link; the diagonal slots exist only for dense indexing).
  [[nodiscard]] const hw::LinkSpec& link(std::size_t from,
                                         std::size_t to) const;
  /// Replaces the link between a pair of distinct nodes (heterogeneous
  /// topologies). Precondition: from != to.
  void set_link(std::size_t from, std::size_t to, hw::LinkSpec link);

  /// Accounts a transfer of `bytes` from -> to; returns {time_s, energy_j}.
  struct Transfer {
    double time_s = 0;
    double energy_j = 0;
  };
  Transfer send(std::size_t from, std::size_t to, double bytes);

  [[nodiscard]] const LinkStats& stats(std::size_t from,
                                       std::size_t to) const;
  /// Sum of all link energies.
  [[nodiscard]] double total_wire_energy_j() const;

 private:
  [[nodiscard]] std::size_t index(std::size_t from, std::size_t to) const;

  std::vector<hw::MachineSpec> machines_;
  std::vector<hw::LinkSpec> links_;   // n*n, diagonal rejected (from != to)
  std::vector<LinkStats> stats_;
};

}  // namespace eidb::net
