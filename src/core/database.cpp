#include "core/database.hpp"

#include <sstream>

#include "energy/rapl_meter.hpp"
#include "query/physical_plan.hpp"
#include "query/shared_scan.hpp"
#include "query/sql.hpp"
#include "util/assert.hpp"
#include "util/clock.hpp"

namespace eidb::core {

Database::Database(DatabaseOptions options)
    : machine_(std::move(options.machine)),
      cost_model_(options.calibrate_cost_model ? opt::CostModel::calibrate()
                                               : opt::CostModel::defaults()),
      governor_(machine_, options.governor),
      optimizer_(machine_),
      pool_(options.worker_threads),
      governor_enabled_(options.enable_governor) {
  if (options.prefer_rapl) {
    auto rapl = std::make_unique<energy::RaplMeter>();
    if (rapl->available()) rapl_ = std::move(rapl);
  }
  model_ = std::make_unique<energy::ModelMeter>(machine_);
  active_meter_ = rapl_ ? rapl_.get()
                        : static_cast<energy::EnergyMeter*>(model_.get());
}

energy::MeterSource Database::meter_source() const {
  return active_meter_->source();
}

storage::Table& Database::create_table(const std::string& name,
                                       storage::Schema schema) {
  return catalog_.add(storage::Table(name, std::move(schema)));
}

void Database::register_tiers(const std::string& table) {
  const storage::Table& t = catalog_.get(table);
  for (std::size_t i = 0; i < t.schema().column_count(); ++i) {
    const auto& def = t.schema().column(i);
    tiers_.register_column(table, def.name,
                           t.row_count() * storage::physical_size(def.type));
  }
}

std::vector<opt::PlanCandidate> Database::candidates(
    const query::LogicalPlan& plan) const {
  const storage::Table& table = catalog_.get(plan.table);
  const auto rows = static_cast<std::uint64_t>(table.row_count());
  // Bytes per tuple across predicate columns (plain widths). Only kAuto
  // scans consume the packed images (executor rule), so the auto-resolved
  // candidate is priced per column through the storage arm — packed
  // kernel cycles AND packed bytes together — while explicit-variant
  // candidates stream the plain arrays.
  double plain_bytes_per_tuple = 0;
  for (const query::Predicate& p : plan.predicates)
    plain_bytes_per_tuple +=
        static_cast<double>(storage::physical_size(table.column(p.column).type()));
  // No-predicate default: downstream operators still read ~one column.
  if (plan.predicates.empty()) plain_bytes_per_tuple = 8;

  // Conjunctive selectivity from the cached per-column statistics
  // (uniform-value assumption, independence across predicates); a
  // mid-range default when the plan has no predicates.
  double estimated_sel = 1.0;
  bool any_pred = false;
  for (const query::Predicate& p : plan.predicates) {
    const storage::Column& col = table.column(p.column);
    if (col.type() == storage::TypeId::kDouble) {
      estimated_sel *= opt::CostModel::estimate_selectivity(
          col.stats(), p.lo.as_double(), p.hi.as_double());
    } else if (col.type() == storage::TypeId::kString) {
      continue;  // string bounds bind to codes at execution; skip here
    } else {
      estimated_sel *= opt::CostModel::estimate_selectivity(
          col.stats(), p.lo.as_int(), p.hi.as_int());
    }
    any_pred = true;
  }
  const double kDefaultSel = any_pred ? estimated_sel : 0.1;

  std::vector<opt::PlanCandidate> out;
  const exec::ScanVariant best_variant =
      cost_model_.pick_scan_variant(kDefaultSel);
  // Auto candidate: per predicate column, the representation the executor
  // will actually scan — the packed storage arm (its cycles and bytes)
  // for encoded columns, the picked plain kernel otherwise.
  const auto auto_scan_work = [&](std::uint64_t scan_rows) {
    hw::Work work;
    for (const query::Predicate& p : plan.predicates) {
      const storage::Column& col = table.column(p.column);
      const double plain_bytes =
          static_cast<double>(storage::physical_size(col.type()));
      if (col.encoded() != nullptr &&
          col.scan_byte_size() <= col.byte_size()) {
        work += cost_model_.storage_scan_work(opt::StorageArm::kPackedScan,
                                              scan_rows,
                                              col.encoded()->bits,
                                              plain_bytes);
      } else {
        work += cost_model_.scan_work(best_variant, scan_rows, kDefaultSel,
                                      plain_bytes);
      }
    }
    if (plan.predicates.empty())
      work = cost_model_.scan_work(best_variant, scan_rows, kDefaultSel,
                                   plain_bytes_per_tuple);
    return work;
  };
  out.push_back(
      {"scan-" + exec::variant_name(best_variant), auto_scan_work(rows)});
  out.push_back({"scan-predicated",
                 cost_model_.scan_work(exec::ScanVariant::kPredicated, rows,
                                       kDefaultSel, plain_bytes_per_tuple)});
  // Zone-map pruned plan: assume pruning to ~2x the selectivity worth of
  // blocks (clustered data prunes far better; this is conservative).
  // Zone maps compose with the packed images, so the auto pricing applies
  // at the pruned row count.
  const double pruned_fraction = std::min(1.0, 2 * kDefaultSel);
  out.push_back(
      {"scan-zonemap-pruned",
       auto_scan_work(static_cast<std::uint64_t>(rows * pruned_fraction))});
  if (plan.is_aggregate()) {
    const auto selected = static_cast<std::uint64_t>(rows * kDefaultSel);
    for (opt::PlanCandidate& c : out) {
      if (plan.has_group_by() &&
          table.schema().has_column(plan.group_by.front())) {
        // Dense vs hash grouping predicted from the cached key statistics
        // (same policy the exec kernels apply at runtime).
        c.work += cost_model_.group_work(
            selected, table.column(plan.group_by.front()).stats(), 8.0);
      } else if (plan.has_group_by()) {
        // Build-side (qualified) group key: no FROM-table statistics;
        // assume the hash strategy.
        c.work += cost_model_.group_work(selected, /*dense=*/false, 8.0);
      } else {
        c.work += cost_model_.agg_work(selected, 8.0);
      }
    }
  }
  return out;
}

void Database::apply_engine_defaults(query::ExecOptions& exec) {
  if (exec.pool == nullptr) exec.pool = &pool_;
  if (exec.cost_model == nullptr) exec.cost_model = &cost_model_;
  if (governor_enabled_ && exec.governor == nullptr)
    exec.governor = &governor_;
  if (exec.calibration == nullptr) exec.calibration = &calibration_;
}

RunResult Database::run(const query::LogicalPlan& plan,
                        const RunOptions& options) {
  RunResult out;

  // Energy-budget planning (Fig. 2): choose the configuration first.
  if (options.energy_budget_j.has_value()) {
    const auto cands = candidates(plan);
    auto point = optimizer_.best_under_budget(cands, *options.energy_budget_j);
    if (!point) {
      out.budget_infeasible = true;
      out.chosen_point = optimizer_.min_energy_point(cands);
    } else {
      out.chosen_point = *point;
    }
  }

  // Execute on the host, metering around the run.
  query::Executor executor(catalog_);
  query::ExecOptions exec_options = options.exec;
  if (exec_options.tiers == nullptr && tiers_.hot_bytes() + tiers_.cold_bytes() > 0)
    exec_options.tiers = &tiers_;
  apply_engine_defaults(exec_options);
  if (options.deadline_s > 0 && exec_options.deadline_s == 0)
    exec_options.deadline_s = options.deadline_s;

  // Compile up front: the plan carries the governor's cores × P-state
  // decision, which caps operator fan-out and sets the attribution state.
  const query::PhysicalPlan phys =
      query::compile_plan(catalog_, plan, exec_options);
  out.governor = phys.governor;

  energy::EnergyWindow window(*active_meter_);
  Stopwatch sw;
  out.result = executor.execute(phys, out.stats, exec_options);
  const double elapsed = sw.elapsed_seconds();
  out.report.energy = window.consumed();
  settle_run(out, plan, options, elapsed);
  return out;
}

void Database::settle_run(RunResult& out, const query::LogicalPlan& plan,
                          const RunOptions& options, double elapsed) {
  // Feed the model meter (no-op for RAPL) so modeled joules reflect the
  // actual busy interval and DRAM traffic.
  model_->report_busy(elapsed, machine_.dvfs.fastest(), 1, out.stats.work);

  out.report.elapsed_s =
      elapsed + out.stats.cold_tier_time_s + out.stats.wire_time_s;
  out.report.energy.package_j += out.stats.cold_tier_energy_j;
  out.report.source = active_meter_->source();

  // Per-query attribution: incremental busy power over this query's own
  // busy interval plus its DRAM traffic and cold-tier penalty, charged at
  // the governor's chosen P-state (f_max when the governor is off or
  // raced to idle). The meter window in report.energy cannot be used here
  // — it is a whole-machine counter, so under concurrency it would bill
  // every query for its neighbors' work and the shared idle floor.
  const hw::DvfsState& attr_state =
      out.governor.enabled ? out.governor.state : machine_.dvfs.fastest();
  // Wire joules (sharded queries) are modeled link + codec energy — they
  // ride the attribution total but live outside the machine's busy-energy
  // quantum, and the ledger books them under the dedicated wire scope.
  out.attributed_j =
      machine_.incremental_busy_energy_j(out.stats.work, attr_state, elapsed) +
      out.stats.cold_tier_energy_j + out.stats.wire_energy_j;

  // Close the governor's loop: measured per-operator seconds against the
  // model's prediction, folded into the per-kind EWMA the next compile
  // consults.
  calibration_.observe_operators(out.stats.operators, machine_, attr_state);

  ledger_.add(options.ledger_scope,
              {plan.table + ":" + (plan.is_aggregate() ? "agg" : "select"),
               out.report.elapsed_s, out.stats.work,
               out.attributed_j, out.stats.tuples_scanned});
  if (out.stats.wire_messages > 0 || out.stats.wire_energy_j > 0) {
    hw::Work wire_work;
    wire_work.net_bytes = out.stats.work.net_bytes;
    ledger_.add(energy::kWireScope,
                {plan.table + ":wire", out.stats.wire_time_s, wire_work,
                 out.stats.wire_energy_j, out.stats.wire_messages});
  }
}

std::vector<RunResult> Database::run_batch(const std::vector<BatchItem>& items) {
  std::vector<RunResult> outs(items.size());
  if (items.empty()) return outs;

  // Phase 1: per-member planning — budget optimizer, engine defaults,
  // compile. A member that fails here carries its error and is excluded
  // from execution (its sharing key is empty → singleton group, skipped).
  std::vector<query::ExecOptions> exec_options(items.size());
  std::vector<query::PhysicalPlan> plans(items.size());
  std::vector<query::SharedBatchMember> batch(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    query::ExecOptions& exec = exec_options[i];
    exec = item.options.exec;
    if (exec.tiers == nullptr && tiers_.hot_bytes() + tiers_.cold_bytes() > 0)
      exec.tiers = &tiers_;
    apply_engine_defaults(exec);
    if (item.options.deadline_s > 0 && exec.deadline_s == 0)
      exec.deadline_s = item.options.deadline_s;
    batch[i] = {nullptr, &exec_options[i]};
    try {
      if (item.options.energy_budget_j.has_value()) {
        const auto cands = candidates(item.plan);
        const auto point =
            optimizer_.best_under_budget(cands, *item.options.energy_budget_j);
        if (!point) {
          outs[i].budget_infeasible = true;
          outs[i].chosen_point = optimizer_.min_energy_point(cands);
        } else {
          outs[i].chosen_point = *point;
        }
      }
      plans[i] = query::compile_plan(catalog_, item.plan, exec);
      outs[i].governor = plans[i].governor;
      batch[i].phys = &plans[i];
    } catch (const std::exception& e) {
      outs[i].error = e.what();
    }
  }

  // Phase 2: compatibility analysis, then execute group by group — fused
  // single pass where the sharing arm approves, independent otherwise.
  // One meter window spans the whole batch: the report's machine-level
  // reading is shared (it cannot be split), while per-member attribution
  // below stays per-query via the work deltas.
  const std::vector<query::ScanShareGroup> groups =
      query::analyze_scan_sharing(catalog_, machine_, batch);
  energy::EnergyWindow window(*active_meter_);
  for (const query::ScanShareGroup& g : groups) {
    if (g.share && g.members.size() >= 2) {
      const std::uint64_t gid = shared_group_seq_.fetch_add(1) + 1;
      std::vector<query::SharedBatchMember> members;
      members.reserve(g.members.size());
      for (const std::size_t idx : g.members) {
        plans[idx].shared = {gid, g.members.size()};
        members.push_back(batch[idx]);
      }
      std::vector<query::SharedMemberOut> gouts(g.members.size());
      try {
        query::execute_shared_group(catalog_, members, gouts);
      } catch (const std::exception& e) {
        for (query::SharedMemberOut& go : gouts)
          if (go.error.empty()) go.error = e.what();
      }
      for (std::size_t k = 0; k < g.members.size(); ++k) {
        const std::size_t idx = g.members[k];
        outs[idx].shared_group = gid;
        outs[idx].shared_members = g.members.size();
        outs[idx].governor = plans[idx].governor;
        if (!gouts[k].error.empty()) {
          outs[idx].error = gouts[k].error;
          continue;
        }
        outs[idx].result = std::move(gouts[k].result);
        outs[idx].stats = std::move(gouts[k].stats);
      }
    } else {
      for (const std::size_t idx : g.members) {
        if (!outs[idx].error.empty()) continue;  // compile failed
        try {
          query::Executor executor(catalog_);
          outs[idx].result =
              executor.execute(plans[idx], outs[idx].stats, exec_options[idx]);
        } catch (const std::exception& e) {
          outs[idx].error = e.what();
        }
      }
    }
  }

  // Phase 3: settle every successful member — shared machine-level meter
  // reading, per-member attribution/calibration/ledger at its own elapsed
  // time (for fused members that includes their share of the fused pass).
  const auto consumed = window.consumed();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!outs[i].error.empty()) continue;
    outs[i].report.energy = consumed;
    settle_run(outs[i], items[i].plan, items[i].options,
               outs[i].stats.elapsed_s);
  }
  return outs;
}

RunResult Database::run_sql(std::string_view sql, const RunOptions& options) {
  return run(query::parse_sql(sql), options);
}

std::string Database::explain(const query::LogicalPlan& plan,
                              const RunOptions& options) {
  std::ostringstream os;
  os << "plan: " << plan.to_string() << "\n";
  query::ExecOptions exec_options = options.exec;
  apply_engine_defaults(exec_options);
  if (options.deadline_s > 0 && exec_options.deadline_s == 0)
    exec_options.deadline_s = options.deadline_s;
  os << query::compile_plan(catalog_, plan, exec_options).explain();
  const auto cands = candidates(plan);
  os << "candidates:\n";
  for (const auto& c : cands)
    os << "  " << c.name << "  cycles=" << c.work.cpu_cycles
       << " dram_bytes=" << c.work.dram_bytes << "\n";
  if (options.energy_budget_j.has_value()) {
    const auto point =
        optimizer_.best_under_budget(cands, *options.energy_budget_j);
    if (point) {
      os << "chosen under " << *options.energy_budget_j << " J: "
         << point->plan_name << " @ " << point->state.freq_ghz << " GHz x"
         << point->cores << " cores, predicted " << point->time_s << " s / "
         << point->energy_j << " J\n";
    } else {
      os << "budget " << *options.energy_budget_j
         << " J infeasible; minimum-energy configuration required\n";
    }
  }
  os << "meter: " << energy::to_string(meter_source()) << "\n";
  return os.str();
}

}  // namespace eidb::core
