// eidb::core::Database — the public façade of the library.
//
// One object wires the whole stack together: catalog + tiering (storage),
// executor (query), meters (energy), machine model (hw), governor and cost
// model (sched/opt). Usage:
//
//   eidb::core::Database db;                       // model-metered
//   auto& t = db.create_table("sales", schema);
//   t.set_column(...);                             // bulk load
//   auto plan = eidb::query::QueryBuilder("sales")
//                   .filter_int("amount", 100, 999)
//                   .group_by("region")
//                   .aggregate(eidb::query::AggOp::kSum, "amount")
//                   .build();
//   auto run = db.run(plan);
//   std::cout << run.result.to_string() << run.report.to_string();
//
// Every run returns both the result and an EnergyReport (RAPL-measured when
// the host exposes it, model-derived otherwise) — energy as a first-class
// output, which is the paper's program in one sentence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "energy/ledger.hpp"
#include "energy/meter.hpp"
#include "energy/model_meter.hpp"
#include "hw/machine.hpp"
#include "opt/cost_model.hpp"
#include "opt/energy_optimizer.hpp"
#include "query/executor.hpp"
#include "query/plan.hpp"
#include "query/plan_governor.hpp"
#include "query/result.hpp"
#include "sched/governor.hpp"
#include "sched/thread_pool.hpp"
#include "storage/table.hpp"
#include "storage/tier.hpp"

namespace eidb::core {

struct DatabaseOptions {
  /// Machine model used for energy modeling and simulated execution.
  hw::MachineSpec machine = hw::MachineSpec::server();
  /// Prefer hardware RAPL counters when readable.
  bool prefer_rapl = true;
  /// Calibrate the cost model on this host at startup (few ms) instead of
  /// using the published defaults.
  bool calibrate_cost_model = false;
  /// Width of the engine worker pool shared by every query's
  /// morsel-parallel operators (0 = hardware concurrency).
  std::size_t worker_threads = 0;
  /// Run the plan governor at compile time: per query, estimate the work
  /// and pick cores × P-state; attribution then charges the chosen state.
  /// The default policy (race-to-idle, deep sleep allowed) resolves to
  /// f_max and all cores, so attribution matches the legacy behavior.
  bool enable_governor = true;
  /// Plan-governor policy knobs (deep-sleep availability — the E7 lever).
  sched::GovernorOptions governor{};
};

/// Per-query execution knobs.
struct RunOptions {
  query::ExecOptions exec;
  /// Optional per-query energy budget in joules: the optimizer picks the
  /// fastest (plan, P-state, cores) configuration predicted to fit
  /// ("elasticity in the small", Fig. 2). Affects the *reported plan* and
  /// simulated cost; host execution itself always runs the chosen kernels.
  std::optional<double> energy_budget_j;
  /// Ledger scope this run's joules are attributed to (empty = global).
  /// The serving tier sets it to the session's tenant id so per-tenant
  /// energy budgets can be debited from measured totals.
  std::string ledger_scope;
  /// Latency deadline handed to the plan governor (0 = none): the
  /// governor then picks the better of race-to-idle and pace for this
  /// query's estimated work.
  double deadline_s = 0;
};

/// Everything a query run produces.
struct RunResult {
  query::QueryResult result;
  query::ExecStats stats;
  energy::EnergyReport report;
  /// This query's own energy share: incremental busy joules over its
  /// measured busy interval plus its DRAM traffic and cold-tier penalties.
  /// Unlike `report` — whose meter window spans the whole machine and so
  /// includes the idle floor and any concurrently running queries — this
  /// figure is attributable to *this* query alone; it is what the ledger
  /// records per scope and what the serving tier debits tenant budgets
  /// with.
  double attributed_j = 0;
  /// The configuration chosen by the energy optimizer (set when a budget
  /// was given or simulation was involved).
  std::optional<opt::PlanPoint> chosen_point;
  /// True when the requested energy budget was infeasible and the engine
  /// fell back to the minimum-energy configuration.
  bool budget_infeasible = false;
  /// The plan governor's cores × P-state decision for this query
  /// (enabled == false when the governor was off).
  query::GovernorChoice governor;
  /// run_batch only: non-empty when this member failed (compile or
  /// execution error text); `result`/`stats` are then default-constructed
  /// and nothing was attributed. run() throws instead of setting this, so
  /// one bad batch member cannot take down its group-mates.
  std::string error;
  /// Shared-scan fusion (run_batch): when this member's FROM-table scan
  /// was fused with other compatible batch members into one pass,
  /// `shared_members` > 1 and `shared_group` identifies the fused group.
  std::uint64_t shared_group = 0;
  std::size_t shared_members = 0;
};

/// One member of a coalesced batch handed to Database::run_batch.
struct BatchItem {
  query::LogicalPlan plan;
  RunOptions options;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  // -- DDL / load -----------------------------------------------------------
  storage::Table& create_table(const std::string& name,
                               storage::Schema schema);
  [[nodiscard]] storage::Catalog& catalog() { return catalog_; }
  [[nodiscard]] const storage::Catalog& catalog() const { return catalog_; }
  /// Registers all columns of `table` with the tier manager (hot).
  void register_tiers(const std::string& table);
  [[nodiscard]] storage::TierManager& tiers() { return tiers_; }

  // -- Query ------------------------------------------------------------------
  /// Executes `plan`. Safe to call from multiple threads concurrently: the
  /// catalog is a shared-lock registry, the meters and ledger serialize
  /// internally, and each call uses its own executor. (Concurrent `run`
  /// with `drop` of a table in use remains a caller error.)
  [[nodiscard]] RunResult run(const query::LogicalPlan& plan,
                              const RunOptions& options = {});

  /// Parses and runs one SQL statement (see query/sql.hpp for the grammar).
  [[nodiscard]] RunResult run_sql(std::string_view sql,
                                  const RunOptions& options = {});

  /// Executes a coalesced batch as one unit. Members whose scans are
  /// compatible (same table, encoding-visible column set and conjunct
  /// structure — see query/shared_scan.hpp) and whose modeled sharing arm
  /// (opt::CostModel::pick_scan_sharing) approves are fused into ONE pass
  /// over their table: the fact table's DRAM bytes are charged once per
  /// group and attributed across members by their share of the work.
  /// Everyone else runs independently. Results are bit-identical to
  /// per-member run() calls. Per-member failures surface via
  /// RunResult::error instead of throwing.
  [[nodiscard]] std::vector<RunResult> run_batch(
      const std::vector<BatchItem>& items);

  /// EXPLAIN: the plan, the predicted work, and the chosen configuration.
  [[nodiscard]] std::string explain(const query::LogicalPlan& plan,
                                    const RunOptions& options = {});

  // -- Introspection ------------------------------------------------------------
  [[nodiscard]] const hw::MachineSpec& machine() const { return machine_; }
  [[nodiscard]] const opt::CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] energy::EnergyMeter& meter() { return *active_meter_; }
  [[nodiscard]] energy::MeterSource meter_source() const;
  [[nodiscard]] const energy::EnergyLedger& ledger() const { return ledger_; }
  /// Mutable ledger access for layers that attribute their own entries
  /// (the serving tier records per-session scopes through this).
  [[nodiscard]] energy::EnergyLedger& ledger() { return ledger_; }
  [[nodiscard]] const sched::Governor& governor() const { return governor_; }
  /// The engine worker pool every query's parallel operators draw from
  /// (shared across concurrent sessions; see sched::ThreadPool).
  [[nodiscard]] sched::ThreadPool& pool() { return pool_; }
  /// Measured-vs-predicted EWMA per operator kind feeding the governor's
  /// work estimates (updated after every run).
  [[nodiscard]] const query::OperatorCalibration& calibration() const {
    return calibration_;
  }

 private:
  /// Builds candidate plans for the optimizer from a logical plan.
  [[nodiscard]] std::vector<opt::PlanCandidate> candidates(
      const query::LogicalPlan& plan) const;
  /// Fills the engine-owned defaults of per-run ExecOptions: worker pool,
  /// cost model, plan governor, and calibration (caller-set values win).
  void apply_engine_defaults(query::ExecOptions& exec);
  /// The metering tail shared by run() and run_batch(): model-meter
  /// feedback, per-query attribution at the governor's state, calibration
  /// EWMA update and ledger entries. Expects out.report.energy to hold
  /// the meter-window reading and out.governor/out.stats to be final;
  /// `elapsed` is this query's own busy seconds.
  void settle_run(RunResult& out, const query::LogicalPlan& plan,
                  const RunOptions& options, double elapsed);

  hw::MachineSpec machine_;
  storage::Catalog catalog_;
  storage::TierManager tiers_;
  opt::CostModel cost_model_;
  sched::Governor governor_;
  opt::EnergyOptimizer optimizer_;
  std::unique_ptr<energy::EnergyMeter> rapl_;
  std::unique_ptr<energy::ModelMeter> model_;
  energy::EnergyMeter* active_meter_ = nullptr;
  energy::EnergyLedger ledger_;
  sched::ThreadPool pool_;
  query::OperatorCalibration calibration_;
  bool governor_enabled_ = true;
  /// Monotonic id for shared-scan groups (RunResult::shared_group).
  std::atomic<std::uint64_t> shared_group_seq_{0};
};

}  // namespace eidb::core
