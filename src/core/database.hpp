// eidb::core::Database — the public façade of the library.
//
// One object wires the whole stack together: catalog + tiering (storage),
// executor (query), meters (energy), machine model (hw), governor and cost
// model (sched/opt). Usage:
//
//   eidb::core::Database db;                       // model-metered
//   auto& t = db.create_table("sales", schema);
//   t.set_column(...);                             // bulk load
//   auto plan = eidb::query::QueryBuilder("sales")
//                   .filter_int("amount", 100, 999)
//                   .group_by("region")
//                   .aggregate(eidb::query::AggOp::kSum, "amount")
//                   .build();
//   auto run = db.run(plan);
//   std::cout << run.result.to_string() << run.report.to_string();
//
// Every run returns both the result and an EnergyReport (RAPL-measured when
// the host exposes it, model-derived otherwise) — energy as a first-class
// output, which is the paper's program in one sentence.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "energy/ledger.hpp"
#include "energy/meter.hpp"
#include "energy/model_meter.hpp"
#include "hw/machine.hpp"
#include "opt/cost_model.hpp"
#include "opt/energy_optimizer.hpp"
#include "query/executor.hpp"
#include "query/plan.hpp"
#include "query/plan_governor.hpp"
#include "query/result.hpp"
#include "sched/governor.hpp"
#include "sched/thread_pool.hpp"
#include "storage/table.hpp"
#include "storage/tier.hpp"

namespace eidb::core {

struct DatabaseOptions {
  /// Machine model used for energy modeling and simulated execution.
  hw::MachineSpec machine = hw::MachineSpec::server();
  /// Prefer hardware RAPL counters when readable.
  bool prefer_rapl = true;
  /// Calibrate the cost model on this host at startup (few ms) instead of
  /// using the published defaults.
  bool calibrate_cost_model = false;
  /// Width of the engine worker pool shared by every query's
  /// morsel-parallel operators (0 = hardware concurrency).
  std::size_t worker_threads = 0;
  /// Run the plan governor at compile time: per query, estimate the work
  /// and pick cores × P-state; attribution then charges the chosen state.
  /// The default policy (race-to-idle, deep sleep allowed) resolves to
  /// f_max and all cores, so attribution matches the legacy behavior.
  bool enable_governor = true;
  /// Plan-governor policy knobs (deep-sleep availability — the E7 lever).
  sched::GovernorOptions governor{};
};

/// Per-query execution knobs.
struct RunOptions {
  query::ExecOptions exec;
  /// Optional per-query energy budget in joules: the optimizer picks the
  /// fastest (plan, P-state, cores) configuration predicted to fit
  /// ("elasticity in the small", Fig. 2). Affects the *reported plan* and
  /// simulated cost; host execution itself always runs the chosen kernels.
  std::optional<double> energy_budget_j;
  /// Ledger scope this run's joules are attributed to (empty = global).
  /// The serving tier sets it to the session's tenant id so per-tenant
  /// energy budgets can be debited from measured totals.
  std::string ledger_scope;
  /// Latency deadline handed to the plan governor (0 = none): the
  /// governor then picks the better of race-to-idle and pace for this
  /// query's estimated work.
  double deadline_s = 0;
};

/// Everything a query run produces.
struct RunResult {
  query::QueryResult result;
  query::ExecStats stats;
  energy::EnergyReport report;
  /// This query's own energy share: incremental busy joules over its
  /// measured busy interval plus its DRAM traffic and cold-tier penalties.
  /// Unlike `report` — whose meter window spans the whole machine and so
  /// includes the idle floor and any concurrently running queries — this
  /// figure is attributable to *this* query alone; it is what the ledger
  /// records per scope and what the serving tier debits tenant budgets
  /// with.
  double attributed_j = 0;
  /// The configuration chosen by the energy optimizer (set when a budget
  /// was given or simulation was involved).
  std::optional<opt::PlanPoint> chosen_point;
  /// True when the requested energy budget was infeasible and the engine
  /// fell back to the minimum-energy configuration.
  bool budget_infeasible = false;
  /// The plan governor's cores × P-state decision for this query
  /// (enabled == false when the governor was off).
  query::GovernorChoice governor;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  // -- DDL / load -----------------------------------------------------------
  storage::Table& create_table(const std::string& name,
                               storage::Schema schema);
  [[nodiscard]] storage::Catalog& catalog() { return catalog_; }
  [[nodiscard]] const storage::Catalog& catalog() const { return catalog_; }
  /// Registers all columns of `table` with the tier manager (hot).
  void register_tiers(const std::string& table);
  [[nodiscard]] storage::TierManager& tiers() { return tiers_; }

  // -- Query ------------------------------------------------------------------
  /// Executes `plan`. Safe to call from multiple threads concurrently: the
  /// catalog is a shared-lock registry, the meters and ledger serialize
  /// internally, and each call uses its own executor. (Concurrent `run`
  /// with `drop` of a table in use remains a caller error.)
  [[nodiscard]] RunResult run(const query::LogicalPlan& plan,
                              const RunOptions& options = {});

  /// Parses and runs one SQL statement (see query/sql.hpp for the grammar).
  [[nodiscard]] RunResult run_sql(std::string_view sql,
                                  const RunOptions& options = {});

  /// EXPLAIN: the plan, the predicted work, and the chosen configuration.
  [[nodiscard]] std::string explain(const query::LogicalPlan& plan,
                                    const RunOptions& options = {});

  // -- Introspection ------------------------------------------------------------
  [[nodiscard]] const hw::MachineSpec& machine() const { return machine_; }
  [[nodiscard]] const opt::CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] energy::EnergyMeter& meter() { return *active_meter_; }
  [[nodiscard]] energy::MeterSource meter_source() const;
  [[nodiscard]] const energy::EnergyLedger& ledger() const { return ledger_; }
  /// Mutable ledger access for layers that attribute their own entries
  /// (the serving tier records per-session scopes through this).
  [[nodiscard]] energy::EnergyLedger& ledger() { return ledger_; }
  [[nodiscard]] const sched::Governor& governor() const { return governor_; }
  /// The engine worker pool every query's parallel operators draw from
  /// (shared across concurrent sessions; see sched::ThreadPool).
  [[nodiscard]] sched::ThreadPool& pool() { return pool_; }
  /// Measured-vs-predicted EWMA per operator kind feeding the governor's
  /// work estimates (updated after every run).
  [[nodiscard]] const query::OperatorCalibration& calibration() const {
    return calibration_;
  }

 private:
  /// Builds candidate plans for the optimizer from a logical plan.
  [[nodiscard]] std::vector<opt::PlanCandidate> candidates(
      const query::LogicalPlan& plan) const;
  /// Fills the engine-owned defaults of per-run ExecOptions: worker pool,
  /// cost model, plan governor, and calibration (caller-set values win).
  void apply_engine_defaults(query::ExecOptions& exec);

  hw::MachineSpec machine_;
  storage::Catalog catalog_;
  storage::TierManager tiers_;
  opt::CostModel cost_model_;
  sched::Governor governor_;
  opt::EnergyOptimizer optimizer_;
  std::unique_ptr<energy::EnergyMeter> rapl_;
  std::unique_ptr<energy::ModelMeter> model_;
  energy::EnergyMeter* active_meter_ = nullptr;
  energy::EnergyLedger ledger_;
  sched::ThreadPool pool_;
  query::OperatorCalibration calibration_;
  bool governor_enabled_ = true;
};

}  // namespace eidb::core
