// Flexibility as the cross-cutting concept (paper §IV): four mechanisms
// that relax classical guarantees in exchange for performance and energy,
// exercised together.
//
//   1. Database conversations (§IV.A): what-if analyses on materialized
//      snapshots, merged back with first-committer-wins.
//   2. Need-to-Know index maintenance (§IV.A): zero index work until a
//      reader cares.
//   3. Multi-level reliability (§III): intermediates in cheap memory,
//      REDO log replicated.
//   4. Robust long-running queries (§IV): checkpointed restart instead of
//      abort-and-rollback.
//
//   $ ./flexible_consistency
#include <iostream>
#include <vector>

#include "exec/restartable.hpp"
#include "storage/reliability.hpp"
#include "storage/secondary_index.hpp"
#include "txn/conversation.hpp"
#include "util/rng.hpp"

int main() {
  using namespace eidb;

  // -- 1. Conversations: three analysts fork the same base ---------------------
  std::cout << "[conversations]\n";
  txn::MvccStore base;
  {
    txn::Transaction t = base.begin();
    for (std::int64_t sku = 0; sku < 100; ++sku)
      (void)base.write(t, sku, 100 + sku);  // base prices
    (void)base.commit(t);
  }
  txn::ConversationManager conversations(base);
  auto pricing = conversations.open("pricing-whatif");
  auto forecast = conversations.open("forecast");

  // Pricing experiments on a private view; base never locked.
  for (std::int64_t sku = 0; sku < 100; sku += 2)
    pricing->write(sku, pricing->read(sku).value() * 11 / 10);  // +10%
  pricing->publish();

  // The forecaster layers the pricing scenario under its own edits.
  forecast->attach(conversations.find("pricing-whatif"));
  forecast->write(7, 1);  // overrides everything for sku 7
  std::cout << "  sku 0: base=" << [&] {
    txn::Transaction t = base.begin();
    return base.read(t, 0).value();
  }() << " pricing=" << pricing->read(0).value()
            << " forecast=" << forecast->read(0).value() << "\n";
  std::cout << "  sku 7 in forecast (own overlay wins): "
            << forecast->read(7).value() << "\n";

  // Merge the accepted scenario; conflicting base commits would veto it.
  std::cout << "  merge pricing into base: "
            << (pricing->merge_into_base() ? "committed" : "conflict") << "\n\n";

  // -- 2. Need-to-Know index -----------------------------------------------------
  std::cout << "[need-to-know index]\n";
  storage::SecondaryIndex eager(storage::IndexMaintenance::kUbiquity);
  storage::SecondaryIndex lazy(storage::IndexMaintenance::kNeedToKnow);
  Pcg32 rng(13);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_bounded(100'000));
    eager.append(v);
    lazy.append(v);
  }
  std::cout << "  after 50k writes, no readers: ubiquity did "
            << eager.maintenance_ops() << " maintenance ops, need-to-know "
            << lazy.maintenance_ops() << "\n";
  lazy.register_reader();
  std::cout << "  first reader arrives: lazy catches up, lookups equal: "
            << (eager.lookup_range(0, 500) == lazy.lookup_range(0, 500)
                    ? "yes"
                    : "NO")
            << "\n\n";

  // -- 3. Multi-level reliability --------------------------------------------------
  std::cout << "[multi-level reliability]\n";
  storage::ReliabilityManager qos(hw::MachineSpec::server(),
                                  hw::LinkSpec::tengbe(),
                                  hw::LinkSpec::gbe());
  qos.declare("intermediates", storage::Reliability::kCheap);
  qos.declare("redo-log", storage::Reliability::kReplicated);
  qos.declare("legal-archive", storage::Reliability::kGeoReplicated);
  for (int i = 0; i < 1000; ++i) {
    (void)qos.write("intermediates", 64 << 10);
    (void)qos.write("redo-log", 4 << 10);
  }
  (void)qos.write("legal-archive", 100 << 20);
  for (const char* frag : {"intermediates", "redo-log", "legal-archive"}) {
    const auto cost = qos.accumulated(frag);
    std::cout << "  " << frag << " ("
              << storage::reliability_name(qos.level_of(frag))
              << "): " << cost.time_s << " s, " << cost.energy_j << " J\n";
  }
  std::cout << "  node loss survivors:";
  for (const auto& frag : qos.surviving(storage::Failure::kNodeLoss))
    std::cout << " " << frag;
  std::cout << "\n\n";

  // -- 4. Restartable analytics -----------------------------------------------------
  std::cout << "[robust long-running query]\n";
  std::vector<std::int64_t> big(5'000'000);
  for (auto& v : big) v = rng.next_in_range(0, 1000);
  BitVector sel(big.size());
  sel.set_all();
  exec::RestartableAggregation agg(/*morsel_rows=*/10'000,
                                   /*checkpoint_every=*/25);
  exec::RestartStats with_ck, without_ck;
  auto crash_late = [] {
    return [fired = false](std::uint64_t m) mutable {
      if (m == 450 && !fired) {
        fired = true;
        return true;
      }
      return false;
    };
  };
  (void)agg.run(big, sel, crash_late(), with_ck);
  (void)agg.run_from_scratch(big, sel, crash_late(), without_ck);
  std::cout << "  crash at morsel 450/500: checkpointed restart redid "
            << with_ck.morsels_reprocessed << " morsels; abort-and-rerun "
            << "redid " << without_ck.morsels_reprocessed << "\n";
  return 0;
}
