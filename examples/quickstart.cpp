// Quickstart: create a table, load it, run a filtered grouped aggregate,
// and read the energy report — the library's whole pitch in ~60 lines.
//
//   $ ./quickstart
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/database.hpp"
#include "util/rng.hpp"

int main() {
  using namespace eidb;

  // A database with the default (Sandy-Bridge-class) machine model. Energy
  // readings come from RAPL when the host exposes it, the analytic model
  // otherwise — check `db.meter_source()`.
  core::Database db;
  std::cout << "energy meter: " << energy::to_string(db.meter_source())
            << "\n\n";

  // -- Create and load a table -------------------------------------------------
  storage::Table& orders = db.create_table(
      "orders", storage::Schema({{"id", storage::TypeId::kInt64},
                                 {"amount", storage::TypeId::kInt64},
                                 {"status", storage::TypeId::kString}}));

  constexpr std::size_t kRows = 2'000'000;
  Pcg32 rng(2013);  // DATE'13
  std::vector<std::int64_t> ids, amounts;
  std::vector<std::string> statuses;
  ids.reserve(kRows);
  amounts.reserve(kRows);
  statuses.reserve(kRows);
  const char* status_names[] = {"open", "paid", "shipped", "returned"};
  for (std::size_t i = 0; i < kRows; ++i) {
    ids.push_back(static_cast<std::int64_t>(i));
    amounts.push_back(rng.next_bounded(10'000));
    statuses.emplace_back(status_names[rng.next_bounded(4)]);
  }
  orders.set_column(0, storage::Column::from_int64("id", ids));
  orders.set_column(1, storage::Column::from_int64("amount", amounts));
  orders.set_column(2, storage::Column::from_strings("status", statuses));
  std::cout << "loaded " << orders.row_count() << " rows ("
            << orders.byte_size() / (1 << 20) << " MiB of columns)\n\n";

  // -- Query: revenue of paid orders above 9000, by status ---------------------
  const auto plan = query::QueryBuilder("orders")
                        .filter_int("amount", 9000, 9999)
                        .group_by("status")
                        .aggregate(query::AggOp::kCount)
                        .aggregate(query::AggOp::kSum, "amount")
                        .aggregate(query::AggOp::kAvg, "amount")
                        .build();
  std::cout << "plan: " << plan.to_string() << "\n\n";

  const core::RunResult run = db.run(plan);
  std::cout << run.result.to_string() << "\n";
  std::cout << "scanned " << run.stats.tuples_scanned << " tuples, selected "
            << run.stats.tuples_selected << "\n";
  std::cout << "energy: " << run.report.to_string() << "\n";
  return 0;
}
