// Energy-budgeted query processing: Figure 2 of the paper, live.
//
// A server executes the same analytical query under shrinking per-query
// energy budgets. The optimizer responds by degrading the configuration —
// fewer cores, lower frequency, cheaper plan — trading response time for
// joules ("elasticity in the small", §IV).
//
//   $ ./energy_budget_server
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/database.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace eidb;

  core::Database db;
  storage::Table& events = db.create_table(
      "events", storage::Schema({{"id", storage::TypeId::kInt64},
                                 {"severity", storage::TypeId::kInt64},
                                 {"latency_us", storage::TypeId::kInt64}}));
  constexpr std::size_t kRows = 2'000'000;
  {
    Pcg32 rng(99);
    std::vector<std::int64_t> id(kRows), sev(kRows), lat(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      id[i] = static_cast<std::int64_t>(i);
      sev[i] = rng.next_bounded(8);
      lat[i] = rng.next_bounded(1'000'000);
    }
    events.set_column(0, storage::Column::from_int64("id", id));
    events.set_column(1, storage::Column::from_int64("severity", sev));
    events.set_column(2, storage::Column::from_int64("latency_us", lat));
  }

  const auto plan = query::QueryBuilder("events")
                        .filter_int("severity", 6, 7)
                        .aggregate(query::AggOp::kCount)
                        .aggregate(query::AggOp::kMax, "latency_us")
                        .build();

  // -- Budget sweep (the Fig. 2 curve) -------------------------------------------
  std::cout << "machine: " << db.machine().name << ", "
            << db.machine().cores << " cores, "
            << db.machine().dvfs.slowest().freq_ghz << "-"
            << db.machine().dvfs.fastest().freq_ghz << " GHz\n\n";

  TablePrinter table({"budget_J", "feasible", "plan", "freq_GHz", "cores",
                      "predicted_s", "predicted_J"});
  // Probe the floor first.
  core::RunOptions probe;
  probe.energy_budget_j = 1e-12;
  const double floor_j = db.run(plan, probe).chosen_point->energy_j;

  for (double budget = floor_j * 0.8; budget < floor_j * 30; budget *= 1.5) {
    core::RunOptions options;
    options.energy_budget_j = budget;
    const core::RunResult run = db.run(plan, options);
    const opt::PlanPoint& p = *run.chosen_point;
    table.add_row({TablePrinter::fmt(budget, 3),
                   run.budget_infeasible ? "no (floor used)" : "yes",
                   p.plan_name, TablePrinter::fmt(p.state.freq_ghz, 3),
                   TablePrinter::fmt_int(p.cores),
                   TablePrinter::fmt(p.time_s, 4),
                   TablePrinter::fmt(p.energy_j, 4)});
  }
  table.print(std::cout);
  std::cout << "(the scan is memory-bound: beyond ~3 cores more energy "
               "cannot buy time — DVFS elasticity is free for bandwidth-"
               "bound operators)\n\n";

  // -- A compute-bound plan shows the full Fig. 2 curve -----------------------------
  // Accounting policy decides the frontier's shape: on a dedicated server
  // (full package billed) static power dominates and racing wins almost
  // always ("fastest is greenest", [12]); on a shared server only busy
  // power is attributable and slowing down genuinely saves joules.
  const std::vector<opt::PlanCandidate> compute_plans = {
      {"hash-heavy-agg", {40e9, 2e9}}};  // hashing dominates, CPU-bound
  for (const auto accounting :
       {opt::Accounting::kFullPackage, opt::Accounting::kIncremental}) {
    opt::EnergyOptimizer optimizer(db.machine(), accounting);
    TablePrinter frontier_table({"time_s", "energy_J", "freq_GHz", "cores"});
    for (const auto& p :
         opt::EnergyOptimizer::pareto(optimizer.enumerate(compute_plans))) {
      frontier_table.add_row({TablePrinter::fmt(p.time_s, 4),
                              TablePrinter::fmt(p.energy_j, 4),
                              TablePrinter::fmt(p.state.freq_ghz, 3),
                              TablePrinter::fmt_int(p.cores)});
    }
    std::cout << "Pareto frontier, "
              << (accounting == opt::Accounting::kFullPackage
                      ? "dedicated server (full package billed)"
                      : "shared server (incremental busy power)")
              << ":\n";
    frontier_table.print(std::cout);
    std::cout << "\n";
  }

  // -- Stream scheduling under a power cap ------------------------------------------
  std::cout << "\nquery stream under power caps (500 queries, Poisson "
               "arrivals, 5 qps):\n";
  const hw::Work per_query{1.5e9, 3e8};
  const auto stream = sched::poisson_stream(500, 5.0, per_query, 7);
  TablePrinter stable({"policy", "cap_W", "mean_lat_ms", "p95_lat_ms",
                       "qps", "avg_W", "J_per_query"});
  const auto row = [&](sched::Policy policy, double cap) {
    sched::StreamScheduler sched(db.machine(), policy, cap);
    const auto r = sched.run(stream);
    stable.add_row({sched::policy_name(policy),
                    cap > 0 ? TablePrinter::fmt(cap, 3) : "-",
                    TablePrinter::fmt(r.mean_latency_s * 1e3, 4),
                    TablePrinter::fmt(r.p95_latency_s * 1e3, 4),
                    TablePrinter::fmt(r.throughput_qps, 4),
                    TablePrinter::fmt(r.avg_power_w, 4),
                    TablePrinter::fmt(r.energy_per_query_j, 4)});
  };
  row(sched::Policy::kLatency, 0);
  row(sched::Policy::kThroughput, 0);
  row(sched::Policy::kEnergyCap, db.machine().idle_power_w() + 60);
  row(sched::Policy::kEnergyCap, db.machine().idle_power_w() + 10);
  stable.print(std::cout);
  return 0;
}
