// The serving tier, end to end: sessions, energy budgets, live policies.
//
// A QueryService wraps one Database and serves three tenants:
//   * "gold"   — generous joule budget, never throttled;
//   * "bronze" — tiny budget with a slow refill: admission control rejects
//                its queries once the measured joules exhaust the bucket;
//   * "batch"  — runs under the throughput policy in a second service to
//                show paced execution and coalesced wake-ups.
//
//   $ ./query_service
#include <cstdint>
#include <future>
#include <iostream>
#include <vector>

#include "core/database.hpp"
#include "query/request.hpp"
#include "server/query_service.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

void load_events(core::Database& db, std::size_t rows) {
  storage::Table& t = db.create_table(
      "events", storage::Schema({{"id", storage::TypeId::kInt64},
                                 {"severity", storage::TypeId::kInt64},
                                 {"latency_us", storage::TypeId::kInt64}}));
  Pcg32 rng(11);
  std::vector<std::int64_t> id(rows), sev(rows), lat(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    id[i] = static_cast<std::int64_t>(i);
    sev[i] = rng.next_bounded(8);
    lat[i] = rng.next_bounded(1'000'000);
  }
  t.set_column(0, storage::Column::from_int64("id", id));
  t.set_column(1, storage::Column::from_int64("severity", sev));
  t.set_column(2, storage::Column::from_int64("latency_us", lat));
}

constexpr const char* kSql =
    "SELECT COUNT(*), MAX(latency_us) FROM events WHERE severity BETWEEN 6 "
    "AND 7";

}  // namespace

int main() {
  core::Database db;
  load_events(db, 500'000);

  // -- Tenants under one latency-policy service ------------------------------------
  server::QueryService service(db);
  service.set_tenant_budget("bronze", {/*capacity_j=*/0.05,
                                       /*refill_j_per_s=*/0.01});
  auto gold = service.open_session("gold");
  auto bronze = service.open_session("bronze");

  // One request in full first: the plan governor's decision (cores ×
  // P-state, race vs pace) plus predicted and attributed joules.
  std::cout << "== one request, governed ==\n";
  {
    const query::QueryResponse r =
        service.execute(gold, query::QueryRequest::from_sql(kSql));
    std::cout << "  " << kSql << "\n  governor: " << r.governor_cores
              << " cores x " << r.governor_freq_ghz << " GHz ("
              << (r.governor_policy.empty() ? "off" : r.governor_policy)
              << "), predicted " << r.predicted_j << " J, attributed "
              << r.billed_j << " J in " << r.exec_s << " s\n\n";
  }

  std::cout << "== per-tenant admission under energy budgets ==\n";
  TablePrinter tenants({"tenant", "submitted", "completed", "rejected",
                        "billed_J", "balance_J"});
  for (int i = 0; i < 8; ++i) {
    const auto gr = service.execute(gold, query::QueryRequest::from_sql(kSql));
    (void)service.execute(bronze, query::QueryRequest::from_sql(kSql));
    std::cout << "  gold request " << i << ": " << gr.governor_cores
              << " cores x " << gr.governor_freq_ghz << " GHz ("
              << gr.governor_policy << "), predicted " << gr.predicted_j
              << " J, attributed " << gr.billed_j << " J\n";
  }
  for (const auto& [name, session] :
       {std::pair{"gold", gold}, std::pair{"bronze", bronze}}) {
    const server::SessionStats s = session->stats();
    const auto balance =
        service.admission().balance_j(name, service.now_s());
    tenants.add_row({name, TablePrinter::fmt_int(static_cast<long long>(
                               s.submitted)),
                     TablePrinter::fmt_int(static_cast<long long>(s.completed)),
                     TablePrinter::fmt_int(static_cast<long long>(s.rejected)),
                     TablePrinter::fmt(s.energy_j, 4),
                     balance ? TablePrinter::fmt(*balance, 4) : "-"});
  }
  tenants.print(std::cout);
  std::cout << "(bronze's attributed joules drained its 0.05 J bucket; "
               "refill is 0.01 J/s, so it stays throttled until the balance "
               "recovers)\n\n";

  std::cout << "== who spent the joules? (ledger scopes) ==\n";
  for (const std::string& scope : db.ledger().scopes()) {
    const energy::LedgerEntry t = db.ledger().total(scope);
    std::cout << "  scope '" << (scope.empty() ? "<global>" : scope)
              << "': " << t.energy_j << " J over " << t.elapsed_s << " s\n";
  }
  service.stop();

  // -- Throughput policy: paced execution, coalesced wake-ups ------------------------
  std::cout << "\n== throughput policy: race-to-idle batching ==\n";
  server::ServiceOptions batch_opts;
  batch_opts.policy = sched::Policy::kThroughput;
  batch_opts.coalesce_window_s = 0.01;
  server::QueryService batcher(db, batch_opts);
  auto batch_session = batcher.open_session("batch");
  std::vector<std::future<query::QueryResponse>> futures;
  futures.reserve(16);
  for (int i = 0; i < 16; ++i)
    futures.push_back(
        batcher.submit(batch_session, query::QueryRequest::from_sql(kSql)));
  double paced_freq = 0;
  for (auto& f : futures) paced_freq = f.get().chosen_freq_ghz;
  const server::ServiceStats bs = batcher.stats();
  std::cout << "  16 queries served in " << bs.batches
            << " wake-up(s); P-state " << paced_freq << " GHz (f_max "
            << db.machine().dvfs.fastest().freq_ghz
            << " GHz); modeled busy energy " << bs.busy_j << " J\n";
  batcher.stop();

  std::cout << "\nmeter: " << energy::to_string(db.meter_source()) << "\n";
  return 0;
}
