// Sensor telemetry: compressed scans on slowly-changing measurements.
//
// The paper's sensor-data scenario (§II "multiple billion record databases",
// §IV.B "scan on compressed data"): sensor readings drift slowly, so
// delta/FOR bit-packing shrinks them dramatically, and range scans can run
// directly on the packed representation (experiment E5's code path).
//
//   $ ./sensor_telemetry
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/database.hpp"
#include "exec/scan_kernels.hpp"
#include "storage/bitpack.hpp"
#include "storage/int_codec.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

int main() {
  using namespace eidb;

  // -- Synthesize drifting sensor readings -------------------------------------
  constexpr std::size_t kRows = 4'000'000;
  Pcg32 rng(42);
  std::vector<std::int64_t> temps;  // milli-degrees, random walk around 20C
  temps.reserve(kRows);
  std::int64_t cur = 20'000;
  for (std::size_t i = 0; i < kRows; ++i) {
    cur += rng.next_in_range(-15, 15);
    temps.push_back(cur);
  }

  // -- Compression study ---------------------------------------------------------
  std::cout << "codec sizes for " << kRows << " readings ("
            << kRows * 8 / (1 << 20) << " MiB raw):\n";
  for (const auto kind : storage::all_codec_kinds()) {
    const auto codec = storage::make_codec(kind);
    Stopwatch sw;
    const auto bytes = codec->encode(temps);
    const double enc_s = sw.elapsed_seconds();
    std::cout << "  " << storage::codec_name(kind) << ": "
              << bytes.size() / (1 << 20) << " MiB ("
              << static_cast<double>(temps.size() * 8) /
                     static_cast<double>(bytes.size())
              << "x), encode " << enc_s << " s\n";
  }

  // -- Scan on packed data ---------------------------------------------------------
  // FOR-shift the readings and pack at the minimal width, then range-scan
  // the packed image directly.
  std::int64_t min_v = temps[0];
  for (const auto v : temps) min_v = std::min(min_v, v);
  std::vector<std::uint64_t> shifted(temps.size());
  for (std::size_t i = 0; i < temps.size(); ++i)
    shifted[i] = static_cast<std::uint64_t>(temps[i] - min_v);
  const unsigned bits = storage::min_bits(shifted);
  const auto packed = storage::bitpack(shifted, bits);
  std::cout << "\npacked at " << bits << " bits/value ("
            << packed.size() * 8 / (1 << 20) << " MiB)\n";

  // Find readings in [21C, 22C].
  const auto lo = static_cast<std::uint64_t>(21'000 - min_v);
  const auto hi = static_cast<std::uint64_t>(22'000 - min_v);
  BitVector hits(temps.size());
  Stopwatch sw;
  exec::scan_packed_bitmap(packed, bits, temps.size(), lo, hi, hits);
  const double packed_s = sw.elapsed_seconds();

  BitVector hits_raw(temps.size());
  sw.restart();
  exec::scan_bitmap_best64(temps, 21'000, 22'000, hits_raw);
  const double raw_s = sw.elapsed_seconds();

  std::cout << "scan [21C,22C]: packed " << packed_s << " s vs raw " << raw_s
            << " s; " << hits.count() << " matches (verified: "
            << (hits == hits_raw ? "equal" : "MISMATCH") << ")\n\n";

  // -- The same data behind the query API ------------------------------------------
  core::Database db;
  storage::Table& sensor = db.create_table(
      "sensor", storage::Schema({{"ts", storage::TypeId::kInt64},
                                 {"temp_milli", storage::TypeId::kInt64}}));
  std::vector<std::int64_t> ts(kRows);
  for (std::size_t i = 0; i < kRows; ++i) ts[i] = static_cast<std::int64_t>(i);
  sensor.set_column(0, storage::Column::from_int64("ts", ts));
  sensor.set_column(1, storage::Column::from_int64("temp_milli", temps));

  // Zone maps shine on the time dimension (append order == sorted).
  const auto last_hour = query::QueryBuilder("sensor")
                             .filter_int("ts", kRows - 3600, kRows - 1)
                             .aggregate(query::AggOp::kMin, "temp_milli")
                             .aggregate(query::AggOp::kMax, "temp_milli")
                             .aggregate(query::AggOp::kAvg, "temp_milli")
                             .build();
  core::RunOptions zone_options;
  zone_options.exec.use_zone_maps = true;
  const auto pruned = db.run(last_hour, zone_options);
  const auto full = db.run(last_hour);
  std::cout << "last-hour min/max/avg:\n" << pruned.result.to_string();
  std::cout << "zone-map scan touched " << pruned.stats.work.dram_bytes / 1e6
            << " MB vs full-scan " << full.stats.work.dram_bytes / 1e6
            << " MB — fewer cycles, fewer joules [12]\n";
  return 0;
}
