// Clickstream analytics: the paper's "low-density data" scenario (§II, §IV.B).
//
// Billions-of-records click streams are append-only, rarely point-accessed,
// and "queried by massive and parallel scans". This example:
//   1. synthesizes a Zipf-skewed clickstream (hot pages, long tail),
//   2. demonstrates hot/cold tiering: recent data in DRAM, history on the
//      simulated disk tier, with the latency/energy consequences,
//   3. runs typical funnel queries (page hits by region, dwell-time stats).
//
//   $ ./clickstream_analytics
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/database.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

int main() {
  using namespace eidb;

  core::Database db;

  // -- Synthesize the clickstream ------------------------------------------------
  // clicks(ts, page_id, dwell_ms, region): one month of traffic, hottest
  // pages Zipf-distributed, dwell times uniform.
  constexpr std::size_t kRows = 3'000'000;
  constexpr std::int64_t kPages = 100'000;
  storage::Table& clicks = db.create_table(
      "clicks", storage::Schema({{"ts", storage::TypeId::kInt64},
                                 {"page_id", storage::TypeId::kInt64},
                                 {"dwell_ms", storage::TypeId::kInt64},
                                 {"region", storage::TypeId::kString}}));
  {
    Pcg32 rng(77);
    ZipfGenerator pages(kPages, 0.99, 78);
    std::vector<std::int64_t> ts, page, dwell;
    std::vector<std::string> region;
    ts.reserve(kRows);
    page.reserve(kRows);
    dwell.reserve(kRows);
    region.reserve(kRows);
    const char* regions[] = {"amer", "apac", "emea"};
    for (std::size_t i = 0; i < kRows; ++i) {
      ts.push_back(static_cast<std::int64_t>(i));  // arrival order
      page.push_back(static_cast<std::int64_t>(pages.next()));
      dwell.push_back(50 + rng.next_bounded(30'000));
      region.emplace_back(regions[rng.next_bounded(3)]);
    }
    clicks.set_column(0, storage::Column::from_int64("ts", ts));
    clicks.set_column(1, storage::Column::from_int64("page_id", page));
    clicks.set_column(2, storage::Column::from_int64("dwell_ms", dwell));
    clicks.set_column(3, storage::Column::from_strings("region", region));
  }
  db.register_tiers("clicks");
  std::cout << "clickstream: " << clicks.row_count() << " rows, "
            << clicks.byte_size() / (1 << 20) << " MiB\n\n";

  // -- Query 1: top-of-funnel traffic by region (hot, all in DRAM) ---------------
  const auto by_region = query::QueryBuilder("clicks")
                             .group_by("region")
                             .aggregate(query::AggOp::kCount)
                             .aggregate(query::AggOp::kAvg, "dwell_ms")
                             .build();
  auto run = db.run(by_region);
  std::cout << "traffic by region (all hot):\n"
            << run.result.to_string() << "energy: " << run.report.to_string()
            << "\n\n";

  // -- Query 2: hottest pages (Zipf head) -----------------------------------------
  const auto hot_pages = query::QueryBuilder("clicks")
                             .filter_int("page_id", 0, 9)  // top-10 ranks
                             .group_by("page_id")
                             .aggregate(query::AggOp::kCount)
                             .build();
  run = db.run(hot_pages);
  std::cout << "top-10 pages hold "
            << [&] {
                 std::int64_t hits = 0;
                 for (std::size_t g = 0; g < run.result.row_count(); ++g)
                   hits += run.result.at(g, 1).as_int();
                 return hits;
               }()
            << " of " << kRows << " clicks (Zipf skew)\n\n";

  // -- Demote history to the cold tier and re-run -----------------------------------
  // "low-density data ... will be placed on traditional cheap disk devices"
  db.tiers().place("clicks", "dwell_ms", storage::Tier::kCold);
  db.tiers().place("clicks", "page_id", storage::Tier::kCold);

  const auto dwell_stats = query::QueryBuilder("clicks")
                               .filter_int("dwell_ms", 10'000, 30'050)
                               .aggregate(query::AggOp::kCount)
                               .aggregate(query::AggOp::kAvg, "dwell_ms")
                               .build();
  run = db.run(dwell_stats);
  std::cout << "dwell-time analysis with page_id/dwell_ms demoted to the "
               "cold tier:\n"
            << run.result.to_string();
  std::cout << "cold-tier penalty: " << run.stats.cold_tier_time_s
            << " s, " << run.stats.cold_tier_energy_j << " J\n";
  std::cout << "energy: " << run.report.to_string() << "\n\n";

  std::cout << "per-operator ledger:\n" << db.ledger().to_string();
  return 0;
}
