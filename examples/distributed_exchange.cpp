// Distributed intermediate shipping: compress or not, per link (§IV).
//
// A 4-node cluster with heterogeneous links (QPI between sockets, 10GbE
// across racks, HAEC-style optical/wireless between boards) shuffles an
// intermediate result. The compression advisor decides per link — the
// paper's "case-by-case basis" — and we verify the decision against all
// arms measured end-to-end.
//
//   $ ./distributed_exchange
#include <cstdint>
#include <iostream>
#include <vector>

#include "net/cluster.hpp"
#include "net/exchange.hpp"
#include "opt/compression_advisor.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace eidb;

  const hw::MachineSpec machine = hw::MachineSpec::server();
  const hw::DvfsState& state = machine.dvfs.fastest();

  // Intermediate result: grouped aggregates keyed by dictionary codes —
  // small-domain integers, highly compressible (the common case after a
  // group-by).
  constexpr std::size_t kValues = 2'000'000;
  Pcg32 rng(5);
  std::vector<std::int64_t> payload(kValues);
  for (auto& v : payload) v = rng.next_bounded(4096);

  const opt::CompressionAdvisor advisor(machine);

  const hw::LinkSpec links[] = {
      hw::LinkSpec::qpi(), hw::LinkSpec::haec_optical(),
      hw::LinkSpec::haec_wireless(), hw::LinkSpec::tengbe(),
      hw::LinkSpec::gbe()};

  for (const auto objective : {opt::Objective::kTime, opt::Objective::kEnergy}) {
    std::cout << "objective: minimize " << opt::objective_name(objective)
              << "\n";
    TablePrinter table({"link", "GB/s", "advised", "pred_s", "pred_J",
                        "best_measured", "measured_s", "measured_J"});
    for (const hw::LinkSpec& link : links) {
      const auto advice =
          advisor.advise(payload, payload.size(), link, state, objective);

      // Ground truth: run every arm end-to-end (real codecs, modeled wire).
      storage::CodecKind best_kind = storage::CodecKind::kPlain;
      double best_key = 0, best_s = 0, best_j = 0;
      bool first = true;
      for (const auto kind : storage::all_codec_kinds()) {
        net::ExchangeResult r;
        (void)net::exchange_payload(payload, kind, link, machine, state, r);
        const double key = objective == opt::Objective::kTime
                               ? r.total_time_s()
                               : r.total_energy_j();
        if (first || key < best_key) {
          first = false;
          best_key = key;
          best_kind = kind;
          best_s = r.total_time_s();
          best_j = r.total_energy_j();
        }
      }
      table.add_row({link.name, TablePrinter::fmt(link.bandwidth_gbs, 3),
                     storage::codec_name(advice.kind),
                     TablePrinter::fmt(advice.time_s, 3),
                     TablePrinter::fmt(advice.energy_j, 3),
                     storage::codec_name(best_kind),
                     TablePrinter::fmt(best_s, 3),
                     TablePrinter::fmt(best_j, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // -- Shuffle across a mixed cluster with per-link decisions ---------------------
  net::Cluster cluster(4, machine, hw::LinkSpec::tengbe());
  cluster.set_link(0, 1, hw::LinkSpec::qpi());            // same board
  cluster.set_link(0, 2, hw::LinkSpec::haec_optical());   // next board
  cluster.set_link(0, 3, hw::LinkSpec::gbe());            // legacy rack

  std::cout << "node 0 shuffles " << kValues * 8 / (1 << 20)
            << " MiB to 3 peers with per-link codec choice:\n";
  double total_s = 0, total_j = 0;
  for (std::size_t peer = 1; peer < cluster.node_count(); ++peer) {
    const auto& link = cluster.link(0, peer);
    const auto advice = advisor.advise(payload, payload.size(), link, state,
                                       opt::Objective::kTime);
    net::ExchangeResult r;
    (void)net::exchange_payload(payload, advice.kind, link, machine, state, r);
    (void)cluster.send(0, peer, r.wire_bytes);
    std::cout << "  -> node " << peer << " over " << link.name << ": "
              << storage::codec_name(advice.kind) << ", "
              << r.wire_bytes / (1 << 20) << " MiB on wire, "
              << r.total_time_s() << " s, " << r.total_energy_j() << " J\n";
    total_s += r.total_time_s();
    total_j += r.total_energy_j();
  }
  std::cout << "shuffle total: " << total_s << " s, " << total_j
            << " J (wire share " << cluster.total_wire_energy_j() << " J)\n";
  return 0;
}
