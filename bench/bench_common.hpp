// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace eidb::bench {

/// Uniform int32 values in [0, domain).
inline std::vector<std::int32_t> uniform_i32(std::size_t n,
                                             std::int32_t domain,
                                             std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int32_t>(
        rng.next_bounded(static_cast<std::uint32_t>(domain)));
  return v;
}

inline std::vector<std::int64_t> uniform_i64(std::size_t n,
                                             std::int64_t domain,
                                             std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int64_t>(rng.next_bounded(
        static_cast<std::uint32_t>(domain)));
  return v;
}

/// Runs `fn` repeatedly until ~`budget_s` of wall time is spent and returns
/// the best (minimum) seconds per run — the standard microbenchmark recipe
/// to suppress scheduler noise.
template <typename Fn>
double time_best(Fn&& fn, double budget_s = 0.25, int min_runs = 3) {
  double best = 1e100;
  Stopwatch total;
  int runs = 0;
  while (runs < min_runs || total.elapsed_seconds() < budget_s) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
    ++runs;
    if (runs > 1000) break;
  }
  return best;
}

/// Modeled joules for a measured busy interval on one core of `m` at its
/// top P-state: incremental busy power plus DRAM traffic. Used to attach
/// energy figures to host-measured kernel timings when RAPL is unavailable.
inline double modeled_joules(const hw::MachineSpec& m, double busy_s,
                             double dram_bytes) {
  return m.incremental_busy_energy_j({0, dram_bytes}, m.dvfs.fastest(),
                                     busy_s);
}

}  // namespace eidb::bench
