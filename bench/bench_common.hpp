// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hw/machine.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace eidb::bench {

/// Machine-readable bench output: accumulates flat numeric metrics and
/// writes them as `BENCH_<name>.json` in the working directory, so CI can
/// archive and diff wall time / joules / DRAM bytes across runs.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes BENCH_<name>.json; returns the file name.
  std::string write() const {
    const std::string file = "BENCH_" + name_ + ".json";
    std::ostringstream body;
    body << "{\n  \"bench\": \"" << name_ << "\"";
    body << std::setprecision(17);
    for (const auto& [key, value] : metrics_)
      body << ",\n  \"" << key << "\": " << value;
    body << "\n}\n";
    std::ofstream out(file);
    out << body.str();
    return file;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Uniform int32 values in [0, domain).
inline std::vector<std::int32_t> uniform_i32(std::size_t n,
                                             std::int32_t domain,
                                             std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int32_t>(
        rng.next_bounded(static_cast<std::uint32_t>(domain)));
  return v;
}

inline std::vector<std::int64_t> uniform_i64(std::size_t n,
                                             std::int64_t domain,
                                             std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int64_t>(rng.next_bounded(
        static_cast<std::uint32_t>(domain)));
  return v;
}

/// Runs `fn` repeatedly until ~`budget_s` of wall time is spent and returns
/// the best (minimum) seconds per run — the standard microbenchmark recipe
/// to suppress scheduler noise.
template <typename Fn>
double time_best(Fn&& fn, double budget_s = 0.25, int min_runs = 3) {
  double best = 1e100;
  Stopwatch total;
  int runs = 0;
  while (runs < min_runs || total.elapsed_seconds() < budget_s) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
    ++runs;
    if (runs > 1000) break;
  }
  return best;
}

/// Modeled joules for a measured busy interval on one core of `m` at its
/// top P-state: incremental busy power plus DRAM traffic. Used to attach
/// energy figures to host-measured kernel timings when RAPL is unavailable.
inline double modeled_joules(const hw::MachineSpec& m, double busy_s,
                             double dram_bytes) {
  return m.incremental_busy_energy_j({0, dram_bytes}, m.dvfs.fastest(),
                                     busy_s);
}

}  // namespace eidb::bench
