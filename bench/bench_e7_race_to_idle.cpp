// Experiment E7 — race-to-idle vs. pace (paper §IV): "energy can be saved,
// if individual hardware components are turned off to save idle power and
// increase the utilization of running components. As a consequence, the
// individual response time of a query may suffer from improved energy
// efficiency."
//
// Fixed work (one analytical query) under a deadline-slack sweep:
//  * race-to-idle with deep package sleep available (dedicated server),
//  * race-to-idle with shallow idle only (consolidated server),
//  * pace (slowest P-state meeting the deadline),
// and the governor's pick in each regime. The crossover between racing and
// pacing is the experiment's headline.
#include <iostream>

#include "sched/governor.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E7: race-to-idle vs pace over deadline slack ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const sched::Governor with_sleep(machine, {.allow_deep_sleep = true});
  const sched::Governor no_sleep(machine, {.allow_deep_sleep = false});

  const hw::Work work{8e9, 4e8};  // compute-bound query, ~2.76 s at f_max
  const double t_fast = machine.exec_time_s(work, machine.dvfs.fastest());
  const double t_slow = machine.exec_time_s(work, machine.dvfs.slowest());
  std::cout << "work: " << t_fast << " s at f_max, " << t_slow
            << " s at f_min\n\n";

  TablePrinter table({"slack_x", "deadline_s", "race_deepsleep_J",
                      "race_shallow_J", "pace_J", "winner_deepsleep",
                      "winner_shallow"});
  for (const double slack :
       {1.0, 1.2, 1.5, 1.8, 2.0, 2.4, 2.8, 3.2, 4.0, 6.0, 10.0}) {
    const double deadline = t_fast * slack;
    const auto race_deep = with_sleep.race_to_idle(work, deadline);
    const auto race_shallow = no_sleep.race_to_idle(work, deadline);
    const auto paced = no_sleep.pace(work, deadline);  // same for both
    const auto best_deep = with_sleep.best_under_deadline(work, deadline);
    const auto best_shallow = no_sleep.best_under_deadline(work, deadline);
    table.add_row({TablePrinter::fmt(slack, 3),
                   TablePrinter::fmt(deadline, 4),
                   TablePrinter::fmt(race_deep.energy_j, 4),
                   TablePrinter::fmt(race_shallow.energy_j, 4),
                   TablePrinter::fmt(paced.energy_j, 4), best_deep.policy,
                   best_shallow.policy});
  }
  table.print(std::cout);

  std::cout << "\nidle floor " << machine.idle_power_w() << " W vs sleep "
            << machine.sleep_power_w()
            << " W — who owns the slack decides the winner.\n";
  std::cout << "Shape checks: with deep sleep, race-to-idle wins at every "
               "slack (sleep is nearly free); without it, pace wins for "
               "slack up to ~t_min/t_max and the two converge at slack 1.\n";
  return 0;
}
