// Experiment E4 — synchronization limits parallel speedup (paper §III,
// citing Shore-MT [6]): "Even read-only synchronization already shows a
// significant serial part dramatically reducing the speedup with a growing
// number of parallel operators."
//
// A parallel aggregation (1024 morsels x 1 ms) synchronizes its result
// under four schemes; speedup vs. core count on the simulated multicore
// (DESIGN.md §5 — the host container has one vCPU). Critical-section
// lengths are calibrated from the real latches in src/txn/latch.hpp,
// measured on this host.
#include <iostream>

#include "bench_common.hpp"
#include "hw/sync_sim.hpp"
#include "txn/latch.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

/// Measures one uncontended lock+unlock round trip (ns).
template <typename Lock>
double measure_lock_ns() {
  Lock lock;
  constexpr int kIters = 200'000;
  volatile std::int64_t sink = 0;
  const double s = bench::time_best([&] {
    for (int i = 0; i < kIters; ++i) {
      lock.lock();
      sink = sink + 1;
      lock.unlock();
    }
  });
  return s / kIters * 1e9;
}

}  // namespace

int main() {
  std::cout << "== E4: speedup vs cores under synchronization schemes ==\n\n";

  const double spin_ns = measure_lock_ns<txn::Spinlock>();
  const double ticket_ns = measure_lock_ns<txn::TicketLock>();
  std::cout << "host-calibrated uncontended critical sections: spinlock "
            << spin_ns << " ns, ticket " << ticket_ns << " ns\n\n";

  const hw::MachineSpec machine = hw::MachineSpec::server();
  const auto& state = machine.dvfs.fastest();

  // A morsel = 1 ms of parallel aggregation work. Schemes differ in what
  // they serialize per morsel:
  //  * global-mutex:   merge a 4 KiB partial into the shared result under
  //                    one lock (~20 us under contention-free conditions).
  //  * global-atomic:  16 atomic fetch-adds; under contention each costs a
  //                    cache-line transfer (~100 ns each).
  //  * partitioned:    zero shared state; one serial merge of all partials
  //                    at the end (cores * 40 us).
  //  * optimistic:     validate-and-publish (~2 us), retries inflate the
  //                    parallel part with contention; modeled via a higher
  //                    effective critical section.
  constexpr std::int64_t kTasks = 1024;
  constexpr double kParallel = 1e-3;

  TablePrinter table({"cores", "mutex_speedup", "atomic_speedup",
                      "partitioned_speedup", "optimistic_speedup",
                      "mutex_J", "partitioned_J"});

  for (const int cores : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const hw::SyncWorkload mutex_wl{kTasks, kParallel - 20e-6, 20e-6, 0};
    const hw::SyncWorkload atomic_wl{kTasks, kParallel - 1.6e-6, 1.6e-6, 0};
    const hw::SyncWorkload part_wl{kTasks, kParallel, 0, cores * 40e-6};
    // Optimistic: validation cs 2 us; conflict probability grows with
    // cores, aborted work re-executes (inflates the parallel part).
    const double p_conflict =
        std::min(0.5, 0.004 * static_cast<double>(cores - 1));
    const hw::SyncWorkload occ_wl{
        kTasks, (kParallel - 2e-6) * (1.0 + p_conflict), 2e-6, 0};

    const auto mutex_r = simulate_sync(mutex_wl, cores, machine, state);
    const auto atomic_r = simulate_sync(atomic_wl, cores, machine, state);
    const auto part_r = simulate_sync(part_wl, cores, machine, state);
    const auto occ_r = simulate_sync(occ_wl, cores, machine, state);

    // Speedup against the clean (synchronization-free, retry-free) serial
    // time — otherwise a scheme's own overhead cancels out of its ratio
    // and optimistic retries would be invisible.
    const double t1 = static_cast<double>(kTasks) * kParallel;
    table.add_row({TablePrinter::fmt_int(cores),
                   TablePrinter::fmt(t1 / mutex_r.makespan_s, 4),
                   TablePrinter::fmt(t1 / atomic_r.makespan_s, 4),
                   TablePrinter::fmt(t1 / part_r.makespan_s, 4),
                   TablePrinter::fmt(t1 / occ_r.makespan_s, 4),
                   TablePrinter::fmt(mutex_r.energy_j, 4),
                   TablePrinter::fmt(part_r.energy_j, 4)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks (Shore-MT [6]): the mutex scheme saturates "
               "at ~ parallel/critical = "
            << (kParallel - 20e-6) / 20e-6
            << "x regardless of cores; atomics push the ceiling up ~12x "
               "further; partitioned scales until the serial merge "
               "dominates; optimistic tracks partitioned at low contention "
               "and decays as conflicts grow. Spinning burns energy: the "
               "mutex scheme costs more joules for the same work.\n";
  return 0;
}
