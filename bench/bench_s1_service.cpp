// Experiment S1 — the serving tier under open-loop Poisson arrivals.
//
// The paper's §IV demand — balance response time, throughput and energy
// "under a given energy constraint ... on a case-by-case basis" — measured
// on LIVE execution: one Poisson arrival schedule replayed against a
// QueryService under each of the three policies, next to the discrete-event
// StreamScheduler simulation of the *same* schedule. Both tiers share one
// sched::PolicyEngine, so differences are queueing/measurement noise, not
// policy drift.
//
// Reported per policy: mean/p95 latency, throughput, average power and
// joules per query (idle floor + policy-modeled busy energy — the same
// accounting the simulator uses). For the energy-cap policy the harness
// additionally tracks the rolling average power and reports whether it
// stayed under the cap.
//
//   $ ./bench_s1_service [queries_per_policy]   (default 240)
#include <algorithm>
#include <cstdint>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/database.hpp"
#include "query/request.hpp"
#include "sched/scheduler.hpp"
#include "server/query_service.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

struct PolicyOutcome {
  double mean_latency_s = 0;
  double p95_latency_s = 0;
  double throughput_qps = 0;
  double avg_power_w = 0;
  double energy_per_query_j = 0;
  double peak_rolling_w = 0;  ///< Live only; 0 for simulation rows.
};

query::LogicalPlan bench_plan() {
  return query::QueryBuilder("events")
      .filter_int("severity", 6, 7)
      .aggregate(query::AggOp::kCount)
      .aggregate(query::AggOp::kSum, "latency_us")
      .build();
}

void load_events(core::Database& db, std::size_t rows) {
  storage::Table& t = db.create_table(
      "events", storage::Schema({{"id", storage::TypeId::kInt64},
                                 {"severity", storage::TypeId::kInt64},
                                 {"latency_us", storage::TypeId::kInt64}}));
  Pcg32 rng(3);
  std::vector<std::int64_t> id(rows), sev(rows), lat(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    id[i] = static_cast<std::int64_t>(i);
    sev[i] = rng.next_bounded(8);
    lat[i] = rng.next_bounded(1'000'000);
  }
  t.set_column(0, storage::Column::from_int64("id", id));
  t.set_column(1, storage::Column::from_int64("severity", sev));
  t.set_column(2, storage::Column::from_int64("latency_us", lat));
}

/// Replays `stream`'s arrival times open-loop against a fresh service.
PolicyOutcome run_live(core::Database& db,
                       const std::vector<sched::QueryArrival>& stream,
                       sched::Policy policy, double cap_w) {
  server::ServiceOptions opts;
  opts.policy = policy;
  opts.power_cap_w = cap_w;
  opts.workers = 2;
  opts.power_window_s = 0.5;
  // Race-to-idle batching for the energy-minded policies; the latency
  // policy dispatches per arrival.
  opts.coalesce_window_s = policy == sched::Policy::kLatency ? 0.0 : 0.005;
  server::QueryService service(db, opts);
  auto session = service.open_session("bench");
  const query::LogicalPlan plan = bench_plan();

  std::vector<std::future<query::QueryResponse>> futures;
  futures.reserve(stream.size());
  Stopwatch wall;
  double peak_w = 0;
  for (const sched::QueryArrival& arrival : stream) {
    const double now = wall.elapsed_seconds();
    if (arrival.arrive_s > now)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(arrival.arrive_s - now));
    futures.push_back(
        service.submit(session, query::QueryRequest::from_plan(plan)));
    peak_w = std::max(peak_w, service.stats().avg_power_w);
  }

  StreamingStats latency;
  PercentileTracker p95;
  double policy_busy_j = 0;
  for (auto& f : futures) {
    const query::QueryResponse resp = f.get();
    if (!resp.ok()) continue;
    latency.add(resp.latency_s);
    p95.add(resp.latency_s);
    policy_busy_j += resp.policy_energy_j;
  }
  const double makespan = wall.elapsed_seconds();
  service.stop();
  peak_w = std::max(peak_w, service.stats().peak_power_w);

  PolicyOutcome out;
  out.mean_latency_s = latency.mean();
  out.p95_latency_s = p95.percentile(95);
  out.throughput_qps = static_cast<double>(latency.count()) / makespan;
  // Simulator-compatible accounting: static floor over the makespan plus
  // policy-modeled busy energy.
  const double total_j =
      db.machine().idle_power_w() * makespan + policy_busy_j;
  out.avg_power_w = total_j / makespan;
  out.energy_per_query_j = total_j / static_cast<double>(latency.count());
  out.peak_rolling_w = peak_w;
  return out;
}

/// One cell of the shared-scan sweep: closed-loop bursts of `concurrency`
/// compatible COUNT queries over the events fact table, with the serving
/// tier's scan fusion on or off.
struct SweepCell {
  double throughput_qps = 0;
  double p99_latency_s = 0;
  double joules_per_query = 0;  ///< Mean attributed (billed) J/query.
};

/// The burst members differ only in predicate bounds, so they bucket into
/// one sharing group; slot 0's bounds match across cells for comparability.
query::LogicalPlan sweep_plan(std::size_t slot) {
  const auto lo = static_cast<std::int64_t>((slot * 97'003) % 500'000);
  const auto hi = lo + 400'000 + static_cast<std::int64_t>(slot) * 10'000;
  return query::QueryBuilder("events")
      .filter_int("latency_us", lo, hi)
      .aggregate(query::AggOp::kCount)
      .build();
}

SweepCell run_sweep_cell(core::Database& db, std::size_t concurrency,
                         bool shared, std::size_t total_queries) {
  server::ServiceOptions opts;
  opts.policy = sched::Policy::kThroughput;
  // Wide enough that one burst always lands in one coalescing window;
  // pacing off so the cells compare fused work, not policy sleeps.
  opts.coalesce_window_s = 0.01;
  opts.max_batch = std::max<std::size_t>(concurrency, 2);
  opts.workers = 2;
  opts.pace_execution = false;
  opts.shared_scans = shared;
  server::QueryService service(db, opts);
  auto session = service.open_session("sweep");

  StreamingStats billed;
  PercentileTracker p99;
  std::size_t completed = 0;
  Stopwatch wall;
  for (std::size_t done = 0; done < total_queries; done += concurrency) {
    std::vector<std::future<query::QueryResponse>> futures;
    for (std::size_t slot = 0; slot < concurrency; ++slot)
      futures.push_back(service.submit(
          session, query::QueryRequest::from_plan(sweep_plan(slot))));
    for (auto& f : futures) {
      const query::QueryResponse resp = f.get();
      if (!resp.ok()) continue;
      ++completed;
      p99.add(resp.latency_s);
      billed.add(resp.billed_j);
    }
  }
  const double makespan = wall.elapsed_seconds();
  service.stop();

  SweepCell cell;
  cell.throughput_qps = static_cast<double>(completed) / makespan;
  cell.p99_latency_s = p99.percentile(99);
  cell.joules_per_query = billed.mean();
  return cell;
}

PolicyOutcome run_sim(const hw::MachineSpec& machine,
                      const std::vector<sched::QueryArrival>& stream,
                      sched::Policy policy, double cap_w) {
  sched::StreamScheduler scheduler(machine, policy, cap_w);
  const sched::ScheduleResult r = scheduler.run(stream);
  PolicyOutcome out;
  out.mean_latency_s = r.mean_latency_s;
  out.p95_latency_s = r.p95_latency_s;
  out.throughput_qps = r.throughput_qps;
  out.avg_power_w = r.avg_power_w;
  out.energy_per_query_j = r.energy_per_query_j;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t queries = 240;
  if (argc > 1) {
    try {
      queries = std::stoul(argv[1]);
    } catch (const std::exception&) {
      std::cerr << "usage: " << argv[0] << " [queries_per_policy >= 1]\n";
      return 2;
    }
    if (queries == 0) {
      std::cerr << "usage: " << argv[0] << " [queries_per_policy >= 1]\n";
      return 2;
    }
  }

  core::Database db;
  load_events(db, 200'000);
  const hw::MachineSpec& machine = db.machine();

  // Calibrate: one query's host cost and modeled work, to pick an arrival
  // rate around 60% of single-worker capacity.
  const query::LogicalPlan plan = bench_plan();
  core::RunResult probe = db.run(plan);
  probe = db.run(plan);  // Warm run, caches hot.
  const double service_s = std::max(probe.report.elapsed_s, 1e-5);
  const double rate_qps = std::clamp(0.6 / service_s, 20.0, 2000.0);
  const hw::Work per_query = probe.stats.work;

  const auto stream =
      sched::poisson_stream(queries, rate_qps, per_query, /*seed=*/42);

  // Cap between the efficient-state and f_max operating points so the
  // energy-cap policy genuinely has to throttle (computed from the live
  // latency-policy run below).
  std::cout << "== S1: serving tier, live vs. simulated, one Poisson stream "
               "==\n\n"
            << "query: ~" << service_s * 1e3 << " ms on host, stream: "
            << queries << " arrivals at " << rate_qps << " qps (seed 42)\n";

  const PolicyOutcome live_latency =
      run_live(db, stream, sched::Policy::kLatency, 0);
  // The cap policy consults the *rolling* monitor, so derive the cap from
  // the same metric: 40% of the rolling busy draw the uncapped run peaked
  // at — low enough to bind mid-stream, high enough to be satisfiable at
  // the efficient P-state.
  const double rolling_busy_w =
      live_latency.peak_rolling_w - machine.idle_power_w();
  const double cap_w = machine.idle_power_w() + 0.4 * rolling_busy_w;
  std::cout << "power cap for energy-cap policy: " << cap_w << " W (idle "
            << machine.idle_power_w() << " W + 40% of the uncapped peak "
            << "rolling busy draw, " << rolling_busy_w << " W)\n\n";

  const PolicyOutcome live_throughput =
      run_live(db, stream, sched::Policy::kThroughput, 0);
  const PolicyOutcome live_cap =
      run_live(db, stream, sched::Policy::kEnergyCap, cap_w);

  TablePrinter table({"policy", "tier", "mean_lat_ms", "p95_lat_ms",
                      "throughput_qps", "avg_W", "J_per_query"});
  const auto add = [&table](sched::Policy policy, const std::string& tier,
                            const PolicyOutcome& o) {
    table.add_row({sched::policy_name(policy), tier,
                   TablePrinter::fmt(o.mean_latency_s * 1e3, 4),
                   TablePrinter::fmt(o.p95_latency_s * 1e3, 4),
                   TablePrinter::fmt(o.throughput_qps, 4),
                   TablePrinter::fmt(o.avg_power_w, 4),
                   TablePrinter::fmt(o.energy_per_query_j, 4)});
  };
  for (const auto policy :
       {sched::Policy::kLatency, sched::Policy::kThroughput,
        sched::Policy::kEnergyCap}) {
    const double cap = policy == sched::Policy::kEnergyCap ? cap_w : 0;
    const PolicyOutcome& live = policy == sched::Policy::kLatency
                                    ? live_latency
                                : policy == sched::Policy::kThroughput
                                    ? live_throughput
                                    : live_cap;
    add(policy, "live", live);
    add(policy, "sim", run_sim(machine, stream, policy, cap));
  }
  table.print(std::cout);

  const bool held = live_cap.peak_rolling_w <= cap_w * 1.10;
  std::cout << "\nenergy-cap rolling average power: peak "
            << live_cap.peak_rolling_w << " W vs cap " << cap_w << " W -> "
            << (held ? "HELD" : "EXCEEDED")
            << " (policy reacts at the cap, so transient overshoot is "
               "bounded by one window)\n";
  std::cout << "\nShape checks: the latency policy minimizes mean/p95 "
               "latency at the highest J/query; the throughput policy paces "
               "to the efficient P-state, trading latency for fewer joules; "
               "the energy-cap run tracks f_max until the rolling average "
               "hits the cap, then degrades toward the throughput point. "
               "Live and sim rows share one PolicyEngine, so their per-"
               "policy ordering matches even where absolute figures differ "
               "(the simulator models an 8-core machine; the live tier runs "
               "on this host).\n";

  // ---- Shared-scan sweep: concurrency x {solo, shared} ----------------------
  // Bursts of compatible queries over the fact table; with sharing on the
  // service fuses each burst into one pass (Database::run_batch), so the
  // table's scan DRAM bytes are charged once per burst and the attributed
  // J/query drops toward 1/concurrency of the solo figure.
  std::cout << "\n== shared scans: burst concurrency x fusion ==\n\n";
  bench::BenchJson json("s1_service");
  TablePrinter sweep({"concurrency", "mode", "throughput_qps", "p99_lat_ms",
                      "attributed_J_per_query"});
  const std::size_t per_cell = std::max<std::size_t>(queries / 5, 24);
  double solo8_j = 0, shared8_j = 0, solo8_qps = 0, shared8_qps = 0;
  for (const std::size_t c : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    for (const bool shared : {false, true}) {
      const SweepCell cell =
          run_sweep_cell(db, c, shared, (per_cell / c) * c);
      const std::string mode = shared ? "shared" : "solo";
      sweep.add_row({std::to_string(c), mode,
                     TablePrinter::fmt(cell.throughput_qps, 4),
                     TablePrinter::fmt(cell.p99_latency_s * 1e3, 4),
                     TablePrinter::fmt(cell.joules_per_query, 4)});
      const std::string key = "c" + std::to_string(c) + "_" + mode;
      json.add(key + "_throughput_qps", cell.throughput_qps);
      json.add(key + "_p99_latency_ms", cell.p99_latency_s * 1e3);
      json.add(key + "_joules_per_query", cell.joules_per_query);
      if (c == 8 && shared) {
        shared8_j = cell.joules_per_query;
        shared8_qps = cell.throughput_qps;
      } else if (c == 8) {
        solo8_j = cell.joules_per_query;
        solo8_qps = cell.throughput_qps;
      }
    }
  }
  sweep.print(std::cout);
  const double j_ratio = shared8_j > 0 ? solo8_j / shared8_j : 0;
  const double qps_ratio = solo8_qps > 0 ? shared8_qps / solo8_qps : 0;
  json.add("c8_joules_ratio_solo_over_shared", j_ratio);
  json.add("c8_throughput_ratio_shared_over_solo", qps_ratio);
  std::cout << "\nat concurrency 8: " << j_ratio
            << "x lower attributed J/query and " << qps_ratio
            << "x the aggregate throughput with sharing on (one fused pass "
               "per burst vs one pass per member)\n";
  std::cout << "wrote " << json.write() << "\n";
  return 0;
}
