// Experiment P1 — the single-pass vectorized aggregation pipeline.
//
// Same queries, two executor paths:
//   * row-at-a-time  — one pass per AggSpec, per-query key min/max scans,
//                      widened int64 copies of int32 columns;
//   * vectorized     — exec/vector_agg: all aggregates in ONE pass over
//                      each input column, key ranges from the cached
//                      ColumnStats, morsel-parallel when a pool is given.
//
// The DRAM ledger (ExecStats.work.dram_bytes) shows the single-pass
// property directly; modeled joules drop with it — the paper's "fastest
// plan is the greenest" applied to the engine's own hot path.
//
// Usage: bench_p1_pipeline [rows]   (default 10M; CI uses fewer)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "query/executor.hpp"
#include "sched/thread_pool.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

struct PathResult {
  double wall_s = 0;
  double joules = 0;
  double dram_bytes = 0;
  std::uint64_t groups = 0;
};

PathResult run_path(query::Executor& ex, const query::LogicalPlan& plan,
                    const query::ExecOptions& options,
                    const hw::MachineSpec& machine) {
  PathResult r;
  query::ExecStats probe;  // one untimed run for the stats snapshot
  (void)ex.execute(plan, probe, options);
  r.dram_bytes = probe.work.dram_bytes;
  r.groups = probe.groups;
  r.wall_s = bench::time_best([&] {
    query::ExecStats stats;
    (void)ex.execute(plan, stats, options);
  });
  r.joules = bench::modeled_joules(machine, r.wall_s, r.dram_bytes);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 10'000'000;
  std::cout << "== P1: single-pass vectorized aggregation pipeline ("
            << rows << " rows) ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();

  // sales(k int32[1000 groups], v1 int64, v2 int32, v3 double)
  storage::Catalog catalog;
  storage::Table& sales = catalog.add(storage::Table(
      "sales", storage::Schema({{"k", storage::TypeId::kInt32},
                                {"v1", storage::TypeId::kInt64},
                                {"v2", storage::TypeId::kInt32},
                                {"v3", storage::TypeId::kDouble}})));
  {
    const auto k = bench::uniform_i32(rows, 1000, 1);
    const auto v1 = bench::uniform_i64(rows, 1'000'000, 2);
    const auto v2 = bench::uniform_i32(rows, 10'000, 3);
    std::vector<double> v3(rows);
    Pcg32 rng(4);
    for (auto& x : v3) x = rng.next_double() * 100.0;
    sales.set_column(0, storage::Column::from_int32("k", k));
    sales.set_column(1, storage::Column::from_int64("v1", v1));
    sales.set_column(2, storage::Column::from_int32("v2", v2));
    sales.set_column(3, storage::Column::from_double("v3", v3));
  }
  query::Executor ex(catalog);

  // Q1: multi-aggregate group-by (the serving tier's hottest shape).
  const auto q1 = query::QueryBuilder("sales")
                      .filter_int("v1", 0, 800'000)  // ~80% selectivity
                      .group_by("k")
                      .aggregate(query::AggOp::kCount)
                      .aggregate(query::AggOp::kSum, "v1")
                      .aggregate(query::AggOp::kMin, "v2")
                      .aggregate(query::AggOp::kMax, "v2")
                      .aggregate(query::AggOp::kAvg, "v3")
                      .build();
  // Q2: global multi-aggregate over ONE column — worst case for the
  // one-pass-per-AggSpec path (4 rescans vs 1 pass).
  const auto q2 = query::QueryBuilder("sales")
                      .aggregate(query::AggOp::kSum, "v1")
                      .aggregate(query::AggOp::kMin, "v1")
                      .aggregate(query::AggOp::kMax, "v1")
                      .aggregate(query::AggOp::kAvg, "v1")
                      .build();

  query::ExecOptions legacy;
  legacy.agg_path = query::AggPath::kRowAtATime;
  legacy.use_encodings = false;
  // Plain vectorized isolates the single-pass effect; the packed arm adds
  // the compressed column segments (the production default) on top.
  query::ExecOptions vectorized;
  vectorized.use_encodings = false;
  query::ExecOptions vec_packed;  // defaults: vectorized + packed segments
  sched::ThreadPool pool;
  query::ExecOptions vec_parallel;
  vec_parallel.pool = &pool;

  bench::BenchJson json("p1_pipeline");
  json.add("rows", static_cast<double>(rows));
  TablePrinter table({"query", "path", "time_ms", "modeled_J", "dram_MB",
                      "speedup", "J_ratio"});

  const auto compare = [&](const char* qname, const query::LogicalPlan& q) {
    const PathResult base = run_path(ex, q, legacy, machine);
    const PathResult vec = run_path(ex, q, vectorized, machine);
    const PathResult packed = run_path(ex, q, vec_packed, machine);
    const PathResult par = run_path(ex, q, vec_parallel, machine);
    const auto add = [&](const char* path, const PathResult& r) {
      table.add_row({qname, path, TablePrinter::fmt(r.wall_s * 1e3, 4),
                     TablePrinter::fmt(r.joules, 4),
                     TablePrinter::fmt(r.dram_bytes / 1e6, 3),
                     TablePrinter::fmt(base.wall_s / r.wall_s, 3),
                     TablePrinter::fmt(base.joules / r.joules, 3)});
      const std::string prefix = std::string(qname) + "_" + path;
      json.add(prefix + "_wall_s", r.wall_s);
      json.add(prefix + "_joules", r.joules);
      json.add(prefix + "_dram_bytes", r.dram_bytes);
    };
    add("row-at-a-time", base);
    add("vectorized", vec);
    add("vectorized+packed", packed);
    add("vectorized+pool", par);
  };
  compare("q1_groupby", q1);
  compare("q2_global", q2);

  table.print(std::cout);
  std::cout << "(vectorized touches each input column once: dram_MB is the "
               "single-pass floor; +packed charges the bit-packed images "
               "instead of plain widths; joules track bytes + time)\n";
  std::cout << "wrote " << json.write() << "\n";
  return 0;
}
