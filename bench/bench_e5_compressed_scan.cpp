// Experiment E5 — scans on compressed (bit-packed) columns (paper §IV.B:
// "main memory is the new disk ... cache lines may be considered the new
// block size"). Narrow widths move fewer bytes; with SIMD-friendly widths
// the scan runs directly on the packed image and beats the raw scan once
// memory-bound.
//
// Width sweep: host-measured scan throughput on packed data vs. the raw
// 64-bit scan, plus the decompress-then-scan arm, with modeled energy.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/scan_kernels.hpp"
#include "storage/bitpack.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E5: scans on bit-packed columns ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();

  constexpr std::size_t kRows = 16'000'000;  // 122 MiB raw, LLC-busting
  Pcg32 rng(3);

  // Raw baseline: 64-bit values in a 20-bit domain.
  std::vector<std::int64_t> raw(kRows);
  for (auto& v : raw)
    v = static_cast<std::int64_t>(rng.next() & 0xfffff);
  BitVector sel(kRows);
  const std::int64_t lo = 0x10000, hi = 0x4ffff;  // ~25% selectivity

  const double raw_s = bench::time_best(
      [&] { exec::scan_bitmap_best64(raw, lo, hi, sel); }, 0.4);
  const double raw_gbps = kRows * 8.0 / raw_s / 1e9;
  std::cout << "raw 64-bit scan: "
            << kRows / raw_s / 1e6 << " Mtuples/s (" << raw_gbps
            << " GB/s touched), modeled "
            << bench::modeled_joules(machine, raw_s, kRows * 8.0) << " J\n\n";

  TablePrinter table({"bits", "packed_MiB", "scan_Mtps", "vs_raw",
                      "unpack_then_scan_Mtps", "modeled_nJ_per_tuple"});
  BitVector ref(kRows);

  for (const unsigned bits : {4u, 8u, 12u, 16u, 20u, 24u, 32u}) {
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::vector<std::uint64_t> values(kRows);
    for (auto& v : values) v = rng.next64() & mask;
    const auto packed = storage::bitpack(values, bits);
    const std::uint64_t plo = mask / 4, phi = mask / 2;

    const double packed_s = bench::time_best(
        [&] {
          exec::scan_packed_bitmap(packed, bits, kRows, plo, phi, sel);
        },
        0.4);

    // Decompress-then-scan arm.
    std::vector<std::uint64_t> scratch(kRows);
    const double unpack_scan_s = bench::time_best(
        [&] {
          storage::bitunpack(packed, bits, kRows, scratch);
          exec::scan_bitmap_best64(
              std::span<const std::int64_t>(
                  reinterpret_cast<const std::int64_t*>(scratch.data()),
                  kRows),
              static_cast<std::int64_t>(plo), static_cast<std::int64_t>(phi),
              ref);
        },
        0.4);

    const double bytes_touched = static_cast<double>(packed.size() * 8);
    const double nj_per_tuple =
        bench::modeled_joules(machine, packed_s, bytes_touched) / kRows * 1e9;

    table.add_row(
        {TablePrinter::fmt_int(bits),
         TablePrinter::fmt(bytes_touched / (1 << 20), 4),
         TablePrinter::fmt(kRows / packed_s / 1e6, 4),
         TablePrinter::fmt(raw_s / packed_s, 3),
         TablePrinter::fmt(kRows / unpack_scan_s / 1e6, 4),
         TablePrinter::fmt(nj_per_tuple, 3)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks: byte-aligned widths (8/16/32) scan the "
               "packed image directly with SIMD and beat the raw scan by "
               "the bandwidth ratio; odd widths pay scalar unpacking; "
               "scan-on-packed always beats decompress-then-scan; energy "
               "per tuple falls with width (fewer DRAM bytes).\n";
  return 0;
}
