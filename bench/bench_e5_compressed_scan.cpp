// Experiment E5 — scans on compressed (bit-packed) columns (paper §IV.B:
// "main memory is the new disk ... cache lines may be considered the new
// block size"). Narrow widths move fewer bytes; with SIMD-friendly widths
// the scan runs directly on the packed image and beats the raw scan once
// memory-bound.
//
// Width sweep: host-measured scan throughput on packed data vs. the raw
// 64-bit scan, plus the decompress-then-scan arm, with modeled energy.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/scan_kernels.hpp"
#include "query/executor.hpp"
#include "storage/bitpack.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

/// End-to-end arm: the same query through query::Executor with the
/// compressed segments on vs off — what the kernel sweep above predicts,
/// measured through the whole pipeline with real DRAM-ledger attribution.
void run_pipeline_arm(const hw::MachineSpec& machine, bench::BenchJson& json,
                      std::size_t rows) {
  storage::Catalog catalog;
  storage::Table& t = catalog.add(storage::Table(
      "events", storage::Schema({{"code", storage::TypeId::kInt64},
                                 {"val", storage::TypeId::kInt32}})));
  {
    Pcg32 rng(11);
    std::vector<std::int64_t> code(rows);
    std::vector<std::int32_t> val(rows);
    for (auto& v : code)
      v = static_cast<std::int64_t>(rng.next() & 0xfffff);  // 20-bit domain
    for (auto& v : val)
      v = static_cast<std::int32_t>(rng.next_bounded(10'000));
    t.set_column(0, storage::Column::from_int64("code", code));
    t.set_column(1, storage::Column::from_int32("val", val));
  }
  query::Executor ex(catalog);
  const auto plan = query::QueryBuilder("events")
                        .filter_int("code", 0x10000, 0x4ffff)  // ~25%
                        .group_by("val")
                        .aggregate(query::AggOp::kCount)
                        .aggregate(query::AggOp::kSum, "code")
                        .build();

  // Two energy figures per arm:
  //  * wall_J       — measured wall time on THIS host × modeled power (a
  //    1-core VM is compute-bound, so packed may not win here);
  //  * attributed_J — the engine's own settlement quantum: roofline
  //    execution time of the attributed work on the reference server spec
  //    plus its DRAM-lane energy. This is what the admission controller
  //    debits, and it tracks the ledger's packed byte counts directly.
  TablePrinter table({"arm", "time_ms", "dram_MB", "wall_J", "attributed_J",
                      "attr_vs_plain"});
  double plain_attr = 0;
  const hw::DvfsState state = machine.dvfs.fastest();
  for (const bool packed : {false, true}) {
    query::ExecOptions options;
    options.use_encodings = packed;
    query::ExecStats probe;
    (void)ex.execute(plan, probe, options);
    const double wall_s = bench::time_best([&] {
      query::ExecStats stats;
      (void)ex.execute(plan, stats, options);
    });
    const double wall_j =
        bench::modeled_joules(machine, wall_s, probe.work.dram_bytes);
    const double attributed_j = machine.energy_j(probe.work, state);
    if (!packed) plain_attr = attributed_j;
    const char* arm = packed ? "pipeline-packed" : "pipeline-plain";
    table.add_row({arm, TablePrinter::fmt(wall_s * 1e3, 4),
                   TablePrinter::fmt(probe.work.dram_bytes / 1e6, 3),
                   TablePrinter::fmt(wall_j, 4),
                   TablePrinter::fmt(attributed_j, 4),
                   TablePrinter::fmt(plain_attr / attributed_j, 3)});
    const std::string prefix = packed ? "pipeline_packed" : "pipeline_plain";
    json.add(prefix + "_wall_s", wall_s);
    json.add(prefix + "_wall_joules", wall_j);
    json.add(prefix + "_attributed_joules", attributed_j);
    json.add(prefix + "_dram_bytes", probe.work.dram_bytes);
  }
  std::cout << "\n== E5b: the same effect in the query pipeline ("
            << rows << " rows, filter+group-by) ==\n\n";
  table.print(std::cout);
  std::cout << "(the packed arm streams the bit-packed images: the DRAM "
               "ledger and the attributed/settled joules drop with the "
               "byte count; wall time additionally drops once the host is "
               "memory-bound)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== E5: scans on bit-packed columns ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();
  bench::BenchJson json("e5_compressed_scan");

  const std::size_t kRows =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
               : 16'000'000;  // 122 MiB raw, LLC-busting
  json.add("rows", static_cast<double>(kRows));
  Pcg32 rng(3);

  // Raw baseline: 64-bit values in a 20-bit domain.
  std::vector<std::int64_t> raw(kRows);
  for (auto& v : raw)
    v = static_cast<std::int64_t>(rng.next() & 0xfffff);
  BitVector sel(kRows);
  const std::int64_t lo = 0x10000, hi = 0x4ffff;  // ~25% selectivity

  const double raw_s = bench::time_best(
      [&] { exec::scan_bitmap_best64(raw, lo, hi, sel); }, 0.4);
  const double raw_gbps = kRows * 8.0 / raw_s / 1e9;
  std::cout << "raw 64-bit scan: "
            << kRows / raw_s / 1e6 << " Mtuples/s (" << raw_gbps
            << " GB/s touched), modeled "
            << bench::modeled_joules(machine, raw_s, kRows * 8.0) << " J\n\n";

  TablePrinter table({"bits", "packed_MiB", "scan_Mtps", "vs_raw",
                      "unpack_then_scan_Mtps", "modeled_nJ_per_tuple"});
  BitVector ref(kRows);

  for (const unsigned bits : {4u, 8u, 12u, 16u, 20u, 24u, 32u}) {
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::vector<std::uint64_t> values(kRows);
    for (auto& v : values) v = rng.next64() & mask;
    const auto packed = storage::bitpack(values, bits);
    const std::uint64_t plo = mask / 4, phi = mask / 2;

    const double packed_s = bench::time_best(
        [&] {
          exec::scan_packed_bitmap(packed, bits, kRows, plo, phi, sel);
        },
        0.4);

    // Decompress-then-scan arm.
    std::vector<std::uint64_t> scratch(kRows);
    const double unpack_scan_s = bench::time_best(
        [&] {
          storage::bitunpack(packed, bits, kRows, scratch);
          exec::scan_bitmap_best64(
              std::span<const std::int64_t>(
                  reinterpret_cast<const std::int64_t*>(scratch.data()),
                  kRows),
              static_cast<std::int64_t>(plo), static_cast<std::int64_t>(phi),
              ref);
        },
        0.4);

    const double bytes_touched = static_cast<double>(packed.size() * 8);
    const double nj_per_tuple =
        bench::modeled_joules(machine, packed_s, bytes_touched) / kRows * 1e9;

    table.add_row(
        {TablePrinter::fmt_int(bits),
         TablePrinter::fmt(bytes_touched / (1 << 20), 4),
         TablePrinter::fmt(kRows / packed_s / 1e6, 4),
         TablePrinter::fmt(raw_s / packed_s, 3),
         TablePrinter::fmt(kRows / unpack_scan_s / 1e6, 4),
         TablePrinter::fmt(nj_per_tuple, 3)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks: byte-aligned widths (8/16/32) scan the "
               "packed image directly with SIMD and beat the raw scan by "
               "the bandwidth ratio; odd widths pay scalar unpacking; "
               "scan-on-packed always beats decompress-then-scan; energy "
               "per tuple falls with width (fewer DRAM bytes).\n";

  run_pipeline_arm(machine, json, kRows);
  std::cout << "wrote " << json.write() << "\n";
  return 0;
}
