// Experiment F2 — "Impact of Energy Constraint on Query Optimization"
// (the paper's Figure 2, reproduced quantitatively).
//
// Sweeps a per-query energy budget and reports the best achievable response
// time over the (plan × P-state × cores) configuration space, under both
// accounting policies (dedicated vs. shared server), for a compute-bound
// and a memory-bound query.
//
// Paper claim: "the individual response time of a query may suffer from
// improved energy efficiency ... the system has to flexibly balance query
// response time minimization and throughput maximization under a given
// energy constraint on a case-by-case basis (Figure 2)."
#include <iostream>

#include "opt/energy_optimizer.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

void run_sweep(const char* label, const std::vector<opt::PlanCandidate>& plans,
               opt::Accounting accounting) {
  const opt::EnergyOptimizer optimizer(hw::MachineSpec::server(), accounting);
  const opt::PlanPoint floor_point = optimizer.min_energy_point(plans);
  const auto fastest = optimizer.best_under_budget(plans, 1e18);

  std::cout << "\n[" << label << ", "
            << (accounting == opt::Accounting::kFullPackage
                    ? "dedicated-server accounting"
                    : "shared-server (incremental) accounting")
            << "]\n";
  std::cout << "energy floor: " << floor_point.energy_j << " J ("
            << floor_point.plan_name << " @ " << floor_point.state.freq_ghz
            << " GHz x" << floor_point.cores << ")\n";

  TablePrinter table(
      {"budget_J", "response_s", "plan", "freq_GHz", "cores", "spent_J"});
  table.add_row({TablePrinter::fmt(floor_point.energy_j * 0.5, 4),
                 "infeasible", "-", "-", "-", "-"});
  for (double mult : {1.0, 1.1, 1.3, 1.6, 2.0, 3.0, 5.0, 10.0}) {
    const double budget = floor_point.energy_j * mult;
    const auto p = optimizer.best_under_budget(plans, budget);
    if (!p) continue;
    table.add_row({TablePrinter::fmt(budget, 4),
                   TablePrinter::fmt(p->time_s, 4), p->plan_name,
                   TablePrinter::fmt(p->state.freq_ghz, 3),
                   TablePrinter::fmt_int(p->cores),
                   TablePrinter::fmt(p->energy_j, 4)});
  }
  table.print(std::cout);
  if (fastest)
    std::cout << "unconstrained optimum: " << fastest->time_s << " s at "
              << fastest->energy_j << " J ("
              << TablePrinter::fmt(fastest->energy_j / floor_point.energy_j, 3)
              << "x the floor)\n";

  std::cout << "Pareto frontier (time vs energy):\n";
  TablePrinter fr({"time_s", "energy_J", "plan", "freq_GHz", "cores"});
  for (const auto& p :
       opt::EnergyOptimizer::pareto(optimizer.enumerate(plans)))
    fr.add_row({TablePrinter::fmt(p.time_s, 4),
                TablePrinter::fmt(p.energy_j, 4), p.plan_name,
                TablePrinter::fmt(p.state.freq_ghz, 3),
                TablePrinter::fmt_int(p.cores)});
  fr.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "== F2: response time under an energy budget (paper Fig. 2) ==\n";

  // Compute-bound analytical query: hash-heavy aggregation over 500M rows.
  const std::vector<opt::PlanCandidate> compute = {
      {"hash-agg-full", {60e9, 4e9}},
      {"hash-agg-pruned", {12e9, 0.8e9}},
  };
  // Memory-bound scan: 40 GB streamed, few cycles.
  const std::vector<opt::PlanCandidate> memory = {
      {"scan-full", {5e9, 40e9}},
      {"scan-zonemap-pruned", {1e9, 8e9}},
  };

  for (const auto accounting :
       {opt::Accounting::kFullPackage, opt::Accounting::kIncremental}) {
    run_sweep("compute-bound", compute, accounting);
    run_sweep("memory-bound", memory, accounting);
  }

  std::cout << "\nShape checks (paper Fig. 2): response time decreases "
               "monotonically with budget; infeasible region below the "
               "floor; curve saturates at the unconstrained optimum.\n";
  return 0;
}
