// K0 — google-benchmark micro suite backing the experiment harnesses:
// scan kernels, bit packing, codecs, hash table, group-by, join, LZ.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "exec/aggregate.hpp"
#include "exec/expression.hpp"
#include "exec/fused.hpp"
#include "exec/hash_table.hpp"
#include "exec/join.hpp"
#include "exec/radix_join.hpp"
#include "exec/scan_kernels.hpp"
#include "storage/bitpack.hpp"
#include "storage/int_codec.hpp"
#include "storage/lz.hpp"
#include "util/rng.hpp"

namespace {

using namespace eidb;

std::vector<std::int32_t> data_i32(std::size_t n) {
  Pcg32 rng(1);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_bounded(100000));
  return v;
}

std::vector<std::int64_t> data_i64(std::size_t n, std::uint32_t domain) {
  Pcg32 rng(2);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.next_bounded(domain);
  return v;
}

// -- scan kernels -------------------------------------------------------------

void BM_ScanBranching(benchmark::State& state) {
  const auto v = data_i32(1 << 20);
  const auto hi = static_cast<std::int32_t>(state.range(0));
  std::vector<std::uint32_t> out(v.size());
  for (auto _ : state)
    benchmark::DoNotOptimize(exec::scan_branching(v, 0, hi, out.data()));
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_ScanBranching)->Arg(1000)->Arg(50000)->Arg(99000);

void BM_ScanPredicated(benchmark::State& state) {
  const auto v = data_i32(1 << 20);
  const auto hi = static_cast<std::int32_t>(state.range(0));
  std::vector<std::uint32_t> out(v.size());
  for (auto _ : state)
    benchmark::DoNotOptimize(exec::scan_predicated(v, 0, hi, out.data()));
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_ScanPredicated)->Arg(1000)->Arg(50000)->Arg(99000);

void BM_ScanAvx2(benchmark::State& state) {
  const auto v = data_i32(1 << 20);
  BitVector out(v.size());
  for (auto _ : state) {
    exec::scan_bitmap_avx2(v, 0, 50000, out);
    benchmark::DoNotOptimize(out.words());
  }
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_ScanAvx2);

void BM_ScanAvx512(benchmark::State& state) {
  const auto v = data_i32(1 << 20);
  BitVector out(v.size());
  for (auto _ : state) {
    exec::scan_bitmap_avx512(v, 0, 50000, out);
    benchmark::DoNotOptimize(out.words());
  }
  state.SetItemsProcessed(state.iterations() * v.size());
}
BENCHMARK(BM_ScanAvx512);

void BM_ScanPacked(benchmark::State& state) {
  const auto bits = static_cast<unsigned>(state.range(0));
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  Pcg32 rng(3);
  std::vector<std::uint64_t> values(1 << 20);
  for (auto& v : values) v = rng.next64() & mask;
  const auto packed = storage::bitpack(values, bits);
  BitVector out(values.size());
  for (auto _ : state) {
    exec::scan_packed_bitmap(packed, bits, values.size(), mask / 4, mask / 2,
                             out);
    benchmark::DoNotOptimize(out.words());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_ScanPacked)->Arg(8)->Arg(12)->Arg(16)->Arg(32);

// -- bit packing ----------------------------------------------------------------

void BM_BitPack(benchmark::State& state) {
  Pcg32 rng(4);
  std::vector<std::uint64_t> values(1 << 18);
  for (auto& v : values) v = rng.next() & 0xfff;
  for (auto _ : state)
    benchmark::DoNotOptimize(storage::bitpack(values, 12));
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_BitPack);

void BM_BitUnpack(benchmark::State& state) {
  Pcg32 rng(5);
  std::vector<std::uint64_t> values(1 << 18);
  for (auto& v : values) v = rng.next() & 0xfff;
  const auto packed = storage::bitpack(values, 12);
  std::vector<std::uint64_t> out(values.size());
  for (auto _ : state) {
    storage::bitunpack(packed, 12, values.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_BitUnpack);

// -- codecs ----------------------------------------------------------------------

void BM_CodecEncode(benchmark::State& state) {
  const auto kind = static_cast<storage::CodecKind>(state.range(0));
  const auto codec = storage::make_codec(kind);
  const auto values = data_i64(1 << 17, 4096);
  for (auto _ : state) benchmark::DoNotOptimize(codec->encode(values));
  state.SetItemsProcessed(state.iterations() * values.size());
  state.SetLabel(storage::codec_name(kind));
}
BENCHMARK(BM_CodecEncode)->DenseRange(0, 4);

void BM_CodecDecode(benchmark::State& state) {
  const auto kind = static_cast<storage::CodecKind>(state.range(0));
  const auto codec = storage::make_codec(kind);
  const auto values = data_i64(1 << 17, 4096);
  const auto encoded = codec->encode(values);
  for (auto _ : state) benchmark::DoNotOptimize(codec->decode(encoded));
  state.SetItemsProcessed(state.iterations() * values.size());
  state.SetLabel(storage::codec_name(kind));
}
BENCHMARK(BM_CodecDecode)->DenseRange(0, 4);

// -- LZ ---------------------------------------------------------------------------

void BM_LzCompressText(benchmark::State& state) {
  std::string s;
  for (int i = 0; i < 20000; ++i) s += "row_" + std::to_string(i % 500);
  std::vector<std::byte> in(s.size());
  std::memcpy(in.data(), s.data(), s.size());
  for (auto _ : state) benchmark::DoNotOptimize(storage::lz_compress(in));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_LzCompressText);

void BM_LzDecompress(benchmark::State& state) {
  std::string s;
  for (int i = 0; i < 20000; ++i) s += "row_" + std::to_string(i % 500);
  std::vector<std::byte> in(s.size());
  std::memcpy(in.data(), s.data(), s.size());
  const auto compressed = storage::lz_compress(in);
  for (auto _ : state)
    benchmark::DoNotOptimize(storage::lz_decompress(compressed, in.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_LzDecompress);

// -- hash table / group-by / join ---------------------------------------------------

void BM_HashTableInsert(benchmark::State& state) {
  const auto keys = data_i64(1 << 16, 1 << 30);
  for (auto _ : state) {
    exec::HashTable<std::int64_t> table(keys.size());
    for (const auto k : keys) table.get_or_insert(k) += 1;
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_HashTableInsert);

void BM_HashTableProbe(benchmark::State& state) {
  const auto keys = data_i64(1 << 16, 1 << 30);
  exec::HashTable<std::int64_t> table(keys.size());
  for (const auto k : keys) table.get_or_insert(k) += 1;
  for (auto _ : state) {
    std::int64_t hits = 0;
    for (const auto k : keys) hits += table.find(k) != nullptr;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_HashTableProbe);

void BM_GroupAggregate(benchmark::State& state) {
  const bool dense = state.range(0) != 0;
  const auto keys = data_i64(1 << 19, dense ? 1024 : 1 << 30);
  const auto vals = data_i64(1 << 19, 1000);
  BitVector sel(keys.size());
  sel.set_all();
  for (auto _ : state)
    benchmark::DoNotOptimize(exec::group_aggregate(
        keys, vals, sel,
        dense ? exec::GroupStrategy::kDenseArray : exec::GroupStrategy::kHash));
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.SetLabel(dense ? "dense" : "hash");
}
BENCHMARK(BM_GroupAggregate)->Arg(1)->Arg(0);

void BM_HashJoin(benchmark::State& state) {
  const auto build = data_i64(1 << 16, 1 << 16);
  const auto probe = data_i64(1 << 18, 1 << 16);
  BitVector bsel(build.size()), psel(probe.size());
  bsel.set_all();
  psel.set_all();
  for (auto _ : state)
    benchmark::DoNotOptimize(exec::hash_join(build, bsel, probe, psel));
  state.SetItemsProcessed(state.iterations() * probe.size());
}
BENCHMARK(BM_HashJoin);

void BM_RadixJoin(benchmark::State& state) {
  const auto bits = static_cast<unsigned>(state.range(0));
  const auto build = data_i64(1 << 18, 1 << 18);  // cache-busting build
  const auto probe = data_i64(1 << 19, 1 << 18);
  BitVector bsel(build.size()), psel(probe.size());
  bsel.set_all();
  psel.set_all();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        exec::radix_hash_join(build, bsel, probe, psel, bits));
  state.SetItemsProcessed(state.iterations() * probe.size());
}
BENCHMARK(BM_RadixJoin)->Arg(1)->Arg(4)->Arg(8);

void BM_FusedFilterAggregate(benchmark::State& state) {
  const auto keys = data_i64(1 << 20, 100000);
  const auto vals = data_i64(1 << 20, 1000);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        exec::fused_filter_aggregate(keys, 0, 49999, vals));
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_FusedFilterAggregate);

void BM_ExpressionEval(benchmark::State& state) {
  using storage::Column;
  storage::Table t("t", storage::Schema({{"a", storage::TypeId::kInt64},
                                         {"b", storage::TypeId::kInt64}}));
  const auto a = data_i64(1 << 20, 1000);
  const auto b = data_i64(1 << 20, 100);
  t.set_column(0, Column::from_int64("a", a));
  t.set_column(1, Column::from_int64("b", b));
  // a * (1 - b/100)
  const auto e = exec::Expr::binary(
      exec::ExprOp::kMul, exec::Expr::column("a"),
      exec::Expr::binary(
          exec::ExprOp::kSub, exec::Expr::literal(1),
          exec::Expr::binary(exec::ExprOp::kDiv, exec::Expr::column("b"),
                             exec::Expr::literal(100))));
  std::vector<double> out;
  for (auto _ : state) {
    exec::evaluate_expression(*e, t, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_ExpressionEval);

}  // namespace
