// Experiment E3 — selectivity-dependent operator choice (paper §IV.B,
// citing Ross [17]): "selectivity factors significantly impact the success
// of branch prediction forcing the operator to switch between different
// implementations".
//
// Selectivity sweep of the same range selection executed by the branching,
// predicated, AVX2 and AVX-512 kernels (host-measured ns/tuple), plus the
// adaptive operator (cost-model pick). Expected shape: branching forms a
// hump peaking near 50% selectivity; predicated is flat; SIMD is flat and
// lowest; the adaptive line hugs the lower envelope.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/adaptive_scan.hpp"
#include "exec/scan_kernels.hpp"
#include "opt/cost_model.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E3: scan-variant selectivity sweep (ns/tuple, measured) "
               "==\n\n";
  constexpr std::size_t kRows = 4'000'000;
  constexpr std::int32_t kDomain = 100'000;
  const auto data = bench::uniform_i32(kRows, kDomain, 1);
  std::vector<std::uint32_t> idx(kRows);
  BitVector bitmap(kRows);

  const opt::CostModel model = opt::CostModel::calibrate();

  TablePrinter table({"selectivity", "branching", "predicated", "avx2",
                      "avx512", "adaptive", "adaptive_pick"});
  const double to_ns = 1e9 / static_cast<double>(kRows);

  for (const double sel :
       {0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
        0.99, 0.999}) {
    const auto hi = static_cast<std::int32_t>(sel * kDomain) - 1;
    const double branching = bench::time_best(
        [&] { (void)exec::scan_branching(data, 0, hi, idx.data()); });
    const double predicated = bench::time_best(
        [&] { (void)exec::scan_predicated(data, 0, hi, idx.data()); });
    const double avx2 = bench::time_best(
        [&] { exec::scan_bitmap_avx2(data, 0, hi, bitmap); });
    const double avx512 = bench::time_best(
        [&] { exec::scan_bitmap_avx512(data, 0, hi, bitmap); });

    // Adaptive: pick by model, run the picked kernel (index-producing
    // kernels for scalar picks; bitmap for SIMD picks).
    const exec::ScanVariant pick = model.pick_scan_variant(sel);
    double adaptive = 0;
    switch (pick) {
      case exec::ScanVariant::kBranching:
        adaptive = branching;
        break;
      case exec::ScanVariant::kPredicated:
        adaptive = predicated;
        break;
      case exec::ScanVariant::kAvx2:
        adaptive = avx2;
        break;
      default:
        adaptive = avx512;
        break;
    }

    table.add_row({TablePrinter::fmt(sel, 3),
                   TablePrinter::fmt(branching * to_ns, 3),
                   TablePrinter::fmt(predicated * to_ns, 3),
                   TablePrinter::fmt(avx2 * to_ns, 3),
                   TablePrinter::fmt(avx512 * to_ns, 3),
                   TablePrinter::fmt(adaptive * to_ns, 3),
                   exec::variant_name(pick)});
  }
  table.print(std::cout);

  std::cout << "\nhost ISA: avx2=" << exec::cpu_has_avx2()
            << " avx512=" << exec::cpu_has_avx512() << "\n";
  std::cout << "calibrated model: branch_base="
            << model.costs().branch_base
            << " miss_penalty=" << model.costs().branch_miss_penalty
            << " predicated=" << model.costs().predicated
            << " avx2=" << model.costs().avx2
            << " avx512=" << model.costs().avx512 << " cycles/tuple\n";
  std::cout << "Shape checks (Ross [17]): branching hump peaks near 50%; "
               "predicated flat; SIMD lowest; adaptive == lower envelope.\n";

  // -- Mid-scan reconfiguration on clustered data ------------------------------
  // §IV.B: the operator must adapt to *changing* characteristics, not just
  // pick once. Data whose selectivity drifts region-by-region (modeled on a
  // SIMD-less machine, where the branching/predicated choice matters).
  // Note: the *calibrated* host constants show predicated always beating
  // branching on this CPU (cheap cmov) — no switching is the right answer
  // here. The demonstration therefore uses the Ross-era default constants
  // (branch base < predicated), i.e. the machine class the paper cites.
  std::cout << "\nmid-scan adaptation on clustered data (Ross-era scalar "
               "machine model):\n";
  opt::KernelCosts no_simd;  // defaults: branch_base 1.6 < predicated 2.4
  no_simd.avx2 = 1e9;
  no_simd.avx512 = 1e9;
  const opt::CostModel scalar_model(no_simd);
  std::vector<std::int32_t> clustered;
  clustered.reserve(kRows);
  Pcg32 rng(7);
  for (std::size_t region = 0; region < 8; ++region) {
    // Alternate near-0% and near-50% selectivity regions for predicate ==0.
    for (std::size_t i = 0; i < kRows / 8; ++i)
      clustered.push_back(region % 2 == 0
                              ? 1 + static_cast<std::int32_t>(rng.next_bounded(9))
                              : static_cast<std::int32_t>(rng.next_bounded(2)));
  }
  exec::AdaptiveScan adaptive(scalar_model, 0.01, 64 * 1024);
  BitVector bits(clustered.size());
  exec::AdaptiveScanStats astats;
  adaptive.scan(clustered, 0, 0, bits, astats);
  std::cout << "  " << astats.chunks << " chunks, " << astats.switches
            << " kernel switches, final estimate "
            << TablePrinter::fmt(astats.final_selectivity_estimate, 3)
            << " (expected: >= 2 switches as regions alternate)\n";
  return 0;
}
