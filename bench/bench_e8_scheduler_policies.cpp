// Experiment E8 — latency vs. throughput vs. energy-cap scheduling (paper
// §IV "Performance" + "Energy efficiency"): "throughput optimization is
// more important than response time optimization" in some domains, and the
// system must balance both "under a given energy constraint".
//
// Poisson query streams at increasing arrival rates; three governor
// policies; reported: mean/p95 latency, throughput, average power, energy
// per query.
#include <iostream>

#include "sched/scheduler.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E8: scheduling policies across load levels ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const hw::Work per_query{1.5e9, 3e8};  // ~0.52 s at f_max
  const double cap_w = machine.idle_power_w() + 25;

  std::cout << "machine capacity at f_max: "
            << machine.cores / machine.exec_time_s(per_query,
                                                   machine.dvfs.fastest())
            << " qps; power cap for energy-cap policy: " << cap_w << " W\n\n";

  TablePrinter table({"rate_qps", "policy", "mean_lat_ms", "p95_lat_ms",
                      "throughput_qps", "avg_W", "J_per_query"});
  for (const double rate : {2.0, 5.0, 8.0, 11.0, 14.0}) {
    const auto stream = sched::poisson_stream(2000, rate, per_query, 42);
    for (const auto policy : {sched::Policy::kLatency,
                              sched::Policy::kThroughput,
                              sched::Policy::kEnergyCap}) {
      sched::StreamScheduler scheduler(
          machine, policy, policy == sched::Policy::kEnergyCap ? cap_w : 0);
      const auto r = scheduler.run(stream);
      table.add_row({TablePrinter::fmt(rate, 3), sched::policy_name(policy),
                     TablePrinter::fmt(r.mean_latency_s * 1e3, 4),
                     TablePrinter::fmt(r.p95_latency_s * 1e3, 4),
                     TablePrinter::fmt(r.throughput_qps, 4),
                     TablePrinter::fmt(r.avg_power_w, 4),
                     TablePrinter::fmt(r.energy_per_query_j, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks: at low load, throughput-mode trades ~2-3x "
               "latency for lower J/query; as load approaches capacity the "
               "slow P-state saturates first and its latency explodes "
               "while the latency policy still absorbs the stream; the "
               "energy-cap policy tracks f_max until the cap binds, then "
               "degrades toward throughput-mode — the paper's case-by-case "
               "balance.\n";
  return 0;
}
