// A2 — CPU vs. co-processor placement (paper §III): "only a limited number
// of operators show significant benefit when running on non-CPU hardware
// platforms". The modeled offload advisor (DESIGN.md §5: no real GPU in the
// container) reproduces the two findings behind that sentence:
//   * a break-even input size below which transfer+launch costs eat the
//     device speedup, and
//   * a compute-intensity threshold below which the device NEVER wins.
#include <cmath>
#include <iostream>

#include "opt/offload_advisor.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== A2: offload break-even analysis ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const hw::DvfsState& state = machine.dvfs.fastest();

  for (const auto& xpu :
       {hw::AcceleratorSpec::discrete_gpu(), hw::AcceleratorSpec::fpga()}) {
    const opt::OffloadAdvisor advisor(machine, xpu);
    std::cout << "[" << xpu.name << ": " << xpu.speedup << "x kernel, "
              << xpu.link_bandwidth_gbs << " GB/s link, "
              << xpu.active_power_w << " W active]\n";

    TablePrinter table({"cpu_ns_per_byte", "operator_class",
                        "break_even_MB_time", "break_even_MB_energy"});
    struct OpClass {
      double ns_per_byte;
      const char* label;
    };
    for (const OpClass& op :
         {OpClass{0.05, "scan/selection"}, OpClass{0.3, "hash probe"},
          OpClass{1.0, "aggregation"}, OpClass{5.0, "sort/regex"},
          OpClass{30.0, "frequent-itemset [8]"}}) {
      const double be_t = advisor.break_even_bytes(
          op.ns_per_byte * 1e-9, 0.1, state, opt::Objective::kTime);
      const double be_e = advisor.break_even_bytes(
          op.ns_per_byte * 1e-9, 0.1, state, opt::Objective::kEnergy);
      const auto fmt_mb = [](double bytes) {
        return std::isinf(bytes) ? std::string("never")
                                 : TablePrinter::fmt(bytes / 1e6, 3);
      };
      table.add_row({TablePrinter::fmt(op.ns_per_byte, 3), op.label,
                     fmt_mb(be_t), fmt_mb(be_e)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Shape checks (§III, [16]): memory-bound operators (scans) "
             "never or barely break even — the transfer costs what the "
             "kernel saves; compute-dense operators (itemset mining [8]) "
             "offload profitably at modest sizes; the FPGA wins on energy "
             "at smaller inputs than the GPU despite the lower speedup.\n";
  return 0;
}
