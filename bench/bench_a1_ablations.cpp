// A1 — ablations over the design choices the core library makes.
//
//  A1.a  Need-to-Know vs. Ubiquity index maintenance (paper §IV.A) across
//        read/write mixes: maintenance work saved by laziness.
//  A1.b  Zone-map block size: pruning effectiveness vs. map overhead.
//  A1.c  Dense-array vs. hash group-by: the domain-size crossover behind
//        the adaptive strategy.
//  A1.d  Checkpoint interval vs. fault rate for restartable aggregation
//        (paper §IV "Robustness"): redone work + checkpoint cost.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/aggregate.hpp"
#include "exec/restartable.hpp"
#include "storage/secondary_index.hpp"
#include "storage/zonemap.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

void ablation_need_to_know() {
  std::cout << "[A1.a] index maintenance policy vs read/write mix\n";
  TablePrinter table({"reads_per_1k_writes", "ubiquity_ops", "ntk_ops",
                      "ops_saved_%", "answers_equal"});
  for (const int reads_per_1k : {0, 1, 10, 100, 1000}) {
    storage::SecondaryIndex eager(storage::IndexMaintenance::kUbiquity);
    storage::SecondaryIndex lazy(storage::IndexMaintenance::kNeedToKnow);
    Pcg32 rng(7);
    bool equal = true;
    constexpr int kWrites = 20'000;
    const int gap = reads_per_1k > 0 ? 1000 / reads_per_1k : 0;
    for (int w = 0; w < kWrites; ++w) {
      const auto v = static_cast<std::int64_t>(rng.next_bounded(10'000));
      eager.append(v);
      lazy.append(v);
      if (gap > 0 && w % gap == gap - 1) {
        const auto a = eager.lookup_range(0, 100);
        const auto b = lazy.lookup_range(0, 100);
        equal = equal && a == b;
      }
    }
    const double saved =
        eager.maintenance_ops() == 0
            ? 0.0
            : 100.0 *
                  (1.0 - static_cast<double>(lazy.maintenance_ops()) /
                             static_cast<double>(eager.maintenance_ops()));
    table.add_row(
        {TablePrinter::fmt_int(reads_per_1k),
         TablePrinter::fmt_int(static_cast<long long>(eager.maintenance_ops())),
         TablePrinter::fmt_int(static_cast<long long>(lazy.maintenance_ops())),
         TablePrinter::fmt(saved, 3), equal ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "(write-only: Need-to-Know does zero maintenance; answers "
               "stay identical because reads force catch-up)\n\n";
}

void ablation_zonemap_block() {
  std::cout << "[A1.b] zone-map block size (8M sorted rows, 1000-row range "
               "predicate)\n";
  std::vector<std::int64_t> sorted(8'000'000);
  for (std::size_t i = 0; i < sorted.size(); ++i)
    sorted[i] = static_cast<std::int64_t>(i);
  TablePrinter table({"block_rows", "zones", "rows_touched", "map_KiB",
                      "scan_us"});
  for (const std::size_t block : {256u, 1024u, 4096u, 16384u, 65536u,
                                  262144u}) {
    const storage::ZoneMap zm = storage::ZoneMap::build(sorted, block);
    const std::int64_t lo = 4'000'000, hi = 4'000'999;
    std::size_t touched = 0;
    volatile std::int64_t sink = 0;
    const double s = bench::time_best([&] {
      touched = 0;
      std::int64_t acc = 0;
      for (const auto& r : zm.candidate_ranges(lo, hi, sorted.size())) {
        touched += r.end - r.begin;
        for (std::size_t i = r.begin; i < r.end; ++i)
          if (sorted[i] >= lo && sorted[i] <= hi) acc += sorted[i];
      }
      sink = acc;
    });
    (void)sink;
    table.add_row(
        {TablePrinter::fmt_int(static_cast<long long>(block)),
         TablePrinter::fmt_int(static_cast<long long>(zm.zone_count())),
         TablePrinter::fmt_int(static_cast<long long>(touched)),
         TablePrinter::fmt(zm.zone_count() * sizeof(storage::Zone) / 1024.0,
                           4),
         TablePrinter::fmt(s * 1e6, 4)});
  }
  table.print(std::cout);
  std::cout << "(small blocks prune tighter but cost map space; the default "
               "4096 sits at the knee for range predicates)\n\n";
}

void ablation_group_strategy() {
  std::cout << "[A1.c] dense vs hash group-by across key-domain sizes (2M "
               "rows)\n";
  TablePrinter table({"domain", "dense_ms", "hash_ms", "dense_speedup"});
  constexpr std::size_t kRows = 2'000'000;
  const auto vals = bench::uniform_i64(kRows, 1000, 2);
  BitVector sel(kRows);
  sel.set_all();
  for (const std::uint32_t domain :
       {16u, 256u, 4096u, 65536u, 262144u, 1u << 20}) {
    const auto keys = bench::uniform_i64(kRows, domain, 3);
    const double dense_s = bench::time_best(
        [&] {
          (void)exec::group_aggregate(keys, vals, sel,
                                      exec::GroupStrategy::kDenseArray);
        },
        0.3);
    const double hash_s = bench::time_best(
        [&] {
          (void)exec::group_aggregate(keys, vals, sel,
                                      exec::GroupStrategy::kHash);
        },
        0.3);
    table.add_row({TablePrinter::fmt_int(domain),
                   TablePrinter::fmt(dense_s * 1e3, 4),
                   TablePrinter::fmt(hash_s * 1e3, 4),
                   TablePrinter::fmt(hash_s / dense_s, 3)});
  }
  table.print(std::cout);
  std::cout << "(dense accumulators win while the domain fits caches; the "
               "adaptive kAuto threshold of 2^20 slots keeps the dense arm "
               "inside its winning region)\n\n";
}

void ablation_checkpoint_interval() {
  std::cout << "[A1.d] checkpoint interval vs fault rate (1000 morsels)\n";
  const auto values = bench::uniform_i64(1'000'000, 1000, 4);
  BitVector sel(values.size());
  sel.set_all();
  TablePrinter table({"faults_per_run", "ckpt_every", "reprocessed_morsels",
                      "checkpoints", "overhead_vs_ideal_%"});
  for (const int faults : {1, 4, 16}) {
    for (const std::size_t every : {1u, 5u, 20u, 100u, 1000u}) {
      exec::RestartableAggregation agg(1000, every);
      exec::RestartStats stats;
      // Deterministic faults spread across the job, each firing once.
      std::vector<bool> fired(1001, false);
      const int gap = 1000 / (faults + 1);
      const auto injector = [&](std::uint64_t m) {
        if (m > 0 && m % gap == 0 && !fired[m]) {
          fired[m] = true;
          return true;
        }
        return false;
      };
      (void)agg.run(values, sel, injector, stats);
      const double overhead =
          100.0 *
          static_cast<double>(stats.morsels_processed - stats.morsels_total) /
          static_cast<double>(stats.morsels_total);
      table.add_row(
          {TablePrinter::fmt_int(faults),
           TablePrinter::fmt_int(static_cast<long long>(every)),
           TablePrinter::fmt_int(
               static_cast<long long>(stats.morsels_reprocessed)),
           TablePrinter::fmt_int(
               static_cast<long long>(stats.checkpoints_taken)),
           TablePrinter::fmt(overhead, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "(redone work grows linearly with the checkpoint interval "
               "and the fault count; frequent checkpoints bound it at the "
               "cost of snapshot copies — pick per expected query length, "
               "as §IV prescribes)\n";
}

}  // namespace

int main() {
  std::cout << "== A1: design-choice ablations ==\n\n";
  ablation_need_to_know();
  ablation_zonemap_block();
  ablation_group_strategy();
  ablation_checkpoint_interval();
  return 0;
}
