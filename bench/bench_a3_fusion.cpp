// A3 — operator fusion and short-circuit evaluation ablation (paper §IV.B,
// citing Neumann's compiled plans [14]).
//
// Part A: fused single-pass filter+aggregate vs. the materializing
// operator-at-a-time pipeline, across selectivities. Fusion avoids the
// bitmap write + second pass; its advantage shrinks as SIMD makes the
// materializing scan nearly free.
// Part B: conjunctive predicates with short-circuit (masked) evaluation vs.
// independent full scans, across first-predicate selectivities.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/fused.hpp"
#include "exec/scan_kernels.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== A3: fusion & short-circuit ablations ==\n\n";
  constexpr std::size_t kRows = 8'000'000;
  const auto keys = bench::uniform_i64(kRows, 100000, 1);
  const auto values = bench::uniform_i64(kRows, 1000, 2);
  const hw::MachineSpec machine = hw::MachineSpec::server();

  std::cout << "[A3.a] fused filter+aggregate vs materialize-then-aggregate "
               "(8M rows)\n";
  TablePrinter fusion({"selectivity", "fused_ms", "pipeline_ms", "speedup",
                       "fused_J", "pipeline_J"});
  for (const double sel : {0.001, 0.01, 0.1, 0.3, 0.5, 0.9}) {
    const auto hi = static_cast<std::int64_t>(sel * 100000) - 1;
    const double fused_s = bench::time_best(
        [&] { (void)exec::fused_filter_aggregate(keys, 0, hi, values); },
        0.3);
    BitVector sel_bits(kRows);
    const double pipe_s = bench::time_best(
        [&] {
          exec::scan_bitmap_best64(keys, 0, hi, sel_bits);
          (void)exec::aggregate_selected(values, sel_bits);
        },
        0.3);
    // Fused touches keys + matching values; pipeline touches keys + bitmap
    // + matching values (bitmap traffic is tiny; count it anyway).
    const double fused_bytes = kRows * 8.0 * (1 + sel);
    const double pipe_bytes = kRows * 8.0 * (1 + sel) + kRows / 8.0 * 2;
    fusion.add_row({TablePrinter::fmt(sel, 3),
                    TablePrinter::fmt(fused_s * 1e3, 4),
                    TablePrinter::fmt(pipe_s * 1e3, 4),
                    TablePrinter::fmt(pipe_s / fused_s, 3),
                    TablePrinter::fmt(
                        bench::modeled_joules(machine, fused_s, fused_bytes),
                        3),
                    TablePrinter::fmt(
                        bench::modeled_joules(machine, pipe_s, pipe_bytes),
                        3)});
  }
  fusion.print(std::cout);

  std::cout << "\n[A3.b] conjunctive scan: short-circuit vs independent full "
               "scans (second predicate 50% selective)\n";
  TablePrinter sc({"first_pred_sel", "full_ms", "masked_ms", "speedup",
                   "words_skipped_%"});
  const auto second = bench::uniform_i64(kRows, 1000, 3);
  for (const double sel1 : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    const auto hi1 = static_cast<std::int64_t>(sel1 * 100000) - 1;
    BitVector full_sel(kRows), masked_sel(kRows), tmp(kRows);
    const double full_s = bench::time_best(
        [&] {
          exec::scan_bitmap_best64(keys, 0, hi1, full_sel);
          exec::scan_bitmap_best64(second, 0, 499, tmp);
          full_sel &= tmp;
        },
        0.3);
    exec::MaskedScanStats stats;
    const double masked_s = bench::time_best(
        [&] {
          exec::scan_bitmap_best64(keys, 0, hi1, masked_sel);
          exec::scan_bitmap_masked64_counted(second, 0, 499, masked_sel,
                                             stats);
        },
        0.3);
    if (!(masked_sel == full_sel)) {
      std::cerr << "MISMATCH between masked and full conjunction!\n";
      return 1;
    }
    sc.add_row({TablePrinter::fmt(sel1, 4),
                TablePrinter::fmt(full_s * 1e3, 4),
                TablePrinter::fmt(masked_s * 1e3, 4),
                TablePrinter::fmt(full_s / masked_s, 3),
                TablePrinter::fmt(100.0 *
                                      static_cast<double>(stats.words_skipped) /
                                      static_cast<double>(stats.words_total),
                                  3)});
  }
  sc.print(std::cout);
  std::cout << "\nShape checks: on SIMD hosts the *vectorized* "
               "materializing pipeline beats branchy scalar fusion at every "
               "mid selectivity — the bitmap pass is nearly free at 4+ "
               "Gtuples/s, while the fused loop pays branch misses; fusion "
               "approaches parity only where its branch predicts (~0 or "
               "~100% selectivity). This reproduces the "
               "vectorization-vs-compilation finding of the post-[14] "
               "literature. Short-circuit evaluation is the clear win: "
               "selective first predicates skip >90% of the second "
               "column's words for ~2.5x, with a mild penalty once nothing "
               "can be skipped.\n";
  return 0;
}
