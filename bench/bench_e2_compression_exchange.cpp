// Experiment E2 — compressed vs. uncompressed intermediate shipping
// (paper §IV): "the system has to spend time and energy for
// (de-)compression but saves time and energy for the communication path.
// Since both cost factors are independent, the optimizer has to decide on
// a case-by-case basis."
//
// Part A: link × codec matrix — measured encode/decode on the host, wire
// modeled; time and energy per exchange of a 16 MiB intermediate.
// Part B: bandwidth sweep — the crossover where compression stops paying
// off, for the time and the energy objective separately.
// Part C: advisor accuracy — does the profile-based decision match the
// measured-best arm?
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "net/exchange.hpp"
#include "opt/compression_advisor.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E2: compress-or-ship-raw, per link ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();
  const hw::DvfsState& state = machine.dvfs.fastest();

  // Intermediate result: 2M group keys (small domain — typical post-
  // aggregation payload).
  const auto payload = bench::uniform_i64(2'000'000, 4096, 7);

  // -- Part A: matrix ---------------------------------------------------------------
  const hw::LinkSpec links[] = {hw::LinkSpec::qpi(),
                                hw::LinkSpec::haec_optical(),
                                hw::LinkSpec::haec_wireless(),
                                hw::LinkSpec::tengbe(), hw::LinkSpec::gbe()};
  TablePrinter matrix({"link", "codec", "wire_MiB", "time_ms", "energy_J"});
  for (const auto& link : links) {
    for (const auto kind : storage::all_codec_kinds()) {
      const auto r = net::evaluate_exchange_measured(payload, kind, link,
                                                     machine, state);
      matrix.add_row({link.name, storage::codec_name(kind),
                      TablePrinter::fmt(r.wire_bytes / (1 << 20), 3),
                      TablePrinter::fmt(r.total_time_s() * 1e3, 4),
                      TablePrinter::fmt(r.total_energy_j(), 4)});
    }
  }
  matrix.print(std::cout);

  // -- Part B: bandwidth sweep, best arm per objective -------------------------------
  std::cout << "\nbandwidth sweep (which arm wins?):\n";
  TablePrinter sweep({"bandwidth_GBs", "best_by_time", "t_plain_ms",
                      "t_best_ms", "best_by_energy", "J_plain", "J_best"});
  for (const double gbs : {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0,
                           16.0, 32.0}) {
    hw::LinkSpec link{"sweep", gbs, 12.0 / gbs + 1.0, 10e-6, 5.0};
    storage::CodecKind best_t = storage::CodecKind::kPlain;
    storage::CodecKind best_e = storage::CodecKind::kPlain;
    double t_plain = 0, t_best = 1e100, j_plain = 0, j_best = 1e100;
    for (const auto kind : storage::all_codec_kinds()) {
      const auto r = net::evaluate_exchange_measured(payload, kind, link,
                                                     machine, state);
      if (kind == storage::CodecKind::kPlain) {
        t_plain = r.total_time_s();
        j_plain = r.total_energy_j();
      }
      if (r.total_time_s() < t_best) {
        t_best = r.total_time_s();
        best_t = kind;
      }
      if (r.total_energy_j() < j_best) {
        j_best = r.total_energy_j();
        best_e = kind;
      }
    }
    sweep.add_row({TablePrinter::fmt(gbs, 4), storage::codec_name(best_t),
                   TablePrinter::fmt(t_plain * 1e3, 4),
                   TablePrinter::fmt(t_best * 1e3, 4),
                   storage::codec_name(best_e), TablePrinter::fmt(j_plain, 4),
                   TablePrinter::fmt(j_best, 4)});
  }
  sweep.print(std::cout);

  // -- Part C: advisor accuracy --------------------------------------------------------
  std::cout << "\nadvisor vs measured-best:\n";
  const opt::CompressionAdvisor advisor(machine);
  int agree = 0, total = 0;
  TablePrinter acc({"link", "objective", "advised", "measured_best",
                    "advised_cost", "best_cost"});
  for (const auto& link : links) {
    for (const auto objective :
         {opt::Objective::kTime, opt::Objective::kEnergy}) {
      const auto advice =
          advisor.advise(payload, payload.size(), link, state, objective);
      storage::CodecKind best = storage::CodecKind::kPlain;
      double best_cost = 1e100, advised_cost = 0;
      for (const auto kind : storage::all_codec_kinds()) {
        const auto r = net::evaluate_exchange_measured(payload, kind, link,
                                                       machine, state);
        const double cost = objective == opt::Objective::kTime
                                ? r.total_time_s()
                                : r.total_energy_j();
        if (cost < best_cost) {
          best_cost = cost;
          best = kind;
        }
        if (kind == advice.kind) advised_cost = cost;
      }
      ++total;
      if (best == advice.kind) ++agree;
      acc.add_row({link.name, opt::objective_name(objective),
                   storage::codec_name(advice.kind), storage::codec_name(best),
                   TablePrinter::fmt(advised_cost, 4),
                   TablePrinter::fmt(best_cost, 4)});
    }
  }
  acc.print(std::cout);
  std::cout << "advisor picked the measured-best arm " << agree << "/"
            << total
            << " times (misses cost the difference shown above).\n";
  std::cout << "Shape checks: slow links -> compress wins; fast on-board "
               "links -> raw wins on time; energy crossover sits at higher "
               "bandwidth than the time crossover when nJ/byte is high.\n";
  return 0;
}
