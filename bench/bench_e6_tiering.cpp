// Experiment E6 — hot/cold data placement (paper §IV.B): "High-density
// data ... will stay and [be] manipulated in main-memory. Low-density data
// ... will be placed on traditional cheap disk devices."
//
// 24 monthly partitions; queries hit months with Zipf-skewed recency (the
// newest months draw most queries). Sweep the DRAM budget; the tier
// manager demotes least-accessed partitions to the simulated disk array.
// Reported: mean query latency and energy vs. fraction of data in DRAM.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "storage/tier.hpp"
#include "util/table_printer.hpp"
#include "util/zipf.hpp"

using namespace eidb;

int main() {
  std::cout << "== E6: hot/cold tiering under a DRAM budget ==\n\n";

  constexpr std::size_t kMonths = 24;
  constexpr std::size_t kBytesPerMonth = 512ull << 20;  // 512 MiB columns
  constexpr std::size_t kQueries = 10'000;
  const hw::MachineSpec machine = hw::MachineSpec::server();

  // In-DRAM scan cost of one month (memory-bound).
  const double hot_scan_s =
      static_cast<double>(kBytesPerMonth) / (machine.dram_bandwidth_gbs * 1e9);
  const double hot_scan_j =
      machine.package_power_w(machine.dvfs.fastest(), 1) * hot_scan_s +
      static_cast<double>(kBytesPerMonth) * machine.dram_energy_nj_per_byte *
          1e-9;

  TablePrinter table({"dram_budget_%", "hot_months", "cold_hit_%",
                      "mean_latency_ms", "p_cold_latency_ms", "energy_J",
                      "vs_all_hot"});

  // Query stream: month index drawn Zipf(recency); month 0 = newest.
  for (const int budget_pct : {100, 75, 50, 33, 25, 12, 4}) {
    storage::TierManager tiers;
    for (std::size_t m = 0; m < kMonths; ++m)
      tiers.register_column("facts", "month" + std::to_string(m),
                            kBytesPerMonth);
    // Warm the access stats with the recency distribution, then demote.
    ZipfGenerator recency(kMonths, 1.1, 17);
    for (int i = 0; i < 2000; ++i)
      (void)tiers.access("facts", "month" + std::to_string(recency.next()));
    const std::size_t budget_bytes =
        kMonths * kBytesPerMonth * static_cast<std::size_t>(budget_pct) / 100;
    (void)tiers.enforce_budget(budget_bytes);

    std::size_t hot_months = 0;
    for (std::size_t m = 0; m < kMonths; ++m)
      if (tiers.tier_of("facts", "month" + std::to_string(m)) ==
          storage::Tier::kHot)
        ++hot_months;

    // Run the query stream.
    ZipfGenerator workload(kMonths, 1.1, 18);
    double total_s = 0, total_j = 0, cold_hits = 0, cold_s_total = 0;
    for (std::size_t q = 0; q < kQueries; ++q) {
      const std::string col = "month" + std::to_string(workload.next());
      const auto penalty = tiers.access("facts", col);
      total_s += hot_scan_s + penalty.time_s;
      total_j += hot_scan_j + penalty.energy_j;
      if (penalty.time_s > 0) {
        cold_hits += 1;
        cold_s_total += hot_scan_s + penalty.time_s;
      }
    }
    const double all_hot_j = kQueries * hot_scan_j;
    table.add_row(
        {TablePrinter::fmt_int(budget_pct),
         TablePrinter::fmt_int(static_cast<long long>(hot_months)),
         TablePrinter::fmt(100 * cold_hits / kQueries, 3),
         TablePrinter::fmt(total_s / kQueries * 1e3, 4),
         cold_hits > 0
             ? TablePrinter::fmt(cold_s_total / cold_hits * 1e3, 4)
             : "-",
         TablePrinter::fmt(total_j, 4),
         TablePrinter::fmt(total_j / all_hot_j, 3)});
  }
  table.print(std::cout);

  const storage::ColdTierSpec cold;
  std::cout << "\ncold tier model: " << cold.name << ", "
            << cold.bandwidth_gbs << " GB/s, " << cold.access_latency_s * 1e3
            << " ms access latency, " << cold.energy_nj_per_byte
            << " nJ/byte\n";
  std::cout << "Shape checks: with Zipf(1.1) recency skew, halving DRAM "
               "raises mean latency only mildly (cold hits are rare) while "
               "quartering it hurts sharply — the knee argues for keeping "
               "high-density data hot and demoting the long tail, the "
               "paper's placement rule.\n";
  return 0;
}
