// V1 — cost/energy model validation: predicted vs. measured.
//
// Every optimizer decision in this library rests on the calibrated cost
// model and the machine model. This harness closes the loop: it predicts
// each workload query's single-core runtime from the models, then measures
// the real execution, and reports the ratio. The models only need to rank
// plans correctly (decisions!), but staying within a small constant factor
// of wall time is what makes the energy figures credible.
#include <iostream>
#include <vector>

#include "core/database.hpp"
#include "opt/cost_model.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== V1: predicted vs measured query times ==\n\n";
  core::DatabaseOptions options;
  options.calibrate_cost_model = true;  // host-fitted constants
  core::Database db(options);

  // Workload table.
  constexpr std::size_t kRows = 6'000'000;
  {
    using storage::Column;
    storage::Table& t = db.create_table(
        "facts", storage::Schema({{"k", storage::TypeId::kInt64},
                                  {"v", storage::TypeId::kInt64}}));
    Pcg32 rng(31);
    std::vector<std::int64_t> k(kRows), v(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      k[i] = rng.next_bounded(100000);
      v[i] = rng.next_bounded(1000);
    }
    t.set_column(0, Column::from_int64("k", k));
    t.set_column(1, Column::from_int64("v", v));
  }

  struct Case {
    const char* name;
    const char* sql;
    double selectivity;
  };
  const Case cases[] = {
      {"count-0.1%", "SELECT COUNT(*) FROM facts WHERE k BETWEEN 0 AND 99",
       0.001},
      {"count-10%", "SELECT COUNT(*) FROM facts WHERE k BETWEEN 0 AND 9999",
       0.1},
      {"sum-50%",
       "SELECT SUM(v) FROM facts WHERE k BETWEEN 0 AND 49999", 0.5},
      {"group-by",
       "SELECT COUNT(*), SUM(v) FROM facts WHERE k BETWEEN 0 AND 49999 "
       "GROUP BY v",
       0.5},
  };

  const hw::MachineSpec& m = db.machine();
  const hw::DvfsState& top = m.dvfs.fastest();
  const opt::CostModel& model = db.cost_model();

  TablePrinter table({"query", "predicted_ms", "measured_ms",
                      "ratio_meas/pred", "verdict"});
  for (const Case& c : cases) {
    // Prediction: scan work + (for aggregates) agg/group work at the true
    // selectivity, single core at f_max.
    hw::Work work = model.scan_work(exec::ScanVariant::kAuto, kRows,
                                    c.selectivity, 8.0);
    const auto selected = static_cast<std::uint64_t>(kRows * c.selectivity);
    work += model.agg_work(selected, 8.0);
    if (std::string(c.sql).find("GROUP BY") != std::string::npos)
      work += model.group_work(selected, true, 8.0);
    const double predicted_s = m.exec_time_s(work, top);

    // Measurement: warm once, take the best of three.
    (void)db.run_sql(c.sql);
    double best = 1e100;
    for (int r = 0; r < 3; ++r)
      best = std::min(best, db.run_sql(c.sql).report.elapsed_s);

    const double ratio = best / predicted_s;
    table.add_row({c.name, TablePrinter::fmt(predicted_s * 1e3, 4),
                   TablePrinter::fmt(best * 1e3, 4),
                   TablePrinter::fmt(ratio, 3),
                   ratio > 0.2 && ratio < 5 ? "within 5x" : "OFF"});
  }
  table.print(std::cout);
  std::cout << "\nInterpretation: the model is for *ranking* plans; "
               "absolute agreement within a small constant factor on a "
               "container (noisy neighbors, unknown true frequency) keeps "
               "the energy figures meaningful. Large systematic drift "
               "would mean the calibration pass needs re-running "
               "(DatabaseOptions::calibrate_cost_model).\n";
  return 0;
}
