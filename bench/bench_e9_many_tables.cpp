// Experiment E9 — optimizing queries over very many tables (paper §II).
//
// "100s or even 1.000s of (weakly structured) tables within a single
// database query are common. Current compilation (especially optimization)
// components ... are not able to cope with this situation."
//
// Join-order optimization time vs. table count: textbook DP explodes
// exponentially (the classical component that "cannot cope"); greedy
// operator ordering scales to 10,000 tables. Where both run, the table
// also reports greedy's plan-quality penalty.
#include <iostream>

#include "bench_common.hpp"
#include "opt/join_order.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E9: join ordering at web-scale table counts ==\n\n";
  TablePrinter table({"tables", "dp_ms", "greedy_ms", "greedy_cost_ratio"});

  for (const int n : {4, 8, 12, 14, 16, 18, 50, 200, 1000, 5000, 10000}) {
    const opt::JoinGraph g = opt::JoinGraph::random(n, 0.3, 42 + n);
    double dp_ms = -1;
    double ratio = -1;
    double dp_cost = 0;
    if (n <= 18) {
      const double s = bench::time_best(
          [&] { dp_cost = opt::optimize_dp(g).cost; },
          /*budget_s=*/0.2, /*min_runs=*/1);
      dp_ms = s * 1e3;
    }
    double greedy_cost = 0;
    const double gs = bench::time_best(
        [&] { greedy_cost = opt::optimize_greedy(g).cost; },
        /*budget_s=*/0.2, /*min_runs=*/1);
    if (dp_ms >= 0 && dp_cost > 0) ratio = greedy_cost / dp_cost;

    table.add_row({TablePrinter::fmt_int(n),
                   dp_ms >= 0 ? TablePrinter::fmt(dp_ms, 4)
                              : "infeasible (2^n)",
                   TablePrinter::fmt(gs * 1e3, 4),
                   ratio >= 0 ? TablePrinter::fmt(ratio, 4) : "-"});
  }
  table.print(std::cout);

  std::cout << "\nShape checks (§II): DP time grows ~4x per +2 tables and "
               "falls off a cliff before 20 tables — the 'cannot cope' "
               "wall; greedy ordering stays sub-second to 10,000 tables at "
               "a bounded plan-quality penalty where comparable.\n";
  return 0;
}
