// Experiment E1 — "the faster a query is processed, the less energy is
// consumed" (paper §IV, citing Tsirogiannis et al. [12]).
//
// Part A: the same query answered by plans of decreasing work — full scan,
// zone-map-pruned scan, binary search on the sorted column (the "index
// lookup" of the paper's example) — measured on the host, energy modeled
// over the busy interval. Fewer cycles => fewer joules.
//
// Part B: the energy-proportionality curve behind the claim: average power
// and energy-per-query vs. utilization on the machine model. High idle
// power means low utilization wastes energy per query — the reason
// "race-to-idle + consolidation" dominated 2012-era practice.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/database.hpp"
#include "exec/scan_kernels.hpp"
#include "storage/zonemap.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

int main() {
  std::cout << "== E1: better plans burn fewer joules ==\n\n";
  const hw::MachineSpec machine = hw::MachineSpec::server();

  constexpr std::size_t kRows = 8'000'000;
  // Sorted payload (e.g., a timestamp-ordered fact column): point/range
  // lookups admit all three plan shapes.
  std::vector<std::int64_t> sorted(kRows);
  for (std::size_t i = 0; i < kRows; ++i)
    sorted[i] = static_cast<std::int64_t>(i * 3);
  const std::int64_t lo = 3 * 4'000'000, hi = 3 * 4'000'999;  // 1000 rows

  TablePrinter table({"plan", "time_ms", "modeled_J", "speedup", "J_ratio",
                      "rows_touched"});

  // Plan 1: full scan (AVX-512 bitmap kernel).
  BitVector sel(kRows);
  const double scan_s = bench::time_best(
      [&] { exec::scan_bitmap_best64(sorted, lo, hi, sel); });
  const double scan_j = bench::modeled_joules(machine, scan_s, kRows * 8.0);

  // Plan 2: zone-map-pruned scan.
  const storage::ZoneMap zm = storage::ZoneMap::build(sorted, 4096);
  std::size_t touched = 0;
  const double zm_s = bench::time_best([&] {
    sel.clear_all();
    touched = 0;
    for (const auto& r : zm.candidate_ranges(lo, hi, kRows)) {
      touched += r.end - r.begin;
      for (std::size_t i = r.begin; i < r.end; ++i)
        if (sorted[i] >= lo && sorted[i] <= hi) sel.set(i);
    }
  });
  const double zm_j = bench::modeled_joules(machine, zm_s, touched * 8.0);

  // Plan 3: binary search on the sorted column ("index lookup").
  std::size_t found = 0;
  const double bs_s = bench::time_best([&] {
    const auto* begin = sorted.data();
    const auto* first = std::lower_bound(begin, begin + kRows, lo);
    const auto* last = std::upper_bound(begin, begin + kRows, hi);
    found = static_cast<std::size_t>(last - first);
  });
  const double bs_j =
      bench::modeled_joules(machine, bs_s, 64.0 * 24 /*~log2(n) lines*/);

  const auto add = [&](const char* name, double s, double j, std::size_t rows) {
    table.add_row({name, TablePrinter::fmt(s * 1e3, 4),
                   TablePrinter::fmt(j, 3), TablePrinter::fmt(scan_s / s, 3),
                   TablePrinter::fmt(scan_j / j, 3),
                   TablePrinter::fmt_int(static_cast<long long>(rows))});
  };
  add("full-scan", scan_s, scan_j, kRows);
  add("zonemap-pruned", zm_s, zm_j, touched);
  add("binary-search", bs_s, bs_j, found);
  table.print(std::cout);

  bench::BenchJson json("e1");
  json.add("rows", static_cast<double>(kRows));
  json.add("full_scan_wall_s", scan_s);
  json.add("full_scan_joules", scan_j);
  json.add("full_scan_dram_bytes", static_cast<double>(kRows) * 8.0);
  json.add("zonemap_wall_s", zm_s);
  json.add("zonemap_joules", zm_j);
  json.add("zonemap_dram_bytes", static_cast<double>(touched) * 8.0);
  json.add("binary_search_wall_s", bs_s);
  json.add("binary_search_joules", bs_j);
  json.add("binary_search_dram_bytes", 64.0 * 24);
  std::cout << "wrote " << json.write() << "\n";
  std::cout << "(paper claim: J_ratio tracks speedup — classic optimization "
               "is implicit energy optimization)\n\n";

  // -- Part B: energy proportionality ---------------------------------------------
  std::cout << "power vs utilization (machine model, 8 cores at f_max):\n";
  TablePrinter prop({"utilization_%", "avg_power_W", "power_%_of_peak",
                     "J_per_query_rel"});
  const double peak = machine.package_power_w(machine.dvfs.fastest(), 8);
  const double idle = machine.idle_power_w();
  for (const int util : {0, 10, 25, 50, 75, 90, 100}) {
    const double u = util / 100.0;
    const double avg = idle + (peak - idle) * u;
    // Fixed work per query: queries/s scales with u, so J/query ~ avg/u.
    const double jpq_rel = u > 0 ? (avg / u) / peak : 0;
    prop.add_row({TablePrinter::fmt_int(util), TablePrinter::fmt(avg, 4),
                  TablePrinter::fmt(100 * avg / peak, 3),
                  util > 0 ? TablePrinter::fmt(jpq_rel, 3) : "inf"});
  }
  prop.print(std::cout);
  std::cout << "idle/peak = " << TablePrinter::fmt(100 * idle / peak, 3)
            << "% (paper-era systems: ~45% system-level [12]); energy per "
               "query explodes at low utilization.\n";
  return 0;
}
