// W1 — star-schema analytical workload (paper §II: "more and more
// analytical applications ... multiple billion record databases"; scaled to
// laptop size). A Star-Schema-Benchmark-flavored fact table with two
// dimensions; six query classes run through the full public API, each
// reporting time AND energy — the per-query currency the paper wants
// optimizers to spend.
//
//   Q1  flight-style filter + aggregate (no join)
//   Q2  filter via zone maps on the clustered date key
//   Q3  dimension join + aggregate
//   Q4  grouped rollup by dimension attribute
//   Q5  dimension join, two-sided filters
//   Q6  join + GROUP BY the dimension attribute (vectorized path only)
//   Q7  multi-way grouped star join (fact + 2 dimensions) with
//       ORDER BY + LIMIT — the physical-plan compiler's full pipeline
//       (join ordering, chained probes, result top-k)
//   Q8  string-keyed star join: the fact side probes on dictionary
//       codes, the dimension's codes are remapped across dictionaries
//       once, and no string is materialized before projection
//
// A second section pits the legacy pair-materializing join interpreter
// against the vectorized block-at-a-time pipeline (packed key probing,
// dense/hash/radix arm, morsel-parallel probe) on the join-heavy queries, and
// everything lands in BENCH_w1_star_schema.json for CI trend tracking.
//
// Usage: bench_w1_star_schema [fact_rows]   (default 4,000,000)
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/database.hpp"
#include "exec/parallel.hpp"
#include "hw/sync_sim.hpp"
#include "query/plan_governor.hpp"
#include "query/sql.hpp"
#include "sched/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

constexpr std::int64_t kDates = 2556;      // 7 years of days
constexpr std::int64_t kCustomers = 30'000;

void load(core::Database& db, std::size_t fact_rows) {
  using storage::Column;
  using storage::Schema;
  using storage::TypeId;

  Pcg32 rng(1994);  // SSB's base year
  storage::Table& lineorder = db.create_table(
      "lineorder", Schema({{"orderdate", TypeId::kInt64},
                           {"custkey", TypeId::kInt64},
                           {"quantity", TypeId::kInt64},
                           {"discount", TypeId::kInt64},
                           {"revenue", TypeId::kInt64},
                           {"prio", TypeId::kString}}));
  std::vector<std::int64_t> odate, cust, qty, disc, rev;
  std::vector<std::string> prio;
  const char* prios[] = {"bulk", "high", "low", "mid", "rush"};
  odate.reserve(fact_rows);
  for (std::size_t i = 0; i < fact_rows; ++i) {
    // Clustered by date (append order), the realistic fact layout.
    odate.push_back(static_cast<std::int64_t>(i * kDates / fact_rows));
    cust.push_back(rng.next_bounded(static_cast<std::uint32_t>(kCustomers)));
    qty.push_back(1 + rng.next_bounded(50));
    disc.push_back(rng.next_bounded(11));
    rev.push_back(1000 + rng.next_bounded(100'000));
    // "rush" has no dimension row: Q8's remap carries a real miss.
    prio.emplace_back(prios[rng.next_bounded(5)]);
  }
  lineorder.set_column(0, Column::from_int64("orderdate", odate));
  lineorder.set_column(1, Column::from_int64("custkey", cust));
  lineorder.set_column(2, Column::from_int64("quantity", qty));
  lineorder.set_column(3, Column::from_int64("discount", disc));
  lineorder.set_column(4, Column::from_int64("revenue", rev));
  lineorder.set_column(5, Column::from_strings("prio", prio));

  storage::Table& customer = db.create_table(
      "customer", Schema({{"custkey", TypeId::kInt64},
                          {"region", TypeId::kString},
                          {"segment", TypeId::kString}}));
  std::vector<std::int64_t> ck;
  std::vector<std::string> region, segment;
  const char* regions[] = {"africa", "america", "asia", "europe", "mideast"};
  const char* segments[] = {"auto", "building", "furniture", "machinery"};
  for (std::int64_t k = 0; k < kCustomers; ++k) {
    ck.push_back(k);
    region.emplace_back(regions[rng.next_bounded(5)]);
    segment.emplace_back(segments[rng.next_bounded(4)]);
  }
  customer.set_column(0, Column::from_int64("custkey", ck));
  customer.set_column(1, Column::from_strings("region", region));
  customer.set_column(2, Column::from_strings("segment", segment));

  // priorities(prio, factor): the string-keyed dimension. Its dictionary
  // only partially overlaps lineorder.prio — "urgent" is build-only,
  // "rush" probe-only — so the Q8 join exercises the cross-dictionary
  // remap with misses on both sides.
  storage::Table& priorities = db.create_table(
      "priorities",
      Schema({{"prio", TypeId::kString}, {"factor", TypeId::kInt64}}));
  std::vector<std::string> pnames = {"bulk", "high", "low", "mid", "urgent"};
  std::vector<std::int64_t> pfactors = {3, 8, 1, 5, 13};
  priorities.set_column(0, Column::from_strings("prio", pnames));
  priorities.set_column(1, Column::from_int64("factor", pfactors));

  storage::Table& dates = db.create_table(
      "dates", Schema({{"datekey", TypeId::kInt64},
                       {"year", TypeId::kInt64}}));
  std::vector<std::int64_t> dk, year;
  for (std::int64_t d = 0; d < kDates; ++d) {
    dk.push_back(d);
    year.push_back(1994 + d / 365);
  }
  dates.set_column(0, Column::from_int64("datekey", dk));
  dates.set_column(1, Column::from_int64("year", year));
}

/// Best-of-3 run of one statement: minimum wall seconds and the
/// attributed joules of that fastest run.
struct Measured {
  double wall_s = 1e100;
  double attributed_j = 0;
  std::size_t rows_out = 0;
};
Measured measure(core::Database& db, const std::string& sql,
                 const core::RunOptions& options, int runs = 3) {
  Measured m;
  for (int i = 0; i < runs; ++i) {
    const core::RunResult run = db.run_sql(sql, options);
    if (run.report.elapsed_s < m.wall_s) {
      m.wall_s = run.report.elapsed_s;
      m.attributed_j = run.attributed_j;
      m.rows_out = run.result.row_count();
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t fact_rows =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4'000'000;
  std::cout << "== W1: star-schema workload (" << fact_rows
            << "-row fact table) ==\n\n";
  core::Database db;
  load(db, fact_rows);
  sched::ThreadPool pool;
  bench::BenchJson json("w1_star_schema");
  json.add("fact_rows", static_cast<double>(fact_rows));

  struct QueryCase {
    const char* id;
    const char* sql;
    bool zone_maps;
  };
  const QueryCase cases[] = {
      {"Q1-filter-agg",
       "SELECT SUM(revenue * discount / 100), COUNT(*) FROM lineorder WHERE "
       "discount BETWEEN 1 AND 3 AND quantity < 25",
       false},
      {"Q2-date-slice",
       "SELECT SUM(revenue) FROM lineorder WHERE orderdate BETWEEN 400 AND "
       "430",
       true},
      {"Q3-join-region",
       "SELECT SUM(revenue), COUNT(*) FROM lineorder JOIN customer ON "
       "lineorder.custkey = customer.custkey WHERE customer.region = "
       "'europe' AND discount BETWEEN 0 AND 2",
       false},
      {"Q4-rollup",
       "SELECT COUNT(*), SUM(revenue), AVG(quantity) FROM lineorder "
       "GROUP BY discount",
       false},
      {"Q5-join-filters",
       "SELECT COUNT(*), SUM(revenue) FROM lineorder JOIN customer ON "
       "lineorder.custkey = customer.custkey WHERE discount BETWEEN 4 AND 6 "
       "AND customer.segment = 'machinery'",
       false},
      {"Q6-join-groupby",
       "SELECT COUNT(*), SUM(revenue) FROM lineorder JOIN customer ON "
       "lineorder.custkey = customer.custkey GROUP BY customer.region",
       false},
      {"Q7-star-groupby-topk",
       "SELECT COUNT(*), SUM(revenue) FROM lineorder "
       "JOIN customer ON lineorder.custkey = customer.custkey "
       "JOIN dates ON lineorder.orderdate = dates.datekey "
       "WHERE customer.segment = 'machinery' AND dates.year <= 1996 "
       "GROUP BY customer.region ORDER BY SUM(revenue) DESC LIMIT 3",
       false},
      {"Q8-string-star",
       "SELECT COUNT(*), SUM(revenue), MAX(priorities.factor) FROM lineorder "
       "JOIN priorities ON lineorder.prio = priorities.prio "
       "JOIN customer ON lineorder.custkey = customer.custkey "
       "WHERE customer.segment = 'auto' "
       "GROUP BY priorities.prio ORDER BY SUM(revenue) DESC LIMIT 4",
       false},
  };

  TablePrinter table({"query", "rows_out", "time_ms", "energy_J", "avg_W",
                      "tuples_scanned", "J_per_Mtuple"});
  for (const QueryCase& qc : cases) {
    core::RunOptions options;
    options.exec.use_zone_maps = qc.zone_maps;
    options.exec.pool = &pool;
    (void)db.run_sql(qc.sql, options);  // warm zone-map caches etc.
    const core::RunResult run = db.run_sql(qc.sql, options);
    const double mtuples =
        static_cast<double>(run.stats.tuples_scanned) / 1e6;
    table.add_row(
        {qc.id, TablePrinter::fmt_int(
                    static_cast<long long>(run.result.row_count())),
         TablePrinter::fmt(run.report.elapsed_s * 1e3, 4),
         TablePrinter::fmt(run.report.total_j(), 4),
         TablePrinter::fmt(run.report.avg_power_w(), 4),
         TablePrinter::fmt_int(
             static_cast<long long>(run.stats.tuples_scanned)),
         TablePrinter::fmt(
             mtuples > 0 ? run.report.total_j() / mtuples : 0, 4)});
    const std::string id(qc.id);
    json.add(id + "_ms", run.report.elapsed_s * 1e3);
    json.add(id + "_J", run.report.total_j());
    json.add(id + "_attributed_J", run.attributed_j);
    json.add(id + "_dram_MB", run.stats.work.dram_bytes / 1e6);
  }
  table.print(std::cout);

  // ---- Join arms: legacy pair-materializing interpreter vs the
  // vectorized block pipeline (packed keys, cost-model dense/hash/radix
  // arm, morsel-parallel probe). Same statements, same answers — the wall
  // and attributed-joule gap is the price of materializing every
  // JoinPair. ----
  const struct {
    const char* id;
    const char* sql;
  } join_cases[] = {
      {"Q3-join-region", cases[2].sql},
      {"QJ-join-full",
       "SELECT SUM(revenue), COUNT(*) FROM lineorder JOIN customer ON "
       "lineorder.custkey = customer.custkey"},
  };
  std::cout << "\njoin arm comparison (best of 3):\n";
  TablePrinter arms({"query", "arm", "time_ms", "attributed_J", "speedup",
                     "J_ratio"});
  for (const auto& jc : join_cases) {
    core::RunOptions legacy;
    legacy.exec.join_path = query::JoinPath::kPairMaterialize;
    core::RunOptions vec;
    vec.exec.pool = &pool;  // kAuto arm + morsel-parallel probe
    const Measured l = measure(db, jc.sql, legacy);
    const Measured v = measure(db, jc.sql, vec);
    const double speedup = v.wall_s > 0 ? l.wall_s / v.wall_s : 0;
    const double jratio =
        v.attributed_j > 0 ? l.attributed_j / v.attributed_j : 0;
    arms.add_row({jc.id, "legacy-pairs", TablePrinter::fmt(l.wall_s * 1e3, 4),
                  TablePrinter::fmt(l.attributed_j, 4), "1.00", "1.00"});
    arms.add_row({jc.id, "vectorized", TablePrinter::fmt(v.wall_s * 1e3, 4),
                  TablePrinter::fmt(v.attributed_j, 4),
                  TablePrinter::fmt(speedup, 2),
                  TablePrinter::fmt(jratio, 2)});
    const std::string id(jc.id);
    json.add(id + "_legacy_ms", l.wall_s * 1e3);
    json.add(id + "_vectorized_ms", v.wall_s * 1e3);
    json.add(id + "_legacy_attributed_J", l.attributed_j);
    json.add(id + "_vectorized_attributed_J", v.attributed_j);
    json.add(id + "_join_speedup", speedup);
    json.add(id + "_join_J_ratio", jratio);
  }
  arms.print(std::cout);

  // ---- Per-operator attribution of the multi-way star join (Q7): the
  // compiled physical plan plus the operator-level time/DRAM/joule split
  // whose work deltas sum to the query totals. ----
  {
    core::RunOptions options;
    options.exec.pool = &pool;
    const auto plan = query::parse_sql(cases[6].sql);
    std::cout << "\n" << db.explain(plan, options);
    const core::RunResult run = db.run_sql(cases[6].sql, options);
    std::cout << "\nQ7 per-operator attribution:\n"
              << query::format_operator_stats(run.stats, db.machine(),
                                              db.machine().dvfs.fastest());
  }

  // ---- Q7 thread-scaling sweep: morsel parallelism across the whole
  // plan (scan -> chained joins -> grouped agg -> top-k). Each arm runs
  // the real work-stealing pool at 1/2/4/8 workers with every parallel
  // threshold forced on, so the full pipeline executes morsel-wise and
  // the per-operator work deltas stay byte-exact. Wall-clock scaling is
  // then projected on the 8-core server spec via the contention
  // simulator (this host has one vCPU; DESIGN.md §5 substitution
  // convention), splitting Q7's *measured* per-operator work into its
  // parallel phase (scan/join/agg morsels) and serial tail (top-k merge
  // + materialize), with a 1% per-morsel critical section for the shared
  // aggregation state. ----
  {
    std::cout << "\nQ7 thread-scaling sweep (best of 3 per arm):\n";
    const std::string q7_id(cases[6].id);
    const char* q7_sql = cases[6].sql;
    const hw::MachineSpec server = hw::MachineSpec::server();
    const hw::DvfsState fmax = server.dvfs.fastest();
    TablePrinter sweep({"threads", "wall_ms", "attributed_J", "model_ms",
                        "model_speedup", "model_J"});
    for (const int n : {1, 2, 4, 8}) {
      sched::ThreadPool sweep_pool(static_cast<std::size_t>(n));
      core::RunOptions options;
      options.exec.pool = &sweep_pool;
      options.exec.parallel_agg_min_rows = 1;
      options.exec.parallel_join_min_rows = 1;
      options.exec.parallel_sort_min_rows = 1;
      options.exec.parallel_project_min_rows = 1;
      const Measured m = measure(db, q7_sql, options);
      const core::RunResult run = db.run_sql(q7_sql, options);

      // Split measured work by operator kind: morsel-parallel phases vs
      // the serial merge tail.
      hw::Work par_work, tail_work;
      for (const query::OperatorStats& op : run.stats.operators) {
        const query::OperatorKind kind = query::classify_operator(op.name);
        if (kind == query::OperatorKind::kSort ||
            kind == query::OperatorKind::kMaterialize) {
          tail_work += op.work;
        } else {
          par_work += op.work;
        }
      }
      const double par_s = server.exec_time_s(par_work, fmax, 1.0);
      const std::int64_t tasks = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(fact_rows / exec::kDefaultMorselRows));
      hw::SyncWorkload wl;
      wl.tasks = tasks;
      wl.parallel_s = par_s * 0.99 / static_cast<double>(tasks);
      wl.critical_s = par_s * 0.01 / static_cast<double>(tasks);
      wl.final_serial_s = server.exec_time_s(tail_work, fmax, 1.0);
      const hw::SyncResult sim = hw::simulate_sync(wl, n, server, fmax);

      sweep.add_row({TablePrinter::fmt_int(n),
                     TablePrinter::fmt(m.wall_s * 1e3, 4),
                     TablePrinter::fmt(m.attributed_j, 4),
                     TablePrinter::fmt(sim.makespan_s * 1e3, 4),
                     TablePrinter::fmt(sim.speedup, 2),
                     TablePrinter::fmt(sim.energy_j, 4)});
      const std::string arm = q7_id + "_threads" + std::to_string(n);
      json.add(arm + "_ms", m.wall_s * 1e3);
      json.add(arm + "_attributed_J", m.attributed_j);
      json.add(arm + "_model_ms", sim.makespan_s * 1e3);
      json.add(arm + "_model_speedup", sim.speedup);
      json.add(arm + "_model_J", sim.energy_j);
    }
    sweep.print(std::cout);
    std::cout << "(model columns: Q7's measured per-operator work replayed "
                 "on the 8-core server spec; attributed joules are "
                 "work-based, so they stay flat as threads scale)\n";
  }

  // ---- Sharded arm: Q7/Q8 over a hash-partitioned fact table. Shards
  // fan out over the pool, partials (or gathered row ids) ship to the
  // coordinator through the modeled cluster links with a per-link codec
  // choice, and the wire bytes/joules land in the ledger's wire scope —
  // the network cost of scale-out next to the single-node numbers. At
  // one shard the fact table lives on the coordinator and the wire
  // columns must read exactly zero. ----
  {
    std::cout << "\nsharded execution (hash-partitioned fact table, modeled "
                 "10GbE links, best of 3):\n";
    TablePrinter sharded({"query", "shards", "wall_ms", "wire_MB",
                          "wire_J", "total_J"});
    for (const QueryCase* qc : {&cases[6], &cases[7]}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        db.catalog().get("lineorder").build_partitions("custkey", shards);
        core::RunOptions options;
        options.exec.pool = &pool;
        options.exec.shard_count = shards;
        const Measured m = measure(db, qc->sql, options);
        const core::RunResult run = db.run_sql(qc->sql, options);
        sharded.add_row(
            {qc->id, TablePrinter::fmt_int(static_cast<long long>(shards)),
             TablePrinter::fmt(m.wall_s * 1e3, 4),
             TablePrinter::fmt(run.stats.work.net_bytes / 1e6, 4),
             TablePrinter::fmt(run.stats.wire_energy_j, 6),
             TablePrinter::fmt(run.attributed_j, 4)});
        const std::string arm =
            std::string(qc->id) + "_sharded" + std::to_string(shards);
        json.add(arm + "_ms", m.wall_s * 1e3);
        json.add(arm + "_wire_bytes", run.stats.work.net_bytes);
        json.add(arm + "_wire_J", run.stats.wire_energy_j);
        json.add(arm + "_total_J", run.attributed_j);
      }
    }
    sharded.print(std::cout);
    std::cout << "(total_J = attributed joules including the modeled wire; "
                 "the wire scope of the ledger below carries the cluster's "
                 "network bill separately)\n";
  }

  std::cout << "\nper-operator energy ledger across the workload:\n"
            << db.ledger().to_string();
  std::cout << "\nShape checks: Q2's zone-mapped date slice touches ~1% of "
               "the fact table and its joules shrink accordingly (E1's "
               "claim inside a realistic workload); Q6's grouped join "
               "returns one row per region (the pre-vectorized path could "
               "not answer it at all); Q7 chains two dimension probes "
               "through the physical-plan compiler and top-ks the grouped "
               "result; the legacy join arm pays pair materialization + "
               "sort on top of the same probe work, so the vectorized arm "
               "wins both wall time and attributed joules; Q8 joins on a "
               "string key end to end in the int32 code domain (one "
               "dictionary remap, no per-row string compares) and returns "
               "the four shared priorities — 'rush' rows never match.\n";
  std::cout << "\nwrote " << json.write() << "\n";
  return 0;
}
