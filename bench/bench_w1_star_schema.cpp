// W1 — star-schema analytical workload (paper §II: "more and more
// analytical applications ... multiple billion record databases"; scaled to
// laptop size). A Star-Schema-Benchmark-flavored fact table with two
// dimensions; four query classes run through the full public API, each
// reporting time AND energy — the per-query currency the paper wants
// optimizers to spend.
//
//   Q1  flight-style filter + aggregate (no join)
//   Q2  filter via zone maps on the clustered date key
//   Q3  dimension join + aggregate
//   Q4  grouped rollup by dimension attribute
#include <iostream>
#include <vector>

#include "core/database.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

using namespace eidb;

namespace {

constexpr std::size_t kFactRows = 4'000'000;
constexpr std::int64_t kDates = 2556;      // 7 years of days
constexpr std::int64_t kCustomers = 30'000;

void load(core::Database& db) {
  using storage::Column;
  using storage::Schema;
  using storage::TypeId;

  Pcg32 rng(1994);  // SSB's base year
  storage::Table& lineorder = db.create_table(
      "lineorder", Schema({{"orderdate", TypeId::kInt64},
                           {"custkey", TypeId::kInt64},
                           {"quantity", TypeId::kInt64},
                           {"discount", TypeId::kInt64},
                           {"revenue", TypeId::kInt64}}));
  std::vector<std::int64_t> odate, cust, qty, disc, rev;
  odate.reserve(kFactRows);
  for (std::size_t i = 0; i < kFactRows; ++i) {
    // Clustered by date (append order), the realistic fact layout.
    odate.push_back(static_cast<std::int64_t>(i * kDates / kFactRows));
    cust.push_back(rng.next_bounded(static_cast<std::uint32_t>(kCustomers)));
    qty.push_back(1 + rng.next_bounded(50));
    disc.push_back(rng.next_bounded(11));
    rev.push_back(1000 + rng.next_bounded(100'000));
  }
  lineorder.set_column(0, Column::from_int64("orderdate", odate));
  lineorder.set_column(1, Column::from_int64("custkey", cust));
  lineorder.set_column(2, Column::from_int64("quantity", qty));
  lineorder.set_column(3, Column::from_int64("discount", disc));
  lineorder.set_column(4, Column::from_int64("revenue", rev));

  storage::Table& customer = db.create_table(
      "customer", Schema({{"custkey", TypeId::kInt64},
                          {"region", TypeId::kString},
                          {"segment", TypeId::kString}}));
  std::vector<std::int64_t> ck;
  std::vector<std::string> region, segment;
  const char* regions[] = {"africa", "america", "asia", "europe", "mideast"};
  const char* segments[] = {"auto", "building", "furniture", "machinery"};
  for (std::int64_t k = 0; k < kCustomers; ++k) {
    ck.push_back(k);
    region.emplace_back(regions[rng.next_bounded(5)]);
    segment.emplace_back(segments[rng.next_bounded(4)]);
  }
  customer.set_column(0, Column::from_int64("custkey", ck));
  customer.set_column(1, Column::from_strings("region", region));
  customer.set_column(2, Column::from_strings("segment", segment));
}

}  // namespace

int main() {
  std::cout << "== W1: star-schema workload (" << kFactRows
            << "-row fact table) ==\n\n";
  core::Database db;
  load(db);

  struct QueryCase {
    const char* id;
    const char* sql;
    bool zone_maps;
  };
  const QueryCase cases[] = {
      {"Q1-filter-agg",
       "SELECT SUM(revenue * discount / 100), COUNT(*) FROM lineorder WHERE "
       "discount BETWEEN 1 AND 3 AND quantity < 25",
       false},
      {"Q2-date-slice",
       "SELECT SUM(revenue) FROM lineorder WHERE orderdate BETWEEN 400 AND "
       "430",
       true},
      {"Q3-join-region",
       "SELECT SUM(revenue), COUNT(*) FROM lineorder JOIN customer ON "
       "lineorder.custkey = customer.custkey WHERE customer.region = "
       "'europe' AND discount BETWEEN 0 AND 2",
       false},
      {"Q4-rollup",
       "SELECT COUNT(*), SUM(revenue), AVG(quantity) FROM lineorder "
       "GROUP BY discount",
       false},
      {"Q5-multi-group",
       "SELECT COUNT(*), SUM(revenue) FROM lineorder JOIN customer ON "
       "lineorder.custkey = customer.custkey WHERE discount BETWEEN 4 AND 6 "
       "AND customer.segment = 'machinery'",
       false},
  };

  TablePrinter table({"query", "rows_out", "time_ms", "energy_J", "avg_W",
                      "tuples_scanned", "J_per_Mtuple"});
  for (const QueryCase& qc : cases) {
    core::RunOptions options;
    options.exec.use_zone_maps = qc.zone_maps;
    (void)db.run_sql(qc.sql, options);  // warm zone-map caches etc.
    const core::RunResult run = db.run_sql(qc.sql, options);
    const double mtuples =
        static_cast<double>(run.stats.tuples_scanned) / 1e6;
    table.add_row(
        {qc.id, TablePrinter::fmt_int(
                    static_cast<long long>(run.result.row_count())),
         TablePrinter::fmt(run.report.elapsed_s * 1e3, 4),
         TablePrinter::fmt(run.report.total_j(), 4),
         TablePrinter::fmt(run.report.avg_power_w(), 4),
         TablePrinter::fmt_int(
             static_cast<long long>(run.stats.tuples_scanned)),
         TablePrinter::fmt(
             mtuples > 0 ? run.report.total_j() / mtuples : 0, 4)});
  }
  table.print(std::cout);

  std::cout << "\nper-operator energy ledger across the workload:\n"
            << db.ledger().to_string();
  std::cout << "\nShape checks: Q2's zone-mapped date slice touches ~1% of "
               "the fact table and its joules shrink accordingly (E1's "
               "claim inside a realistic workload); the join query pays "
               "build+probe over the surviving rows; J/Mtuple is stable "
               "for full scans and drops for pruned ones.\n";
  return 0;
}
